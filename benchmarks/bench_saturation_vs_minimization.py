"""Reproduces the Section-6 discussion quantitatively over the kernel suite.

Paper arguments:

* when the saturation already fits the register file, the RS approach adds
  no arc at all while the minimization approach still constrains the graph;
* when reduction is needed, the RS approach introduces only the arcs
  required to reach the budget -- fewer than minimization, which pushes the
  register need as low as it can.
"""

from __future__ import annotations

from repro.core.types import FLOAT, INT
from repro.errors import ReductionError, SolverError, SpillRequiredError
from repro.experiments import format_table, section
from repro.reduction import minimize_register_need, reduce_saturation_heuristic
from repro.saturation import greedy_saturation


def _compare(suite, machine, budget_slack=1):
    rows = []
    for entry in suite:
        for rtype in entry.ddg.register_types():
            rs = greedy_saturation(entry.ddg, rtype).rs
            if rs < 2:
                continue
            budget = max(2, rs - budget_slack)
            reduction = reduce_saturation_heuristic(entry.ddg, rtype, budget, machine=machine)
            try:
                minimized = minimize_register_need(entry.ddg, rtype, machine=machine)
            except (ReductionError, SolverError, SpillRequiredError):
                continue
            rows.append(
                (
                    entry.name,
                    rtype.name,
                    rs,
                    budget,
                    reduction.arcs_added,
                    reduction.ilp_loss,
                    minimized.achieved_rs,
                    minimized.arcs_added,
                )
            )
    return rows


def test_saturation_vs_minimization(benchmark, tiny_kernel_suite, machine):
    rows = benchmark.pedantic(
        lambda: _compare(tiny_kernel_suite, machine), rounds=1, iterations=1
    )

    print(section("Section 6: RS reduction vs register-need minimization (kernel suite)"))
    print(
        format_table(
            ["benchmark", "type", "RS", "R", "RS arcs", "RS loss", "min RN", "min arcs"],
            rows,
        )
    )

    assert rows, "no comparable instances"
    # Minimization never adds fewer arcs than the budget-driven RS reduction
    # on the same graph, and usually adds strictly more.
    assert all(r[7] >= r[4] for r in rows)
    assert any(r[7] > r[4] for r in rows)
    # The minimized register need is at most the RS budget used by reduction.
    assert all(r[6] <= max(r[2], r[3]) for r in rows)
