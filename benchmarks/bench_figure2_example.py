"""Reproduces Figure 2 and the Section-6 discussion: saturate, don't minimize.

Paper claims on the running example:

* the initial DAG has a register saturation of 4;
* with at least 4 registers available, the RS approach leaves the DAG
  untouched while the minimization approach still constrains it;
* with 3 registers, RS reduction adds fewer arcs than minimization and the
  final allocator may use up to 3 registers, whereas minimization forces the
  need down to 2 regardless of availability.
"""

from __future__ import annotations

from repro.codes.kernels import figure2_dag
from repro.core.types import INT
from repro.experiments import format_table, section
from repro.reduction import minimize_register_need, reduce_saturation_heuristic
from repro.saturation import exact_saturation


def _run_figure2(machine):
    g = figure2_dag()
    rs0 = exact_saturation(g, INT).rs
    reduce_r3 = reduce_saturation_heuristic(g, INT, 3, machine=machine)
    reduce_r4 = reduce_saturation_heuristic(g, INT, 4, machine=machine)
    minimized = minimize_register_need(g, INT, machine=machine)
    rs_reduced = exact_saturation(reduce_r3.extended_ddg, INT).rs
    rs_minimized = exact_saturation(minimized.extended_ddg, INT).rs
    return {
        "rs0": rs0,
        "reduce_r3": reduce_r3,
        "reduce_r4": reduce_r4,
        "minimized": minimized,
        "rs_reduced": rs_reduced,
        "rs_minimized": rs_minimized,
    }


def test_figure2_saturation_vs_minimization(benchmark, machine):
    data = benchmark.pedantic(lambda: _run_figure2(machine), rounds=1, iterations=1)

    print(section("Figure 2 / Section 6: RS reduction vs register-need minimization"))
    rows = [
        ("initial DAG", "-", data["rs0"], 0, 0),
        (
            "RS reduction, R=4",
            4,
            data["reduce_r4"].achieved_rs,
            data["reduce_r4"].arcs_added,
            data["reduce_r4"].ilp_loss,
        ),
        (
            "RS reduction, R=3",
            3,
            data["rs_reduced"],
            data["reduce_r3"].arcs_added,
            data["reduce_r3"].ilp_loss,
        ),
        (
            "minimization",
            "-",
            data["rs_minimized"],
            data["minimized"].arcs_added,
            data["minimized"].ilp_loss,
        ),
    ]
    print(format_table(["variant", "R", "resulting RS", "arcs added", "ILP loss"], rows))
    print("paper: initial RS = 4; minimization -> 2 registers regardless of R; "
          "RS reduction with R=3 -> 3 registers with fewer arcs")

    # Paper-shape assertions.
    assert data["rs0"] == 4
    assert data["reduce_r4"].arcs_added == 0, "no arcs when the budget covers the saturation"
    assert data["rs_reduced"] == 3
    assert data["rs_minimized"] == 2
    assert data["reduce_r3"].arcs_added < data["minimized"].arcs_added
    assert data["reduce_r3"].ilp_loss == 0
