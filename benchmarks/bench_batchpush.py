"""Benchmark: the batched push path (block row-patching + bulk seeding).

PR 10 batches the three per-push hot loops of the incremental reduction
engine, and this benchmark is their evidence trail (numbers land in
``BENCH_batchpush.json`` via ``REPRO_BENCH_JSON``):

* **Block kernel** -- :func:`repro.analysis.flatbuf.max_merge_rows` patches
  every dirty lp row under one pushed arc as a single (rows x n) block
  operation whose pre-image snapshots are the engine's block undo frames.
  Timed per backend against the exact per-row :func:`max_merge` loop it
  replaces, asserting identical patched state and change logs.
* **Bulk seeding** -- :func:`repro.analysis.flatbuf.relax_sources` seeds
  several killed-mirror longest-path rows in one relaxation pass over the
  shared flat adjacency.  Timed against the per-source reference pass,
  asserting byte-identical rows.  The recorded table is also the measured
  justification for the kernel staying scalar on every backend: an ndarray
  (k x n) variant lost at every realistic shape because the sparse walk
  decays into two numpy calls per edge on length-k vectors.
* **Row-width gate** -- the measured crossover behind
  ``flatbuf._ROW_NUMPY_MIN``: per-call numpy overhead loses to the
  plain-list scalar loops on narrow rows, and stdlib ``array('d')`` rows
  lose at *every* width because each element read boxes a fresh float (the
  ``BENCH_vector.json`` anomaly: stdlib max_merge 0.00383s vs off 0.00283s
  at row width 240 before PR 10 retired those buffers).  Dispatch now keys
  on this measured crossover, not on backend presence.
* **Replay** -- a warm superblock reduction per backend must report
  byte-identically to the from-scratch driver while the batched-path
  counters (``row_block_patches``, ``mirror_bulk_seeds``,
  ``components_reused``) prove the new paths actually carried the run; a
  block-frames vs per-row-frames wall-time comparison documents what the
  block undo format buys end to end.

``REPRO_BENCH_SMOKE=1`` shrinks the populations for CI.  The aggregate
engine-level claim (the ``REPRO_REDUCTION_SPEEDUP_MIN`` floor, raised to 15
by PR 10) stays in ``bench_reduction_incremental.py``; this file carries
the per-kernel evidence.
"""

from __future__ import annotations

import gc
import os
import random
import time

from conftest import load_json_artifact, write_json_artifact

from repro.analysis import flatbuf
from repro.codes import scale_suite
from repro.experiments import section
from repro.reduction import reduce_saturation_heuristic

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NEG_INF = flatbuf.NEG_INF


def _record(section_name, payload):
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    data = load_json_artifact(path)
    data["smoke"] = _SMOKE
    data[section_name] = payload
    write_json_artifact(path, data)


def _backends():
    specs = ["off", "stdlib"]
    if flatbuf.numpy_available():
        specs.append("numpy")
    return specs


def _random_row(rng, n, p_inf=0.4):
    return [
        NEG_INF if rng.random() < p_inf else float(rng.randint(-40, 300))
        for _ in range(n)
    ]


# --------------------------------------------------------------------- #
# Block kernel: max_merge_rows vs the per-row loop it replaces
# --------------------------------------------------------------------- #
def test_block_kernel_parity_and_timings():
    """Patch realistic dirty-row blocks both ways; states must match."""

    rng = random.Random(1004)
    n = 60 if _SMOKE else 240
    k = 16 if _SMOKE else 64  # dirty rows under one pushed arc
    reps = 10 if _SMOKE else 60

    cases = []
    for _ in range(reps):
        rows = [_random_row(rng, n) for _ in range(k)]
        dst = _random_row(rng, n, p_inf=0.6)
        shifts = [float(rng.randint(0, 80)) for _ in range(k)]
        cases.append((rows, dst, shifts))

    timings = {}
    outputs = {}
    for spec in _backends():
        with flatbuf.use(spec):
            block_cases = [
                (
                    [flatbuf.row_from_list(list(r)) for r in rows],
                    flatbuf.finite_entries(flatbuf.row_from_list(list(dst))),
                    shifts,
                )
                for rows, dst, shifts in cases
            ]
            loop_cases = [
                (
                    [flatbuf.row_from_list(list(r)) for r in rows],
                    flatbuf.finite_entries(flatbuf.row_from_list(list(dst))),
                    shifts,
                )
                for rows, dst, shifts in cases
            ]

            start = time.perf_counter()
            block_logs = []
            for rows, finite, shifts in block_cases:
                positions, cols, snaps = flatbuf.max_merge_rows(
                    rows, shifts, finite
                )
                block_logs.append((positions, cols, len(snaps)))
            t_block = time.perf_counter() - start

            # The replaced path: per-row copy-on-write max_merge, writing
            # the patched buffer back (what push() did before PR 10).
            start = time.perf_counter()
            loop_logs = []
            for rows, finite, shifts in loop_cases:
                positions, cols = [], []
                for p, row in enumerate(rows):
                    patched, changed = flatbuf.max_merge(row, shifts[p], finite)
                    if patched is not None:
                        rows[p] = patched
                        positions.append(p)
                        cols.append(list(changed))
                loop_logs.append((positions, cols, len(positions)))
            t_loop = time.perf_counter() - start

            assert block_logs == loop_logs, (
                f"block kernel change log diverges under {spec}"
            )
            state = [
                [flatbuf.row_to_list(r) for r in rows]
                for rows, _f, _s in block_cases
            ]
            loop_state = [
                [flatbuf.row_to_list(r) for r in rows]
                for rows, _f, _s in loop_cases
            ]
            assert state == loop_state, (
                f"block kernel patched state diverges under {spec}"
            )
            timings[spec] = {"block": t_block, "per_row_loop": t_loop}
            outputs[spec] = state

    reference = outputs["off"]
    for spec, got in outputs.items():
        assert got == reference, f"patched state diverges under {spec}"

    print(section("batched push: max_merge_rows vs the per-row loop"))
    print(f"{'backend':<10} {'block':>9} {'per-row':>9} {'ratio':>7}")
    for spec, t in timings.items():
        ratio = t["per_row_loop"] / t["block"] if t["block"] else float("inf")
        print(f"{spec:<10} {t['block']:>8.4f}s {t['per_row_loop']:>8.4f}s "
              f"{ratio:>6.2f}x")

    _record(
        "block_patch",
        {
            "row_width": n,
            "rows_per_block": k,
            "repetitions": reps,
            "seconds": {
                s: {kk: round(v, 5) for kk, v in t.items()}
                for s, t in timings.items()
            },
        },
    )


# --------------------------------------------------------------------- #
# Bulk seeding: relax_sources vs the per-source relaxation pass
# --------------------------------------------------------------------- #
def _layered_flat_dag(rng, n):
    """Dense flat out-adjacency + topo order of a layered random DAG."""

    adj = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, min(n, i + 12)):
            if rng.random() < 0.3:
                adj[i].append((j, rng.randint(1, 5)))
    return adj, list(range(n))


def _relax_single(adj, order, start, src, n):
    """The per-source reference pass (what mirror rebuilds did before)."""

    row = [NEG_INF] * n
    row[src] = 0
    for nid in order[start:]:
        d = row[nid]
        if d == NEG_INF:
            continue
        for ni, w in adj[nid]:
            nd = d + w
            if nd > row[ni]:
                row[ni] = nd
    return row


def test_relax_seeding_parity_and_timings():
    """Seed k mirror rows both ways per (n, k) shape; rows must match."""

    rng = random.Random(2010)
    shapes = ((40, 2), (40, 4)) if _SMOKE else (
        (120, 2), (120, 8), (240, 2), (240, 8), (240, 32)
    )
    reps = 5 if _SMOKE else 30

    print(section("batched push: multi-source seeding vs per-source passes"))
    print(f"{'n':>5} {'k':>4} {'bulk':>9} {'per-src':>9} {'ratio':>7}")
    results = {}
    for n, k in shapes:
        adj, order = _layered_flat_dag(rng, n)
        source_sets = [sorted(rng.sample(range(n // 2), k)) for _ in range(reps)]

        start = time.perf_counter()
        bulk = [
            [
                flatbuf.row_to_list(row)
                for row in flatbuf.relax_sources(adj, order, srcs[0], srcs, n)
            ]
            for srcs in source_sets
        ]
        t_bulk = time.perf_counter() - start

        start = time.perf_counter()
        single = [
            [_relax_single(adj, order, srcs[0], src, n) for src in srcs]
            for srcs in source_sets
        ]
        t_single = time.perf_counter() - start

        assert bulk == single, f"bulk-seeded rows diverge at n={n} k={k}"
        ratio = t_single / t_bulk if t_bulk else float("inf")
        print(f"{n:>5} {k:>4} {t_bulk:>8.4f}s {t_single:>8.4f}s {ratio:>6.2f}x")
        results[f"n{n}_k{k}"] = {
            "bulk": round(t_bulk, 5),
            "per_source": round(t_single, 5),
        }

    _record(
        "relax_seeding",
        {
            "repetitions": reps,
            "dispatch": "scalar on every backend (measured: the ndarray"
                        " (k x n) variant lost at every shape, 0.024s vs"
                        " 0.0017s at n=240 k=2)",
            "seconds": results,
        },
    )


# --------------------------------------------------------------------- #
# Row-width gate: the measured crossover behind _ROW_NUMPY_MIN
# --------------------------------------------------------------------- #
def test_row_gate_crossover():
    """Document list-vs-ndarray per-width timings behind the dispatch gate."""

    if not flatbuf.numpy_available():
        print(section("row-width gate: numpy unavailable, lists only"))
        return
    rng = random.Random(3001)
    widths = (48, 96) if _SMOKE else (48, 96, 160, 240)
    reps = 60 if _SMOKE else 400

    print(section("row-width gate: plain-list loops vs ndarray kernels"))
    print(f"{'n':>5} {'merge list':>11} {'merge nd':>9} "
          f"{'mask list':>10} {'mask nd':>8}")
    results = {}
    for n in widths:
        rows = [_random_row(rng, n) for _ in range(reps)]
        dst = _random_row(rng, n, p_inf=0.6)
        shifts = [float(rng.randint(0, 80)) for _ in range(reps)]
        vids = rng.sample(range(n), n // 2)
        dws = [rng.randint(0, 3) for _ in vids]
        reads = [rng.randint(0, 200) for _ in range(reps)]

        timings = {}
        outputs = {}
        for kind in ("list", "ndarray"):
            with flatbuf.use("off" if kind == "list" else "numpy"):
                brows = [flatbuf.row_from_list(list(r)) for r in rows]
                finite = flatbuf.finite_entries(flatbuf.row_from_list(list(dst)))
                prep = flatbuf.prepare_values(vids, dws)

                start = time.perf_counter()
                merged = []
                for row, shift in zip(brows, shifts):
                    patched, changed = flatbuf.max_merge(row, shift, finite)
                    merged.append(
                        (None, None) if patched is None
                        else (flatbuf.row_to_list(patched), list(changed))
                    )
                t_merge = time.perf_counter() - start

                start = time.perf_counter()
                masks = [
                    flatbuf.threshold_mask(row, prep, read)
                    for row, read in zip(brows, reads)
                ]
                t_mask = time.perf_counter() - start
            timings[kind] = (t_merge, t_mask)
            outputs[kind] = (merged, masks)

        assert outputs["list"] == outputs["ndarray"], f"divergence at n={n}"
        tl, tn = timings["list"], timings["ndarray"]
        print(f"{n:>5} {tl[0]:>10.4f}s {tn[0]:>8.4f}s "
              f"{tl[1]:>9.4f}s {tn[1]:>7.4f}s")
        results[n] = {
            "max_merge": {"list": round(tl[0], 5), "ndarray": round(tn[0], 5)},
            "threshold_mask": {"list": round(tl[1], 5), "ndarray": round(tn[1], 5)},
        }

    _record(
        "row_gate",
        {
            "dispatch_min": flatbuf._ROW_NUMPY_MIN,
            "repetitions": reps,
            "stdlib_rows": "plain lists since PR 10: array('d') rows lost at"
                           " every width (element reads box a fresh float;"
                           " the BENCH_vector stdlib max_merge anomaly)",
            "seconds": results,
        },
    )


# --------------------------------------------------------------------- #
# Replay: byte-identity + batched-path counters + frame-mode wall time
# --------------------------------------------------------------------- #
def _normalized_report(result):
    details = {
        k: v
        for k, v in sorted(result.details.items())
        if k not in ("engine", "engine_stats")
    }
    graph = result.extended_ddg
    return repr(
        (
            result.rtype.name,
            result.target,
            result.success,
            result.original_rs,
            result.achieved_rs,
            result.added_edges,
            result.critical_path_before,
            result.critical_path_after,
            result.method,
            result.optimal,
            details,
            graph.name,
            sorted(
                (e.src, e.dst, e.latency, e.kind.value,
                 None if e.rtype is None else e.rtype.name)
                for e in graph.edges()
            ),
        )
    ).encode()


def test_replay_counters_and_byte_identity():
    """Warm replays must match the from-scratch driver and take the new paths."""

    entry = scale_suite(
        sizes=(48,) if _SMOKE else (),
        superblock_sizes=() if _SMOKE else (200,),
    )[0]
    rtype = entry.ddg.register_types()[0]

    gc.collect()
    scratch = reduce_saturation_heuristic(
        entry.ddg.copy(), rtype, 8, engine="from-scratch"
    )
    reference = _normalized_report(scratch)

    rows = []
    for spec in _backends():
        with flatbuf.use(spec):
            gc.collect()
            start = time.perf_counter()
            result = reduce_saturation_heuristic(
                entry.ddg.copy(), rtype, 8, engine="incremental"
            )
            wall = time.perf_counter() - start
        assert _normalized_report(result) == reference, (
            f"incremental report diverges from from-scratch under {spec}"
        )
        stats = result.details["engine_stats"]
        # The batched paths must actually have carried the run -- on every
        # backend, including where the kernels run their scalar forms.
        assert stats["row_block_patches"] > 0, spec
        assert stats["mirror_bulk_seeds"] > 0, spec
        assert stats["components_reused"] > 0, spec
        assert "greedy_decompose" in stats["stage_timings"], spec
        rows.append((spec, wall, {
            k: stats[k]
            for k in ("row_block_patches", "mirror_bulk_seeds",
                      "components_reused")
        }))

    print(section(f"batched push replay ({entry.name}, identical reports)"))
    print(f"{'backend':<10} {'seconds':>8} {'blocks':>8} {'seeds':>7} "
          f"{'comps':>7}")
    for spec, wall, counts in rows:
        print(f"{spec:<10} {wall:>7.2f}s {counts['row_block_patches']:>8} "
              f"{counts['mirror_bulk_seeds']:>7} "
              f"{counts['components_reused']:>7}")

    _record(
        "batchpush_replay",
        {
            "instance": entry.name,
            "backends": {
                spec: {"seconds": round(wall, 3), **counts}
                for spec, wall, counts in rows
            },
        },
    )


def test_frame_mode_wall_time():
    """Block undo frames vs per-row CoW frames on the largest superblock.

    Both modes are byte-identical (property-tested in
    ``tests/test_batchpush.py``); this records what the block undo format
    buys end to end: one contiguous pre-image block per (arc, push) instead
    of a fresh row copy per dirty row.  No floor is asserted -- the win is
    real but modest at paper sizes and the engine-level claim lives in
    ``bench_reduction_incremental.py``.
    """

    import repro.reduction.session as session_mod

    entry = scale_suite(
        sizes=(48,) if _SMOKE else (),
        superblock_sizes=() if _SMOKE else (240,),
    )[0]
    rtype = entry.ddg.register_types()[0]

    real = session_mod.IncrementalAnalysis
    seconds = {}
    reports = {}
    try:
        for mode in ("block", "per-row"):
            session_mod.IncrementalAnalysis = (
                lambda working, frame_mode="block", _m=mode: real(
                    working, frame_mode=_m
                )
            )
            gc.collect()
            start = time.perf_counter()
            result = reduce_saturation_heuristic(
                entry.ddg.copy(), rtype, 8, engine="incremental"
            )
            seconds[mode] = time.perf_counter() - start
            reports[mode] = _normalized_report(result)
    finally:
        session_mod.IncrementalAnalysis = real

    assert reports["block"] == reports["per-row"], (
        "frame modes must report byte-identically"
    )
    ratio = seconds["per-row"] / seconds["block"] if seconds["block"] else 0.0
    print(section(f"undo frames: block vs per-row ({entry.name})"))
    print(f"{'mode':<10} {'seconds':>8}")
    for mode, wall in seconds.items():
        print(f"{mode:<10} {wall:>7.2f}s")
    print(f"{'ratio':<10} {ratio:>7.2f}x")

    _record(
        "frame_mode",
        {
            "instance": entry.name,
            "seconds": {m: round(v, 3) for m, v in seconds.items()},
            "per_row_over_block": round(ratio, 3),
        },
    )
