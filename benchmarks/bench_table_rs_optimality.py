"""Reproduces Section 5, experiment 1: optimality of the RS computation heuristic.

Paper claim: "Regarding RS computation, the maximal empirical error is one
register (in very few cases)" and the case RS < RS* never happens.
"""

from __future__ import annotations

from repro.experiments import run_rs_optimality, section


def test_rs_optimality_table(benchmark, small_kernel_suite, engine):
    report = benchmark.pedantic(
        lambda: run_rs_optimality(
            suite=small_kernel_suite, max_nodes=24, time_limit=120, engine=engine
        ),
        rounds=1,
        iterations=1,
    )

    print(section("Section 5 / RS computation: heuristic vs optimal"))
    print(report.to_table())
    print()
    for line in report.summary_lines():
        print(line)
    print("paper reference: maximal empirical error = 1 register, in very few cases")

    # Shape checks mirroring the paper's claims.
    assert report.instances >= 10
    assert report.min_error >= 0, "RS < RS* must be impossible"
    assert report.max_error <= 1, "heuristic error must not exceed one register"
    assert report.optimal_percentage >= 75.0
