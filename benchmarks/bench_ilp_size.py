"""Reproduces the Section-3 size claim: O(n^2) variables, O(m + n^2) constraints.

The paper argues its intLP is the smallest register-pressure formulation in
the literature; this benchmark builds the model over a size sweep, prints
the exact counts and checks the fitted growth exponent.
"""

from __future__ import annotations

from repro.experiments import run_ilp_size_study, section


def test_ilp_size_scaling(benchmark, engine):
    report = benchmark.pedantic(
        lambda: run_ilp_size_study(sizes=(10, 15, 20, 25, 30, 40, 50), engine=engine),
        rounds=1,
        iterations=1,
    )

    print(section("Section 3: intLP size (O(n^2) variables, O(m + n^2) constraints)"))
    print(report.to_table())
    print(f"fitted growth exponent of the variable count   : n^{report.variable_exponent():.2f}")
    print(f"fitted growth exponent of the constraint count : n^{report.constraint_exponent():.2f}")

    assert report.variable_exponent() <= 2.3
    assert report.constraint_exponent() <= 2.3
    assert report.variables_within_bound(factor=8.0)
    assert report.constraints_within_bound(factor=8.0)
