"""Benchmark: the vectorized flat-core kernels and zero-copy dispatch.

Three claims ride on PR 9's buffer kernels, each checked here with numbers
that land in ``BENCH_vector.json`` (via ``REPRO_BENCH_JSON``):

* **Kernel parity and per-kernel wins** -- every flatbuf kernel is timed on
  realistic workloads under each available backend against the exact PR-6
  scalar reference, asserting identical outputs.  This is the per-kernel
  before/after evidence for the conversions (the engine-level stage deltas
  live in ``bench_reduction_incremental.py::test_vectorization_stage_deltas``).
* **Byte-identity at scale** -- full reductions of the scale superblocks run
  under every backend and must produce byte-identical reports.
* **Zero-copy dispatch** -- packing scale-tier task items through the
  shared-memory exporter must shrink the pickled payload per item by
  ``REPRO_SHM_BYTES_RATIO_MIN`` (default 10x) and a process dispatch must
  attach rather than fall back (counter-asserted).

``REPRO_BENCH_SMOKE=1`` shrinks the populations for CI.
"""

from __future__ import annotations

import os
import pickle
import random
import time

from conftest import load_json_artifact, write_json_artifact

from repro.analysis import flatbuf, shm
from repro.codes import scale_suite
from repro.experiments import section
from repro.reduction import reduce_saturation_heuristic

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NEG_INF = flatbuf.NEG_INF


def _record(section_name, payload):
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    data = load_json_artifact(path)
    data["smoke"] = _SMOKE
    data[section_name] = payload
    write_json_artifact(path, data)


def _backends():
    specs = ["off", "stdlib"]
    if flatbuf.numpy_available():
        specs.append("numpy")
    return specs


def _random_row(rng, n, p_inf=0.4):
    return [
        NEG_INF if rng.random() < p_inf else float(rng.randint(-40, 300))
        for _ in range(n)
    ]


def test_kernel_parity_and_timings():
    """Time each kernel per backend on identical inputs; outputs must match."""

    rng = random.Random(8808)
    n = 60 if _SMOKE else 240
    reps = 40 if _SMOKE else 200
    rows = [_random_row(rng, n) for _ in range(reps)]
    dsts = [_random_row(rng, n, p_inf=0.6) for _ in range(reps)]
    shifts = [float(rng.randint(0, 80)) for _ in range(reps)]
    vids = rng.sample(range(n), n // 2)
    dws = [rng.randint(0, 3) for _ in vids]
    reads = [rng.randint(0, 200) for _ in range(reps)]

    timings = {}
    outputs = {}
    for spec in _backends():
        with flatbuf.use(spec):
            brows = [flatbuf.row_from_list(list(r)) for r in rows]
            finites = [
                flatbuf.finite_entries(flatbuf.row_from_list(list(d))) for d in dsts
            ]
            prep = flatbuf.prepare_values(vids, dws)

            start = time.perf_counter()
            merged = []
            for row, shift, finite in zip(brows, shifts, finites):
                patched, changed = flatbuf.max_merge(row, shift, finite)
                merged.append(
                    (None, None) if patched is None
                    else (flatbuf.row_to_list(patched), list(changed))
                )
            t_merge = time.perf_counter() - start

            start = time.perf_counter()
            masks = [
                flatbuf.threshold_mask(row, prep, read)
                for row, read in zip(brows, reads)
            ]
            t_mask = time.perf_counter() - start

            timings[spec] = {"max_merge": t_merge, "threshold_mask": t_mask}
            outputs[spec] = (merged, masks)

    reference = outputs["off"]
    for spec, got in outputs.items():
        assert got == reference, f"kernel outputs diverge under {spec}"

    print(section("flatbuf kernels: per-backend timings (identical outputs)"))
    print(f"{'kernel':<16} " + " ".join(f"{s:>9}" for s in timings))
    for kernel in ("max_merge", "threshold_mask"):
        cells = " ".join(f"{timings[s][kernel]:>8.4f}s" for s in timings)
        print(f"{kernel:<16} {cells}")

    _record(
        "kernel_timings",
        {
            "row_width": n,
            "repetitions": reps,
            "seconds": {
                s: {k: round(v, 5) for k, v in t.items()}
                for s, t in timings.items()
            },
        },
    )


def test_closure_kernel_crossover():
    """Document the scalar/numpy closure crossover behind the dispatch gate."""

    if not flatbuf.numpy_available():
        print(section("closure kernel: numpy unavailable, scalar only"))
        return
    rng = random.Random(77)
    sizes = (64, 256) if _SMOKE else (64, 256, 1024, 2304)
    rows_by_size = {}
    for size in sizes:
        rows = [0] * size
        for i in range(size):
            for j in range(i + 1, min(size, i + 40)):
                if rng.random() < 0.2:
                    rows[i] |= 1 << j
        rows_by_size[size] = rows

    print(section("closure kernel: scalar big-int vs numpy word matrix"))
    print(f"{'n':>6} {'scalar':>9} {'numpy':>9}")
    results = {}
    for size, rows in rows_by_size.items():
        start = time.perf_counter()
        scalar = flatbuf._closure_scalar(rows)
        t_scalar = time.perf_counter() - start
        start = time.perf_counter()
        vector = flatbuf._closure_numpy(rows)
        t_numpy = time.perf_counter() - start
        assert scalar == vector
        print(f"{size:>6} {t_scalar:>8.4f}s {t_numpy:>8.4f}s")
        results[size] = {"scalar": round(t_scalar, 5), "numpy": round(t_numpy, 5)}

    _record(
        "closure_crossover",
        {"dispatch_min": flatbuf._CLOSURE_NUMPY_MIN, "seconds": results},
    )


def _normalized_report(result):
    details = {
        k: v
        for k, v in sorted(result.details.items())
        if k not in ("engine", "engine_stats")
    }
    graph = result.extended_ddg
    return repr(
        (
            result.rtype.name,
            result.target,
            result.success,
            result.original_rs,
            result.achieved_rs,
            result.added_edges,
            result.critical_path_before,
            result.critical_path_after,
            result.method,
            result.optimal,
            details,
            sorted(
                (e.src, e.dst, e.latency, e.kind.value,
                 None if e.rtype is None else e.rtype.name)
                for e in graph.edges()
            ),
        )
    ).encode()


def test_scale_byte_identity_across_backends():
    """Superblock reductions must not depend on the kernel backend."""

    if _SMOKE:
        tier = scale_suite(sizes=(48,), superblock_sizes=(120,))
    else:
        tier = scale_suite(sizes=(), superblock_sizes=(200, 240))

    rows = []
    for entry in tier:
        rtype = entry.ddg.register_types()[0]
        reports = {}
        seconds = {}
        for spec in _backends():
            with flatbuf.use(spec):
                start = time.perf_counter()
                result = reduce_saturation_heuristic(
                    entry.ddg.copy(), rtype, 8, engine="incremental"
                )
                seconds[spec] = time.perf_counter() - start
                reports[spec] = _normalized_report(result)
        assert len(set(reports.values())) == 1, (
            f"backend-dependent report on {entry.name}"
        )
        rows.append((entry.name, seconds))

    print(section("scale reductions: per-backend wall time (identical reports)"))
    specs = _backends()
    print(f"{'instance':<16} " + " ".join(f"{s:>9}" for s in specs))
    for name, seconds in rows:
        print(f"{name:<16} " + " ".join(f"{seconds[s]:>8.2f}s" for s in specs))

    _record(
        "scale_byte_identity",
        {
            name: {s: round(t, 3) for s, t in seconds.items()}
            for name, seconds in rows
        },
    )


def _echo_item_bytes(item):
    """Worker: prove the graph arrived usable and report its pickled size."""

    name, ddg, rtype, budget = item
    assert ddg.operation(next(iter(o.name for o in ddg.operations()))) is not None
    return name, ddg.n


def test_shared_memory_dispatch_shrinks_payloads():
    """Packed scale items must pickle >= 10x smaller, and dispatch must attach."""

    from repro.experiments import BatchEngine

    if _SMOKE:
        tier = scale_suite(sizes=(40, 48), superblock_sizes=())
    else:
        tier = scale_suite(sizes=(56, 72), superblock_sizes=(200,))
    items = []
    for entry in tier:
        rtype = entry.ddg.register_types()[0]
        # Several configuration rows per graph, like the experiment drivers.
        for budget in (4, 6, 8):
            items.append((entry.name, entry.ddg, rtype, budget))

    plain_bytes = sum(len(pickle.dumps(item)) for item in items)
    with shm.GraphExporter() as exporter:
        packed = [exporter.pack(item) for item in items]
        packed_bytes = sum(len(pickle.dumps(item)) for item in packed)
        assert exporter.exported == len(tier)
    ratio = plain_bytes / packed_bytes if packed_bytes else float("inf")

    print(section("shared-memory dispatch: pickled payload per batch"))
    print(f"{'items':>6} {'graphs':>7} {'plain':>10} {'packed':>10} {'ratio':>7}")
    print(f"{len(items):>6} {len(tier):>7} {plain_bytes:>9}B {packed_bytes:>9}B "
          f"{ratio:>6.1f}x")

    shm.reset_counters()
    engine = BatchEngine(policy="process", workers=2)
    results = engine.map(_echo_item_bytes, items)
    assert [r[0] for r in results] == [item[0] for item in items]
    assert shm.counters["exports"] == len(tier)
    assert shm.counters["fallbacks"] == 0

    _record(
        "shared_memory_dispatch",
        {
            "items": len(items),
            "graphs": len(tier),
            "plain_bytes": plain_bytes,
            "packed_bytes": packed_bytes,
            "bytes_ratio": round(ratio, 2),
            "exports": shm.counters["exports"],
        },
    )

    minimum = float(os.environ.get("REPRO_SHM_BYTES_RATIO_MIN", "10.0"))
    assert ratio >= minimum, (
        f"expected shared-memory packing to move >= {minimum:.0f}x fewer "
        f"pickled bytes per batch, got {ratio:.1f}x"
    )
