"""Benchmark: the incremental reduction session vs the from-scratch loop.

The value-serialization heuristic (``RS*``) is the pass the paper runs over
whole benchmark suites, and it historically copied the DDG and recomputed
every analysis -- including a full Greedy-k saturation -- on each of its
iterations.  The :class:`~repro.reduction.session.ReductionSession` replaces
that with one in-place working graph whose analyses (descendant maps,
longest-path rows, potential killers, killing-set choices, per-candidate
DV-DAGs) are patched only in the dirty region around the freshly added
serial arcs.

This benchmark drives both engines over reduction-heavy instances -- paper
kernels plus the scale tier up to the 240-operation superblocks (extended
from 200 by PR 9: the asymptotic win is exactly what the comparison is
about, and sb240 was already pinned byte-identical by the kernel-parity
suite) -- and checks:

* the reports are byte-identical (wall time and the engine tag aside);
* the incremental engine actually took its warm paths -- including the
  PR-5 candidate engine (killed-graph patches, pair-verdict reuse,
  keep-alive schedule repairs);
* the aggregate speedup meets ``REPRO_REDUCTION_SPEEDUP_MIN`` (default 15
  locally -- PR 9's vectorized verdict scan and patched cp state measured
  12.9x-14.4x; PR 10's batched push path (block row-patching, bulk mirror
  seeding, the cached component decomposition) plus a gc.collect before
  each timed leg -- the collector used to bill the incremental run for
  hundreds of seconds of prior scratch garbage -- measured 16.0x, with the
  per-instance peak ~18x at scale-sb200 and the measured rows recorded in
  the BENCH_batchpush.json artifact.  CI's smoke mode only guards against
  regressions).

``test_antichain_engine_speedup`` isolates PR 3's kernel claim: it records
the DV-row trace of every Greedy-k candidate during a real reduction of the
largest superblock and replays it through both antichain paths -- the
historic from-scratch pipeline (Kahn + closure rebuild + full
Hopcroft--Karp per call) and the persistent engine (running closure +
matching repair).  The replay asserts byte-identical antichains on every
call and a kernel speedup of ``REPRO_ANTICHAIN_SPEEDUP_MIN`` (default 2.0
locally on ``scale-sb200``; CI smoke mode guards at 1.0).

``test_scale_sb280_replay`` pushes one tier beyond the comparison
population: it drives the warm engine alone over the 280-operation
superblock (the from-scratch loop is the slow side and is already pinned
byte-identical at 240 ops) and records its per-phase breakdown.

``REPRO_BENCH_SMOKE=1`` shrinks the comparison population to seconds for
CI.  The report ends with a bottleneck profile of the incremental engine on
the largest instance, read off the engine's own **monotonic per-stage
timers** (``engine_stats["stage_timings"]``) rather than a deterministic
profiler: the profiler attributed lazily-triggered work (e.g. a candidate
rebuild) to whichever caller happened to fire it, which skewed the PR-3
profile.  With ``REPRO_PROFILE_JSON=<path>`` every profiled instance's
phase seconds + engine counters are appended to a machine-readable JSON
artifact (uploaded by CI) so the next bottleneck item can be read off a
file instead of a log.  ``REPRO_BENCH_JSON=<path>`` additionally captures
the headline numbers themselves (aggregate speedup, per-instance rows, the
sb280 wall time + counters) in one JSON file, which CI merges with the
kernel-level sections of ``bench_vector.py`` and uploads as
``BENCH_vector.json``.
"""

from __future__ import annotations

import gc
import os
import time

from conftest import load_json_artifact, write_json_artifact

from repro.analysis.antichain import PersistentAntichain, antichain_indices_from_rows
from repro.codes import kernel_suite, scale_suite
from repro.experiments import section
from repro.reduction import reduce_saturation_heuristic

#: Kernels with enough register pressure for the reduction loop to iterate.
_KERNEL_NAMES = (
    "linpack-daxpy-u4",
    "linpack-ddot-u4",
    "specfp-tomcatv",
    "specfp-applu",
    "dsp-fir6",
    "whetstone-m8",
)

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _record_bench_json(section_name, payload):
    """Merge one benchmark section's headline numbers into the JSON artifact.

    Inert unless ``REPRO_BENCH_JSON`` names a path.  Read-merge-write (with
    the conftest's atomic replace) so the speedup test and the sb240 replay
    (separate pytest items) land in one file that is never half-written.
    """

    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    data = load_json_artifact(path)
    data["smoke"] = _SMOKE
    data[section_name] = payload
    write_json_artifact(path, data)


def _population():
    """(name, ddg, rtype, budget) instances ordered small to large."""

    instances = []
    kernels = {e.name: e for e in kernel_suite()}
    for name in _KERNEL_NAMES:
        entry = kernels[name]
        rtype = entry.ddg.register_types()[0]
        instances.append((entry.name, entry.ddg, rtype, 4))
    if _SMOKE:
        tier = scale_suite(sizes=(40, 48), superblock_sizes=())
    else:
        tier = scale_suite(sizes=(56, 72), superblock_sizes=(120, 160, 200, 240))
    for entry in tier:
        rtype = entry.ddg.register_types()[0]
        instances.append((entry.name, entry.ddg, rtype, 8))
    return instances


def _normalized_report(result):
    """Everything a ReductionResult reports, minus wall time and engine tag."""

    details = {
        k: v
        for k, v in sorted(result.details.items())
        if k not in ("engine", "engine_stats")
    }
    graph = result.extended_ddg
    return repr(
        (
            result.rtype.name,
            result.target,
            result.success,
            result.original_rs,
            result.achieved_rs,
            result.added_edges,
            result.critical_path_before,
            result.critical_path_after,
            result.method,
            result.optimal,
            details,
            graph.name,
            sorted(
                (e.src, e.dst, e.latency, e.kind.value,
                 None if e.rtype is None else e.rtype.name)
                for e in graph.edges()
            ),
        )
    ).encode()


def _run(ddg, rtype, budget, engine):
    # Collect before the timed region: by the time the comparison reaches
    # the superblock tier the process heap carries hundreds of seconds of
    # prior instances' garbage, and CPython's generational collector bills
    # whoever happens to be running when its thresholds trip.  Measured on
    # sb240: the incremental leg read 16.9s straight after a 260s scratch
    # run vs 13.3s in a fresh process; a collect first recovers most of the
    # gap.  Symmetric for both engines, so the ratio stays honest.
    gc.collect()
    start = time.perf_counter()
    result = reduce_saturation_heuristic(
        ddg.copy(), rtype, budget, engine=engine
    )
    return result, time.perf_counter() - start


def test_incremental_session_speedup():
    rows = []
    total_scratch = 0.0
    total_incremental = 0.0
    largest = None
    for name, ddg, rtype, budget in _population():
        scratch, t_scratch = _run(ddg, rtype, budget, "from-scratch")
        incremental, t_incremental = _run(ddg, rtype, budget, "incremental")

        assert _normalized_report(scratch) == _normalized_report(incremental), (
            f"incremental and from-scratch reports differ on {name}"
        )
        # The incremental path must actually have been taken.
        assert incremental.details["engine"] == "incremental"
        stats = incremental.details["engine_stats"]
        if incremental.details["iterations"]:
            # A stuck final iteration evaluates candidates but applies none.
            expected_pushes = incremental.details["iterations"] - (
                1 if incremental.details["stuck"] else 0
            )
            assert stats["pushes"] == expected_pushes, (
                f"{name}: every applied serialization must go through the session"
            )
            assert stats["dv_rebuilds"] + stats["dv_patches"] + stats["dv_reuses"] > 0
            # Every applied serialization repairs the keep-alive schedule in
            # place instead of re-running the list scheduler (the first push
            # may precede the warm schedule's lazy build, hence the -1).
            assert (
                stats["pushes"] - 1 <= stats["schedule_repairs"] <= stats["pushes"]
            ), f"{name}: keep-alive schedule must be repaired, not rebuilt"

        total_scratch += t_scratch
        total_incremental += t_incremental
        rows.append((name, ddg.n, scratch.original_rs, scratch.achieved_rs,
                     incremental.details["iterations"], t_scratch, t_incremental))
        largest = (name, ddg, rtype, budget)

    print(section("RS* reduction: incremental session vs from-scratch loop"))
    print(f"{'instance':<16} {'ops':>4} {'RS':>3} {'->':>3} {'iters':>5} "
          f"{'scratch':>8} {'incr':>8} {'speedup':>8}")
    for name, ops, rs0, rs1, iters, ts, ti in rows:
        ratio = ts / ti if ti else float("inf")
        print(f"{name:<16} {ops:>4} {rs0:>3} {rs1:>3} {iters:>5} "
              f"{ts:>7.2f}s {ti:>7.2f}s {ratio:>7.2f}x")
    speedup = total_scratch / total_incremental
    print(f"{'TOTAL':<16} {'':>4} {'':>3} {'':>3} {'':>5} "
          f"{total_scratch:>7.2f}s {total_incremental:>7.2f}s {speedup:>7.2f}x")

    _print_bottleneck_profile(largest)
    _record_bench_json(
        "reduction_speedup",
        {
            "aggregate_speedup": round(speedup, 3),
            "total_scratch_seconds": round(total_scratch, 3),
            "total_incremental_seconds": round(total_incremental, 3),
            "instances": [
                {
                    "name": name,
                    "ops": ops,
                    "rs_before": rs0,
                    "rs_after": rs1,
                    "iterations": iters,
                    "scratch_seconds": round(ts, 3),
                    "incremental_seconds": round(ti, 3),
                }
                for name, ops, rs0, rs1, iters, ts, ti in rows
            ],
        },
    )

    # Local default states the claim; CI smoke mode overrides to a
    # regression guard (shared runners time noisily and the smoke suite is
    # too small for the asymptotic win to show).
    default_min = "1.0" if _SMOKE else "15"
    minimum = float(os.environ.get("REPRO_REDUCTION_SPEEDUP_MIN", default_min))
    assert speedup >= minimum, (
        f"expected the incremental session to be >= {minimum:.1f}x faster, "
        f"got {speedup:.2f}x"
    )


def _record_dv_traces(ddg, rtype, budget):
    """Drive the real heuristic loop and capture every candidate's DV rows.

    Returns ``{label: [segment, ...]}`` where each segment is the list of
    DV-row snapshots between two rebuilds of that candidate's killing
    function -- exactly the monotone growth the persistent engine consumed
    during the run (one snapshot per Greedy-k evaluation).  The run goes
    through ``_HeuristicLoop``/``_SessionDriver`` themselves (observed via
    ``on_iteration``), not a re-implementation, so the recorded workload is
    the one ``reduce_saturation_heuristic`` really executes.
    """

    from repro.reduction.heuristic import _HeuristicLoop, _SessionDriver
    from repro.reduction.serialization import SerializationMode

    driver = _SessionDriver(ddg.copy(), rtype, SerializationMode.OFFSETS, True)
    session = driver.session
    traces = {}

    def snapshot(_sat=None):
        for label, state in session._saturation._candidate_states.items():
            if state.analysis is None or state._engine is None:
                continue
            segments = traces.setdefault(label, [])
            if not segments or segments[-1][0] != state.rebuild_count:
                segments.append((state.rebuild_count, []))
            segments[-1][1].append(state.dv_rows())

    loop = _HeuristicLoop(driver, max_iterations=2000)
    loop.on_iteration = snapshot
    initial = driver.saturation()
    snapshot()
    loop.run_to(initial, budget)
    return {label: [seg for _, seg in segments] for label, segments in traces.items()}


def test_antichain_engine_speedup():
    """The persistent antichain engine vs the per-call from-scratch kernel.

    Replays the recorded DV-row traces of a real reduction run through both
    paths, asserting byte-identical antichains on every call and the PR-3
    kernel claim: >= 2x on the 200-operation superblock locally
    (``REPRO_ANTICHAIN_SPEEDUP_MIN`` overrides; CI smoke mode guards at 1x
    on its small tier).
    """

    if _SMOKE:
        # The smallest superblock tier: candidate killing functions are
        # stable across iterations there (long monotone segments), which is
        # the regime the persistent engine targets -- layered toy DAGs
        # rebuild nearly every call and only measure seeding overhead.
        entry = scale_suite(sizes=(), superblock_sizes=(120,))[0]
    else:
        entry = scale_suite(sizes=(), superblock_sizes=(200,))[0]
    rtype = entry.ddg.register_types()[0]
    traces = _record_dv_traces(entry.ddg, rtype, 8)
    assert traces, "the reduction run must exercise candidate DV states"

    t_scratch = 0.0
    t_persistent = 0.0
    calls = 0
    segment_count = 0
    for label, segments in sorted(traces.items()):
        for segment in segments:
            segment_count += 1
            calls += len(segment)

            start = time.perf_counter()
            reference = [antichain_indices_from_rows(rows) for rows in segment]
            t_scratch += time.perf_counter() - start

            # The persistent replay pays for everything the real engine
            # pays for: seeding, per-arc closure maintenance, frame
            # bookkeeping, matching repair and extraction.
            start = time.perf_counter()
            engine = PersistentAntichain(len(segment[0]), rows=segment[0])
            replayed = [list(engine.antichain_indices())]
            previous = segment[0]
            for rows in segment[1:]:
                engine.push()
                for i, (new, old) in enumerate(zip(rows, previous)):
                    engine.insert_mask(i, new & ~old)
                replayed.append(list(engine.antichain_indices()))
                previous = rows
            t_persistent += time.perf_counter() - start

            assert replayed == reference, (
                f"persistent antichains diverge from the from-scratch path "
                f"on candidate {label!r}"
            )

    speedup = t_scratch / t_persistent if t_persistent else float("inf")
    print(section(f"antichain kernel: persistent engine vs from-scratch ({entry.name})"))
    print(f"{'calls':>6} {'segments':>9} {'scratch':>9} {'persistent':>11} {'speedup':>8}")
    print(f"{calls:>6} {segment_count:>9} {t_scratch:>8.2f}s {t_persistent:>10.2f}s "
          f"{speedup:>7.2f}x")

    default_min = "1.0" if _SMOKE else "2.0"
    minimum = float(os.environ.get("REPRO_ANTICHAIN_SPEEDUP_MIN", default_min))
    assert speedup >= minimum, (
        f"expected the persistent antichain engine to be >= {minimum:.1f}x "
        f"faster than the from-scratch kernel, got {speedup:.2f}x"
    )


def _record_profile_artifact(name, result, wall_time):
    """Append one instance's per-phase breakdown to the JSON profile artifact.

    Inert unless ``REPRO_PROFILE_JSON`` names a path.  The artifact carries,
    per instance, the engine's monotonic stage timers plus every engine
    counter (``dv_patches``, ``pair_verdicts_reused``, ``schedule_repairs``,
    ...), which is what makes the next "profile after PR N" roadmap item
    machine-readable instead of a log-scrape.
    """

    path = os.environ.get("REPRO_PROFILE_JSON", "")
    if not path:
        return
    data = load_json_artifact(path)
    stats = dict(result.details["engine_stats"])
    timings = stats.pop("stage_timings", {})
    instances = data.setdefault("instances", {})
    instances[name] = {
        "wall_time_seconds": round(wall_time, 4),
        "iterations": result.details["iterations"],
        "phase_seconds": {k: round(v, 4) for k, v in sorted(timings.items())},
        "unattributed_seconds": round(max(0.0, wall_time - sum(timings.values())), 4),
        "counters": stats,
    }
    write_json_artifact(path, data)


def _print_stage_profile(name, result, wall_time):
    """Per-stage breakdown of one incremental run, off the engine's timers.

    The engine accumulates each stage's wall clock with monotonic timers at
    the stage boundary itself, so a candidate rebuild is billed to
    ``dv_rebuild`` no matter which lazy query triggered it -- the
    deterministic-profiler attribution used before PR 5 billed it to the
    triggering caller, which skewed the PR-3 profile.
    """

    stats = result.details["engine_stats"]
    timings = stats["stage_timings"]
    print(section(f"incremental-engine bottleneck profile ({name})"))
    print(f"{'stage':<18} {'seconds':>8} {'share':>7}")
    for stage, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        share = seconds / wall_time if wall_time else 0.0
        print(f"{stage:<18} {seconds:>7.2f}s {share:>6.1%}")
    unattributed = max(0.0, wall_time - sum(timings.values()))
    print(f"{'(loop/driver)':<18} {unattributed:>7.2f}s "
          f"{(unattributed / wall_time if wall_time else 0.0):>6.1%}")
    print(f"{'wall time':<18} {wall_time:>7.2f}s")
    counters = {k: v for k, v in sorted(stats.items()) if isinstance(v, int)}
    print("counters: " + ", ".join(f"{k}={v}" for k, v in counters.items()))


def _print_bottleneck_profile(largest):
    """Record where the incremental engine now spends its time (stage timers)."""

    name, ddg, rtype, budget = largest
    start = time.perf_counter()
    result = reduce_saturation_heuristic(
        ddg.copy(), rtype, budget, engine="incremental"
    )
    wall_time = time.perf_counter() - start
    _print_stage_profile(name, result, wall_time)
    _record_profile_artifact(name, result, wall_time)


def test_scale_sb280_replay():
    """Warm-engine replay one tier beyond the comparison population.

    The incremental engine alone drives the 280-operation superblock (the
    from-scratch loop is the slow side; byte-identity is already pinned up
    to 240 ops and by the property tests).  Asserts the PR-5 warm paths
    actually carry the run and records the per-phase breakdown in the
    profile artifact, so the next scale bottleneck is machine-readable.
    """

    entry = scale_suite(sizes=(), superblock_sizes=(280,))[0]
    rtype = entry.ddg.register_types()[0]
    start = time.perf_counter()
    result = reduce_saturation_heuristic(
        entry.ddg.copy(), rtype, 8, engine="incremental"
    )
    wall_time = time.perf_counter() - start
    assert result.details["iterations"] > 0
    stats = result.details["engine_stats"]
    assert stats["dv_patches"] + stats["dv_reuses"] > 0, (
        "sb240 must exercise the warm candidate paths"
    )
    assert stats["pair_verdicts_reused"] > 0
    assert stats["pushes"] - 1 <= stats["schedule_repairs"] <= stats["pushes"]
    _print_stage_profile(entry.name, result, wall_time)
    _record_profile_artifact(entry.name, result, wall_time)
    counters = {k: v for k, v in sorted(stats.items()) if isinstance(v, int)}
    _record_bench_json(
        "scale_sb280_replay",
        {
            "instance": entry.name,
            "wall_time_seconds": round(wall_time, 3),
            "iterations": result.details["iterations"],
            "phase_seconds": {
                k: round(v, 4) for k, v in sorted(stats["stage_timings"].items())
            },
            "counters": counters,
        },
    )


def test_vectorization_stage_deltas():
    """Per-stage timer deltas of the flat core before/after vectorization.

    Runs the largest comparison instance through the incremental engine
    twice -- once with ``flatbuf.use("off")`` (the exact PR-6 scalar loops)
    and once with the configured buffer backend -- and prints the engine's
    own stage timers side by side.  This is the evidence trail for each
    kernel conversion: a stage whose delta is ~zero did not earn its vector
    path.  Reports stay byte-identical across the two runs (asserted), so
    the deltas are pure engine time.
    """

    from repro.analysis import flatbuf

    name, ddg, rtype, budget = _population()[-1]

    with flatbuf.use("off"):
        scalar, t_scalar = _run(ddg, rtype, budget, "incremental")
    vector, t_vector = _run(ddg, rtype, budget, "incremental")

    assert _normalized_report(scalar) == _normalized_report(vector), (
        f"vectorized and scalar reports differ on {name}"
    )
    backend = vector.details["engine_stats"]["vector_backend"]
    if backend != "off":
        assert vector.details["engine_stats"]["vector_kernel_calls"] > 0, (
            "the vector kernels must actually carry the run"
        )
    assert scalar.details["engine_stats"]["vector_kernel_calls"] == 0

    before = scalar.details["engine_stats"]["stage_timings"]
    after = vector.details["engine_stats"]["stage_timings"]
    print(section(f"flat-core vectorization: stage deltas ({name}, backend={backend})"))
    print(f"{'stage':<18} {'scalar':>8} {'vector':>8} {'delta':>8} {'ratio':>7}")
    stages = sorted(set(before) | set(after), key=lambda s: -before.get(s, 0.0))
    for stage in stages:
        b, a = before.get(stage, 0.0), after.get(stage, 0.0)
        ratio = b / a if a else float("inf")
        print(f"{stage:<18} {b:>7.2f}s {a:>7.2f}s {b - a:>+7.2f}s {ratio:>6.2f}x")
    ratio = t_scalar / t_vector if t_vector else float("inf")
    print(f"{'wall time':<18} {t_scalar:>7.2f}s {t_vector:>7.2f}s "
          f"{t_scalar - t_vector:>+7.2f}s {ratio:>6.2f}x")

    _record_bench_json(
        "vectorization_stage_deltas",
        {
            "instance": name,
            "backend": backend,
            "scalar_wall_seconds": round(t_scalar, 3),
            "vector_wall_seconds": round(t_vector, 3),
            "stages": {
                stage: {
                    "scalar_seconds": round(before.get(stage, 0.0), 4),
                    "vector_seconds": round(after.get(stage, 0.0), 4),
                }
                for stage in stages
            },
        },
    )


def test_session_undo_restores_prior_timing_state():
    """Push/pop keeps the session consistent (and cheap) for explorations."""

    from repro.core.types import Value
    from repro.reduction import ReductionSession

    entry = scale_suite(sizes=(40,), superblock_sizes=())[0]
    rtype = entry.ddg.register_types()[0]
    session = ReductionSession(entry.ddg, rtype)
    before = session.analysis_fingerprint()
    saturating = list(session.saturation().saturating_values)
    pushed = None
    for u in saturating:
        for v in saturating:
            if u == v:
                continue
            edges = session.legal_serialization(u, v)
            if edges:
                session.push(edges)
                pushed = edges
                break
        if pushed:
            break
    assert pushed, "the scale graph must admit at least one serialization"
    assert session.analysis_fingerprint() != before
    session.pop()
    assert session.analysis_fingerprint() == before
