"""Micro-benchmark: the shared AnalysisContext vs the uncached seed path.

The Figure-1 flow asks the same structural questions about one DDG at every
stage (saturation, reduction, scheduling); the seed recomputed them from
scratch on every query.  This benchmark runs the pipeline experiment over
the full population (paper kernels + random DDGs + the scale tier) twice --
once with :func:`repro.analysis.caching_disabled` emulating the seed
behaviour, once with the shared memoized contexts -- and checks:

* the cached pipeline is at least 2x faster end to end;
* caching never changes a single reported number;
* the parallel batch engine produces byte-identical reports to the serial
  path.
"""

from __future__ import annotations

import os
import time

from repro.analysis import caching_disabled
from repro.codes import benchmark_suite, scale_suite
from repro.core import superscalar
from repro.experiments import run_pipeline_experiment, section


def _full_suite():
    return benchmark_suite() + scale_suite()


def _run(suite, machine, **kwargs):
    return run_pipeline_experiment(
        suite=suite,
        machine=machine,
        registers=6,
        max_nodes=100,
        compare_baseline=False,
        **kwargs,
    )


def test_analysis_cache_speedup(benchmark):
    machine = superscalar(int_registers=6, float_registers=6)

    # Fresh suite per mode: contexts ride on the graph objects, so reusing
    # one suite would leak warm caches into the "uncached" measurement.
    t0 = time.perf_counter()
    with caching_disabled():
        uncached_report = _run(_full_suite(), machine)
    uncached_time = time.perf_counter() - t0

    suite = _full_suite()
    t0 = time.perf_counter()
    cached_report = benchmark.pedantic(
        lambda: _run(suite, machine), rounds=1, iterations=1
    )
    cached_time = time.perf_counter() - t0

    speedup = uncached_time / cached_time
    print(section("AnalysisContext: cached vs uncached Figure-1 pipeline"))
    print(f"instances               : {len(cached_report.outcomes)}")
    print(f"uncached (seed) path    : {uncached_time:.2f}s")
    print(f"cached AnalysisContext  : {cached_time:.2f}s")
    print(f"speedup                 : {speedup:.2f}x")

    assert cached_report.to_table() == uncached_report.to_table(), (
        "caching must never change a reported number"
    )
    # Single-round wall-clock ratios are noisy on shared CI runners;
    # REPRO_CACHE_SPEEDUP_MIN lets CI gate on a regression guard while the
    # local/default threshold states the actual claim.  The claim dropped
    # from 2x when the incremental ReductionSession landed: the session
    # keeps its own warm analyses (independent of the context cache), so
    # the "uncached" pipeline is no longer as slow as the seed was --
    # bench_reduction_incremental.py now carries the reduction-path claim.
    minimum = float(os.environ.get("REPRO_CACHE_SPEEDUP_MIN", "1.5"))
    assert speedup >= minimum, (
        f"expected the cached pipeline to be >= {minimum:.1f}x faster, got {speedup:.2f}x"
    )


def test_parallel_engine_reports_are_byte_identical():
    machine = superscalar(int_registers=6, float_registers=6)
    suite = benchmark_suite(max_size=24)
    serial = _run(suite, machine)
    threaded = _run(suite, machine, engine="thread")
    processed = _run(suite, machine, engine="process")
    assert serial.to_table() == threaded.to_table() == processed.to_table()
