"""Reproduces Figure 1: the early register-pressure management pipeline.

Paper claim: after the RS analysis pass (computation + optional reduction)
the DAG "is free from register constraints and can be sent to the scheduler
and the register allocator" -- i.e. a register-blind scheduler followed by a
plain allocator never spills, unlike the schedule-then-spill baseline.
"""

from __future__ import annotations

from repro.core import superscalar
from repro.experiments import run_pipeline_experiment, section


def test_figure1_pipeline(benchmark, small_kernel_suite, engine):
    machine = superscalar(int_registers=6, float_registers=6)
    report = benchmark.pedantic(
        lambda: run_pipeline_experiment(
            suite=small_kernel_suite, machine=machine, registers=6, engine=engine
        ),
        rounds=1,
        iterations=1,
    )

    print(section("Figure 1: DAG -> RS analysis -> scheduling -> allocation"))
    print(report.to_table())
    reducible = [o for o in report.outcomes if o.reduction_success]
    print(f"instances: {len(report.outcomes)}, spill-free after RS management: "
          f"{report.spill_free_count}")
    baseline_spilled = sum(1 for o in report.outcomes if o.baseline_memory_ops > 0)
    print(f"baseline (schedule-then-spill) inserted memory traffic on {baseline_spilled} instances")

    # Every instance the reduction pass could handle allocates without spill.
    for outcome in reducible:
        assert outcome.spill_free, f"{outcome.name} spilled despite RS management"
        assert outcome.registers_used <= outcome.registers
