"""Reproduces Section 5, experiment 2: optimality of the RS reduction heuristic.

Paper claim (percentages of all instances):

* RS = RS* and ILP = ILP* : 72.22 %   (dominant category)
* RS = RS* and ILP < ILP* : 18.5  %
* RS > RS* and ILP = ILP* :  4.63 %
* RS > RS* and ILP < ILP* : < 1   %
* RS > RS* and ILP > ILP* :  3.7  %
* RS = RS* and ILP > ILP* : impossible
* RS < RS*                : impossible

We do not expect to match the absolute percentages (different DAG
population, different solver), but the shape must hold: the dominant
category is optimal-RS/optimal-ILP, and the two impossible categories are
never observed.
"""

from __future__ import annotations

from repro.experiments import PAPER_BREAKDOWN, run_reduction_optimality, section


def test_reduction_optimality_breakdown(benchmark, tiny_kernel_suite, machine, engine):
    report = benchmark.pedantic(
        lambda: run_reduction_optimality(
            suite=tiny_kernel_suite, machine=machine, max_nodes=12, time_limit=90,
            engine=engine,
        ),
        rounds=1,
        iterations=1,
    )

    print(section("Section 5 / RS reduction: heuristic vs optimal"))
    print(report.to_table())
    print()
    print(report.breakdown_report())
    print(f"instances where even the optimal method must spill: {report.spill_instances}")
    if report.engine_counters:
        print(report.engine_summary())

    assert report.instances >= 3
    assert report.impossible_cases_observed == 0, "impossible categories observed"
    pct = report.category_percentages()
    # dominant category: optimal RS reduction with optimal ILP loss
    assert report.dominant_category == "RS=RS* ILP=ILP*"
    assert pct["RS=RS* ILP=ILP*"] >= 50.0
