"""Benchmark: fleet chaos smoke -- the distributed fleet under network faults.

The fleet layer (:mod:`repro.fleet`) promises that *distribution* is an
execution detail on top of the chaos invariant: lease items to a broker-fed
fleet of worker processes, drop and duplicate their result messages, sever
a connection mid-lease, hard-kill a leaseholder -- and the experiment
reports must come out **byte-identical** to a serial fault-free run, with
every disturbance accounted for in the per-item
:class:`~repro.experiments.ItemOutcome` records and no item lost or
double-counted.

This benchmark runs the experiment smoke suite twice:

* a **reference** pass -- serial engine, all fault/supervision/fleet
  environment stripped;
* a **fleet chaos** pass -- ``fleet`` policy over 3 local worker processes,
  ``REPRO_FAULTS`` active with the network fault matrix (planted drop /
  duplicate / partition faults plus one worker killed mid-lease, then
  rate-based drops on top), short leases so recovery is visible in seconds.

It asserts the fleet pass completes, matches the reference byte for byte,
reports one terminal outcome per dispatched item, and actually observed
network faults (otherwise the run proved nothing).  The full fault history
is written to ``REPRO_FAULT_HISTORY_JSON`` (default
``fleet-fault-history.json``) so CI can upload it as an artifact.
``REPRO_BENCH_SMOKE=1`` shrinks the suite for CI runners.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.experiments import (
    BatchEngine,
    outcomes_as_dicts,
    run_pipeline_experiment,
    section,
)
from repro.testing import FaultPlan

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Everything that can switch the engine into supervised/fleet mode from
#: the environment; the reference pass runs with all of it stripped.
_SUPERVISION_ENV = (
    "REPRO_FAULTS", "REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_SPECULATE",
    "REPRO_FLEET_LEASE", "REPRO_FLEET_HEARTBEAT", "REPRO_FLEET_RESPAWN",
)

#: Used when the job does not export REPRO_FAULTS itself: the planted
#: quartet guarantees one dropped result, one broker-side duplicate
#: delivery, one severed connection, and one worker hard-killed mid-lease;
#: the drop rate adds reproducible background noise on top.
_DEFAULT_FAULTS = "drop@0,dup@1,partition@2,leasekill@3,drop:0.05,seed:20"


@contextmanager
def _environment(**overrides):
    """Temporarily set/remove (value None) environment variables."""

    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _run_smoke_suite(engine):
    """One pipeline-experiment pass; returns (table, outcomes)."""

    max_nodes = 10 if _SMOKE else 14
    suite = benchmark_suite(max_size=max_nodes)
    machine = superscalar(int_registers=4, float_registers=4)
    pipeline = run_pipeline_experiment(
        suite=suite, machine=machine, registers=4, engine=engine
    )
    return pipeline.to_table(), list(pipeline.item_outcomes)


def test_fleet_chaos_run_is_byte_identical_to_serial_reference():
    spec = os.environ.get("REPRO_FAULTS", _DEFAULT_FAULTS)
    plan = FaultPlan.parse(spec)
    assert plan.active, f"REPRO_FAULTS={spec!r} plans no faults at all"
    history_file = os.environ.get(
        "REPRO_FAULT_HISTORY_JSON", "fleet-fault-history.json"
    )
    workers = int(os.environ.get("REPRO_FLEET_WORKERS", "3"))

    cleared = {key: None for key in _SUPERVISION_ENV}
    with _environment(**cleared):
        t0 = time.perf_counter()
        reference, reference_outcomes = _run_smoke_suite(BatchEngine("serial"))
        reference_time = time.perf_counter() - t0

    timeout = os.environ.get("REPRO_TIMEOUT", "30")
    lease = os.environ.get("REPRO_FLEET_LEASE", "2.0")
    heartbeat = os.environ.get("REPRO_FLEET_HEARTBEAT", "0.2")
    with _environment(REPRO_FAULTS=spec, REPRO_TIMEOUT=timeout,
                      REPRO_FLEET_LEASE=lease,
                      REPRO_FLEET_HEARTBEAT=heartbeat):
        t0 = time.perf_counter()
        fleet, fleet_outcomes = _run_smoke_suite(
            BatchEngine("fleet", workers=workers)
        )
        fleet_time = time.perf_counter() - t0

    items = len(fleet_outcomes)
    faulted = [o for o in fleet_outcomes if o.faulted]
    fault_events = sum(len(o.faults) for o in faulted)
    retried = sum(1 for o in fleet_outcomes if o.attempts > 1)
    kinds = sorted({e.kind for o in faulted for e in o.faults})

    print(section("Fleet chaos smoke: distributed fleet under network faults"))
    print(f"fault plan         : {spec}")
    print(f"fleet              : {workers} workers, lease {lease}s, "
          f"heartbeat {heartbeat}s")
    print(f"reference (serial) : {reference_time:.3f}s over "
          f"{len(reference_outcomes)} items")
    print(f"fleet chaos        : {fleet_time:.3f}s over {items} items")
    print(f"faulted items      : {len(faulted)} ({fault_events} fault events, "
          f"{retried} items retried)")
    print(f"fault kinds seen   : {', '.join(kinds) if kinds else 'none'}")

    payload = {
        "fault_spec": spec,
        "workers": workers,
        "lease_seconds": float(lease),
        "heartbeat_seconds": float(heartbeat),
        "timeout_seconds": float(timeout),
        "items": items,
        "faulted_items": len(faulted),
        "fault_events": fault_events,
        "fault_kinds": kinds,
        "reference_seconds": reference_time,
        "fleet_seconds": fleet_time,
        "outcomes": outcomes_as_dicts(fleet_outcomes),
    }
    with open(history_file, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"fault history      : {history_file}")

    assert fleet == reference, (
        "fleet-chaos reports must be byte-identical to the serial "
        "fault-free run"
    )
    assert items == len(reference_outcomes), (
        "every dispatched item must report an ItemOutcome"
    )
    assert all(o.status == "ok" for o in fleet_outcomes), (
        "every item must reach a terminal ok outcome: nothing lost"
    )
    assert len(faulted) >= 3, (
        "the fleet run observed almost no faults; the plan proved nothing"
    )
