"""Reproduces the Section-5 runtime observation: optimal methods are expensive.

The paper: "Since all the problems of RS computation and reduction are
NP-hard, reaching the optimal solutions were very time consuming (from many
seconds to many days)" -- while the heuristics run in negligible time.
These pytest-benchmark timings measure both sides on a mid-size kernel.
"""

from __future__ import annotations

import pytest

from repro.codes import suite_by_name
from repro.core.types import FLOAT
from repro.reduction import reduce_saturation_exact, reduce_saturation_heuristic
from repro.saturation import exact_saturation, greedy_saturation

KERNEL = "livermore-k7"


@pytest.fixture(scope="module")
def kernel():
    return suite_by_name(KERNEL).ddg


def test_greedy_saturation_runtime(benchmark, kernel):
    result = benchmark(lambda: greedy_saturation(kernel, FLOAT))
    assert result.rs >= 1


def test_exact_saturation_runtime(benchmark, kernel):
    result = benchmark.pedantic(
        lambda: exact_saturation(kernel, FLOAT), rounds=2, iterations=1
    )
    assert result.optimal


def test_heuristic_reduction_runtime(benchmark, kernel, machine):
    result = benchmark(
        lambda: reduce_saturation_heuristic(kernel, FLOAT, 4, machine=machine)
    )
    assert result.success


def test_exact_reduction_runtime(benchmark, kernel, machine):
    result = benchmark.pedantic(
        lambda: reduce_saturation_exact(kernel, FLOAT, 4, machine=machine),
        rounds=1,
        iterations=1,
    )
    assert result.optimal


def test_runtime_gap_summary(kernel, machine):
    """Non-timed sanity check printing the heuristic/exact runtime ratio."""

    import time

    t0 = time.perf_counter()
    greedy_saturation(kernel, FLOAT)
    heuristic_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact_saturation(kernel, FLOAT)
    exact_time = time.perf_counter() - t0
    print(f"\n{KERNEL}: heuristic {heuristic_time * 1e3:.1f} ms vs exact {exact_time * 1e3:.1f} ms "
          f"({exact_time / max(heuristic_time, 1e-9):.0f}x slower)")
    assert exact_time >= heuristic_time * 0.5  # the exact method is never dramatically faster
