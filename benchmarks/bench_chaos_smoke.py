"""Benchmark: chaos smoke -- the experiment suite under injected faults.

The supervised batch layer promises that worker failures are an execution
detail: crash a fraction of the workers, make others hang, and the
experiment reports must come out **byte-identical** to a serial fault-free
run, with every disturbance accounted for in the per-item
:class:`~repro.experiments.ItemOutcome` records.

This benchmark runs the experiment smoke suite twice:

* a **reference** pass -- serial engine, all fault/supervision environment
  stripped (CI exports ``REPRO_FAULTS`` job-wide, so the reference must
  actively shed it);
* a **chaos** pass -- process-policy engine, ``REPRO_FAULTS`` active
  (default ``crash:0.1,hang:0.05,...``: >=10% of worker attempts die or
  stall), per-item timeout from ``REPRO_TIMEOUT`` (default 30s).

It asserts the chaos pass completes, matches the reference byte for byte,
reports one outcome per dispatched item, and actually observed faults
(otherwise the run proved nothing).  The full fault history is written to
``REPRO_FAULT_HISTORY_JSON`` (default ``chaos-fault-history.json``) so CI
can upload it as an artifact.  ``REPRO_BENCH_SMOKE=1`` shrinks the suite
for CI runners.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.experiments import (
    BatchEngine,
    outcomes_as_dicts,
    run_ilp_size_study,
    run_pipeline_experiment,
    run_rs_optimality,
    section,
)
from repro.testing import FaultPlan

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Everything that can switch the engine into supervised mode from the
#: environment; the reference pass runs with all of it stripped.
_SUPERVISION_ENV = ("REPRO_FAULTS", "REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_SPECULATE")

#: Used when the job does not export REPRO_FAULTS itself.  The seed makes
#: the rate-based schedule reproducible run over run; the planted faults
#: at indices 0-2 guarantee the run observes faults even when the rate
#: draws come up clean on a small smoke suite; hangs are kept well under
#: the item timeout so they delay rather than kill attempts.
_DEFAULT_FAULTS = "crash@0,corrupt@1,hang@2,crash:0.1,hang:0.05,seed:20,hangdur:1.0"


@contextmanager
def _environment(**overrides):
    """Temporarily set/remove (value None) environment variables."""

    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _run_smoke_suite(engine):
    """One pass of the experiment smoke suite.

    Returns the joined timing-free report tables (the byte-identity
    subject), the structural projection of the RS-optimality comparisons
    (that report's table prints wall times, which differ even between two
    fault-free serial runs -- everything else must match exactly), and the
    concatenated per-item outcome records from all three drivers.
    """

    max_nodes = 10 if _SMOKE else 14
    suite = benchmark_suite(max_size=max_nodes)
    machine = superscalar(int_registers=4, float_registers=4)
    pipeline = run_pipeline_experiment(
        suite=suite, machine=machine, registers=4, engine=engine
    )
    optimality = run_rs_optimality(suite=suite, max_nodes=max_nodes, engine=engine)
    sizes = run_ilp_size_study(sizes=(10, 14) if _SMOKE else (10, 15, 20), engine=engine)
    reports = "\n".join([pipeline.to_table(), sizes.to_table()])
    rs_rows = [
        (c.name, c.rtype, c.nodes, c.edges, c.rs_exact, c.rs_heuristic, c.backend)
        for c in optimality.comparisons
    ]
    outcomes = (
        list(pipeline.item_outcomes)
        + list(optimality.item_outcomes)
        + list(sizes.item_outcomes)
    )
    return reports, rs_rows, outcomes


def test_chaos_run_is_byte_identical_to_serial_reference():
    spec = os.environ.get("REPRO_FAULTS", _DEFAULT_FAULTS)
    plan = FaultPlan.parse(spec)
    assert plan.active, f"REPRO_FAULTS={spec!r} plans no faults at all"
    history_file = os.environ.get("REPRO_FAULT_HISTORY_JSON", "chaos-fault-history.json")

    cleared = {key: None for key in _SUPERVISION_ENV}
    with _environment(**cleared):
        t0 = time.perf_counter()
        reference, reference_rs, reference_outcomes = _run_smoke_suite(
            BatchEngine("serial")
        )
        reference_time = time.perf_counter() - t0

    timeout = os.environ.get("REPRO_TIMEOUT", "30")
    with _environment(REPRO_FAULTS=spec, REPRO_TIMEOUT=timeout):
        t0 = time.perf_counter()
        chaos, chaos_rs, chaos_outcomes = _run_smoke_suite(
            BatchEngine("process", workers=2)
        )
        chaos_time = time.perf_counter() - t0

    items = len(chaos_outcomes)
    faulted = [o for o in chaos_outcomes if o.faulted]
    fault_events = sum(len(o.faults) for o in faulted)
    retried = sum(1 for o in chaos_outcomes if o.attempts > 1)

    print(section("Chaos smoke: experiment suite under injected faults"))
    print(f"fault plan         : {spec}")
    print(f"item timeout       : {timeout}s")
    print(f"reference (serial) : {reference_time:.3f}s over {len(reference_outcomes)} items")
    print(f"chaos (process)    : {chaos_time:.3f}s over {items} items")
    print(f"faulted items      : {len(faulted)} ({fault_events} fault events, "
          f"{retried} items retried)")

    payload = {
        "fault_spec": spec,
        "timeout_seconds": float(timeout),
        "items": items,
        "faulted_items": len(faulted),
        "fault_events": fault_events,
        "reference_seconds": reference_time,
        "chaos_seconds": chaos_time,
        "outcomes": outcomes_as_dicts(chaos_outcomes),
    }
    with open(history_file, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"fault history      : {history_file}")

    assert chaos == reference, (
        "chaos-run reports must be byte-identical to the serial fault-free run"
    )
    assert chaos_rs == reference_rs, (
        "chaos-run RS-optimality results must match the serial fault-free run"
    )
    assert items == len(reference_outcomes), (
        "every dispatched item must report an ItemOutcome"
    )
    assert all(o.status == "ok" for o in chaos_outcomes)
    assert len(faulted) >= 3, (
        "the chaos run observed almost no faults; the plan proved nothing"
    )
