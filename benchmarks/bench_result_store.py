"""Benchmark: the persistent cross-run result store, cold vs warm.

The paper's Section-5 protocol re-solves the same instances suite run after
suite run (and so did this harness' CI): every pipeline invocation, exact
intLP and Greedy-k run was recomputed from scratch even though nothing
about the instance had changed.  The :mod:`repro.analysis.store` layer
keys every result by the graph's canonical content hash, so a second run
of the same experiment suite is answered from disk.

This benchmark runs the experiment smoke suite **twice** against one store
and checks the whole contract:

* the warm run's reports are **byte-identical** to the cold run's (the
  store must be a pure cache, invisible in every table);
* the warm run's store hit-rate is **> 90%** (experiment-level entries are
  answered before any worker dispatch);
* the warm run is at least ``REPRO_STORE_SPEEDUP_MIN`` times faster than
  the cold one (default 5.0 -- the warm path is store reads only, measured
  ~40-90x locally);
* the store statistics are dumped to ``REPRO_STORE_STATS_FILE`` (default
  ``store-stats.json`` in the working directory) so CI can upload them as
  an artifact.

The store location honours the ambient configuration (``REPRO_STORE_DIR``);
without one a temporary directory is used and removed afterwards, so the
benchmark is hermetic by default.  ``REPRO_BENCH_SMOKE=1`` shrinks the
suite for CI runners.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager

from repro.analysis import active_store, store_active
from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.experiments import (
    run_ilp_size_study,
    run_pipeline_experiment,
    run_rs_optimality,
    section,
)

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@contextmanager
def _benchmark_store():
    """The ambient store when configured, else a fresh temporary one."""

    ambient = active_store()
    if ambient is not None:
        yield ambient
        return
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        with store_active(tmp) as store:
            yield store


def _run_smoke_suite(engine):
    """One pass of the experiment smoke suite; returns its printed reports.

    Three drivers with different result shapes (pipeline outcomes, RS
    comparisons, model-size points) all funnel through the same
    engine-level store consultation, so the hit-rate measures the whole
    experiment layer, not one lucky driver.
    """

    max_nodes = 10 if _SMOKE else 16
    suite = benchmark_suite(max_size=max_nodes)
    machine = superscalar(int_registers=4, float_registers=4)
    pipeline = run_pipeline_experiment(
        suite=suite, machine=machine, registers=4, engine=engine
    )
    optimality = run_rs_optimality(suite=suite, max_nodes=max_nodes, engine=engine)
    sizes = run_ilp_size_study(sizes=(10, 14) if _SMOKE else (10, 15, 20), engine=engine)
    return "\n".join(
        [pipeline.to_table(), optimality.to_table(), sizes.to_table()]
    )


def test_warm_store_run_is_faster_and_byte_identical(engine):
    default_min = 5.0
    minimum = float(os.environ.get("REPRO_STORE_SPEEDUP_MIN", default_min))
    stats_file = os.environ.get("REPRO_STORE_STATS_FILE", "store-stats.json")

    with _benchmark_store() as store:
        t0 = time.perf_counter()
        cold_reports = _run_smoke_suite(engine)
        cold_time = time.perf_counter() - t0

        cold_stats = store.stats.as_dict()
        warm_mark_hits, warm_mark_lookups = store.stats.hits, store.stats.lookups

        t0 = time.perf_counter()
        warm_reports = _run_smoke_suite(engine)
        warm_time = time.perf_counter() - t0

        warm_hits = store.stats.hits - warm_mark_hits
        warm_lookups = store.stats.lookups - warm_mark_lookups
        hit_rate = warm_hits / warm_lookups if warm_lookups else 0.0
        speedup = cold_time / warm_time if warm_time > 0 else float("inf")

        print(section("Persistent result store: cold vs warm suite run"))
        print(f"store root         : {store.root}")
        print(f"entries on disk    : {store.entry_count()}")
        print(f"cold run           : {cold_time:.3f}s ({cold_stats['puts']} puts)")
        print(f"warm run           : {warm_time:.3f}s "
              f"({warm_hits}/{warm_lookups} lookups hit, {hit_rate:.1%})")
        print(f"speedup            : {speedup:.1f}x (floor {minimum:.1f}x)")

        payload = {
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "speedup": speedup,
            "warm_hits": warm_hits,
            "warm_lookups": warm_lookups,
            "warm_hit_rate": hit_rate,
            "entries": store.entry_count(),
            "totals": store.stats.as_dict(),
        }
        with open(stats_file, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"stats artifact     : {stats_file}")

        assert warm_reports == cold_reports, (
            "warm-store reports must be byte-identical to the cold run"
        )
        assert warm_lookups > 0 and hit_rate > 0.90, (
            f"warm store hit-rate {hit_rate:.1%} <= 90% "
            f"({warm_hits}/{warm_lookups})"
        )
        assert speedup >= minimum, (
            f"warm store run speedup {speedup:.2f}x below the {minimum:.1f}x floor"
        )


def test_store_survives_process_boundaries(tmp_path, engine):
    """A second *store object* over the same directory serves the results.

    This is the cross-run half of the claim: the warm run above shares a
    Python process with the cold one, here the store object (standing in
    for a fresh CI process) is rebuilt from the directory alone.
    """

    suite = benchmark_suite(max_size=10)
    machine = superscalar(int_registers=4, float_registers=4)
    with store_active(tmp_path):
        cold = run_pipeline_experiment(suite=suite, machine=machine,
                                       registers=4, engine=engine)
    with store_active(tmp_path) as second:
        warm = run_pipeline_experiment(suite=suite, machine=machine,
                                       registers=4, engine=engine)
        assert second.stats.hits == len(warm.outcomes)
        assert second.stats.misses == 0
    assert warm.to_table() == cold.to_table()
