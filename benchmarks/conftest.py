"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table/figure/claim of the paper (see
DESIGN.md's per-experiment index) and prints the reproduced numbers next to
the paper's where applicable.  The suites used here are intentionally small
so the whole harness runs in a few minutes on a laptop; pass larger suites
through the experiment API for a fuller run.
"""

from __future__ import annotations

import pytest

from repro.codes import benchmark_suite, kernel_suite
from repro.core import superscalar
from repro.experiments import BatchEngine


@pytest.fixture(scope="session")
def small_kernel_suite():
    """Kernels (plus a few random DDGs) small enough for the exact RS intLP."""

    return benchmark_suite(max_size=24)


@pytest.fixture(scope="session")
def tiny_kernel_suite():
    """DAGs small enough for the exact *reduction* intLP (the slow one)."""

    return benchmark_suite(max_size=12)


@pytest.fixture(scope="session")
def full_suite():
    return benchmark_suite(max_size=26)


@pytest.fixture(scope="session")
def machine():
    return superscalar()


@pytest.fixture(scope="session")
def engine():
    """Batch engine for the experiment drivers.

    Serial by default so the pytest-benchmark timings stay comparable;
    export ``REPRO_ENGINE=thread:8`` (or ``process:8``) to fan the suites
    out -- the reports are byte-identical either way.
    """

    return BatchEngine.from_environment()
