"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table/figure/claim of the paper (see
DESIGN.md's per-experiment index) and prints the reproduced numbers next to
the paper's where applicable.  The suites used here are intentionally small
so the whole harness runs in a few minutes on a laptop; pass larger suites
through the experiment API for a fuller run.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest

from repro.codes import benchmark_suite, kernel_suite
from repro.core import superscalar
from repro.experiments import BatchEngine


# --------------------------------------------------------------------------- #
# JSON artifacts (REPRO_BENCH_JSON / REPRO_PROFILE_JSON)
#
# Several pytest items merge their sections into one artifact file, and CI
# uploads whatever is on disk even when a later item fails or the runner is
# killed.  Writes therefore follow the result store's discipline: serialize
# to a temp file in the destination directory, fsync, then ``os.replace`` --
# a reader (or the uploader) only ever sees a complete JSON document.
# --------------------------------------------------------------------------- #


def load_json_artifact(path):
    """Best-effort read of an artifact written by :func:`write_json_artifact`."""

    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return {}


def write_json_artifact(path, data):
    """Atomically replace *path* with ``data`` serialized as JSON."""

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def merge_json_artifact(env_var, section_name, payload):
    """Read-merge-write one section into the artifact named by *env_var*.

    Inert when the environment variable is unset, so benchmark runs without
    artifact capture stay file-free.
    """

    path = os.environ.get(env_var, "")
    if not path:
        return
    data = load_json_artifact(path)
    data[section_name] = payload
    write_json_artifact(path, data)


@pytest.fixture(scope="session")
def small_kernel_suite():
    """Kernels (plus a few random DDGs) small enough for the exact RS intLP."""

    return benchmark_suite(max_size=24)


@pytest.fixture(scope="session")
def tiny_kernel_suite():
    """DAGs small enough for the exact *reduction* intLP (the slow one)."""

    return benchmark_suite(max_size=12)


@pytest.fixture(scope="session")
def full_suite():
    return benchmark_suite(max_size=26)


@pytest.fixture(scope="session")
def machine():
    return superscalar()


@pytest.fixture(scope="session")
def engine():
    """Batch engine for the experiment drivers.

    Serial by default so the pytest-benchmark timings stay comparable;
    export ``REPRO_ENGINE=thread:8`` (or ``process:8``) to fan the suites
    out -- the reports are byte-identical either way.
    """

    return BatchEngine.from_environment()
