"""Test-support utilities: deterministic fault injection for batch workers."""

from .faults import (
    CorruptPayload,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    active_plan,
    is_corrupt_payload,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedCrash",
    "CorruptPayload",
    "active_plan",
    "is_corrupt_payload",
]
