"""Deterministic fault injection for batch workers.

Fault tolerance that is only exercised by real outages is fault tolerance
that does not work; Boucheneb & Imine's model-checking of optimistic
replication (PAPERS.md) makes the case that fault scenarios must be
*enumerated* and tested.  This module plants worker failures on a plan that
is a pure function of ``(seed, item index, attempt)``, so a chaos run is as
reproducible as a clean one:

* ``crash`` -- the worker raises :class:`InjectedCrash`;
* ``hang``  -- the worker sleeps ``hang_seconds`` before answering (long
  enough to trip a supervisor timeout when one is configured);
* ``corrupt`` -- the worker returns a :class:`CorruptPayload` marker
  instead of its result (a stand-in for a truncated or garbled IPC
  payload, which the supervisor must detect and retry);
* ``kill`` -- the worker process exits hard (``os._exit``), breaking a
  :class:`~concurrent.futures.ProcessPoolExecutor`; under the thread and
  serial policies (where ``os._exit`` would take the test runner down with
  it) this degenerates to a ``crash``.

The distributed fleet (:mod:`repro.fleet`) adds a second fault domain:
**network faults**, applied by the broker to the messages a worker sends
rather than to the worker's computation:

* ``drop`` -- the worker's result message is discarded in flight; the
  lease expires and the item is reassigned (exercising at-least-once
  delivery);
* ``delay`` -- the result message is held ``delay_seconds`` before the
  broker processes it (late answers may race reassigned duplicates);
* ``dup`` -- the result message is delivered twice (the broker must
  verify-and-drop the duplicate);
* ``partition`` -- the broker severs the worker's connection right after
  granting the lease, so the worker computes into a void and its lease is
  reassigned on liveness timeout;
* ``leasekill`` -- the worker process hard-exits (``os._exit``) *while
  holding a lease*, the fleet equivalent of ``kill``.

The plan travels through the ``REPRO_FAULTS`` environment variable so that
process-pool workers -- which inherit the dispatcher's environment --
reconstruct the very same plan.  Syntax: comma-separated clauses,

.. code-block:: text

    REPRO_FAULTS="crash:0.1,hang:0.05,corrupt@7,kill@3,seed:42,hangdur:1.5"
    REPRO_FAULTS="drop:0.1,dup@2,partition@3,leasekill@1,delaydur:0.2,seed:7"

where ``kind:rate`` injects *kind* with the given probability per (item,
attempt) -- decided by a seeded hash, not a shared RNG, so decisions are
independent of execution order -- and ``kind@index`` plants *kind* at one
item index (first attempt only).  ``seed:N`` seeds the hash (default 0),
``hangdur:S`` sets the hang duration in seconds (default 30),
``delaydur:S`` the network delay (default 0.2), and ``maxattempts:K``
stops rate-based faults firing beyond attempt ``K`` (default 2), so a
supervisor (or fleet broker) with a larger retry budget always completes.
``partition`` and ``leasekill`` are planted-only (no rate form): each one
costs the fleet a worker connection or process, so an unbounded rate could
starve the run instead of perturbing it.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultInjector",
    "InjectedCrash",
    "CorruptPayload",
    "active_plan",
    "is_corrupt_payload",
]

#: Environment variable carrying the plan into (process) workers.
FAULTS_ENV = "REPRO_FAULTS"

#: Worker-side fault kinds, in the order rate thresholds are stacked.
_KINDS = ("crash", "hang", "corrupt", "kill")

#: Broker-side network fault kinds with a rate form, in stacking order.
_NET_RATE_KINDS = ("drop", "delay", "dup")

#: Network fault kinds that can only be planted at an item index.
_NET_PLANTED_ONLY = ("partition", "leasekill")

#: All network fault kinds (message- and topology-level).
_NET_KINDS = _NET_RATE_KINDS + _NET_PLANTED_ONLY


class InjectedCrash(RuntimeError):
    """A planned worker crash (not a :class:`~repro.errors.ReproError`:

    from the supervisor's point of view it is indistinguishable from a
    genuine worker blow-up, and therefore retryable)."""


@dataclass(frozen=True)
class CorruptPayload:
    """Marker the injector returns in place of a worker's real result."""

    index: int
    attempt: int
    note: str = "injected corrupt payload"


def is_corrupt_payload(value: object) -> bool:
    """Whether *value* is an injected stand-in for a garbled worker answer."""

    return isinstance(value, CorruptPayload)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of worker faults.

    Rates decide per ``(index, attempt)`` through a seeded hash; planted
    indices fire on the first attempt only.  ``max_faulty_attempts`` caps
    rate-based faults so retries beyond it always run clean -- that is what
    makes the chaos invariant ("every run completes with byte-identical
    reports") a guarantee instead of a likelihood.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    kill_rate: float = 0.0
    crash_at: FrozenSet[int] = frozenset()
    hang_at: FrozenSet[int] = frozenset()
    corrupt_at: FrozenSet[int] = frozenset()
    kill_at: FrozenSet[int] = frozenset()
    # Network domain (applied by the fleet broker, not inside workers).
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    dup_rate: float = 0.0
    drop_at: FrozenSet[int] = frozenset()
    delay_at: FrozenSet[int] = frozenset()
    dup_at: FrozenSet[int] = frozenset()
    partition_at: FrozenSet[int] = frozenset()
    leasekill_at: FrozenSet[int] = frozenset()
    seed: int = 0
    hang_seconds: float = 30.0
    delay_seconds: float = 0.2
    max_faulty_attempts: int = 2

    # ------------------------------------------------------------------ #
    # Parsing / serialization (the REPRO_FAULTS syntax)
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` specification string."""

        rates = {kind: 0.0 for kind in _KINDS + _NET_RATE_KINDS}
        at = {kind: set() for kind in _KINDS + _NET_KINDS}
        seed, hang_seconds, delay_seconds, max_faulty = 0, 30.0, 0.2, 2
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if "@" in clause:
                kind, _, index = clause.partition("@")
                kind = kind.strip()
                if kind not in at:
                    raise ValueError(f"unknown fault kind {kind!r} in {clause!r}")
                at[kind].add(int(index))
                continue
            key, _, value = clause.partition(":")
            key = key.strip()
            if not value:
                raise ValueError(f"malformed fault clause {clause!r}")
            if key in rates:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"fault rate out of [0,1] in {clause!r}")
                rates[key] = rate
            elif key in _NET_PLANTED_ONLY:
                raise ValueError(
                    f"{key!r} faults are planted-only (use {key}@index) in {clause!r}"
                )
            elif key == "seed":
                seed = int(value)
            elif key == "hangdur":
                hang_seconds = float(value)
            elif key == "delaydur":
                delay_seconds = float(value)
            elif key == "maxattempts":
                max_faulty = int(value)
            else:
                raise ValueError(f"unknown fault clause {clause!r}")
        if sum(rates[kind] for kind in _KINDS) > 1.0:
            raise ValueError("worker fault rates must sum to at most 1.0")
        if sum(rates[kind] for kind in _NET_RATE_KINDS) > 1.0:
            raise ValueError("network fault rates must sum to at most 1.0")
        return cls(
            crash_rate=rates["crash"],
            hang_rate=rates["hang"],
            corrupt_rate=rates["corrupt"],
            kill_rate=rates["kill"],
            crash_at=frozenset(at["crash"]),
            hang_at=frozenset(at["hang"]),
            corrupt_at=frozenset(at["corrupt"]),
            kill_at=frozenset(at["kill"]),
            drop_rate=rates["drop"],
            delay_rate=rates["delay"],
            dup_rate=rates["dup"],
            drop_at=frozenset(at["drop"]),
            delay_at=frozenset(at["delay"]),
            dup_at=frozenset(at["dup"]),
            partition_at=frozenset(at["partition"]),
            leasekill_at=frozenset(at["leasekill"]),
            seed=seed,
            hang_seconds=hang_seconds,
            delay_seconds=delay_seconds,
            max_faulty_attempts=max_faulty,
        )

    def to_spec(self) -> str:
        """The inverse of :meth:`parse` (round-trips through the env var)."""

        clauses = []
        for kind in _KINDS + _NET_RATE_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if rate:
                clauses.append(f"{kind}:{rate!r}")
        for kind in _KINDS + _NET_KINDS:
            for index in sorted(getattr(self, f"{kind}_at")):
                clauses.append(f"{kind}@{index}")
        clauses.append(f"seed:{self.seed}")
        clauses.append(f"hangdur:{self.hang_seconds!r}")
        clauses.append(f"delaydur:{self.delay_seconds!r}")
        clauses.append(f"maxattempts:{self.max_faulty_attempts}")
        return ",".join(clauses)

    @property
    def active(self) -> bool:
        return bool(
            any(getattr(self, f"{kind}_rate") for kind in _KINDS + _NET_RATE_KINDS)
            or any(getattr(self, f"{kind}_at") for kind in _KINDS + _NET_KINDS)
        )


def _unit_interval(seed: int, index: int, attempt: int, domain: str = "") -> float:
    """A uniform draw in [0, 1) that is a pure function of its arguments.

    *domain* separates independent fault domains (worker vs. network) so a
    network draw never correlates with the worker draw of the same
    attempt; the empty default preserves the historical draw sequence.
    """

    token = f"faults|{seed}|{index}|{attempt}"
    if domain:
        token = f"{token}|{domain}"
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """Applies a :class:`FaultPlan` inside a worker.

    Stateless apart from the plan, so every worker process building its own
    injector from the inherited environment reaches identical decisions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def decide(self, index: int, attempt: int) -> Optional[str]:
        """The fault kind planned for this (item, attempt), or ``None``."""

        plan = self.plan
        if attempt == 1:
            for kind in _KINDS:
                if index in getattr(plan, f"{kind}_at"):
                    return kind
        if attempt > plan.max_faulty_attempts:
            return None
        draw = _unit_interval(plan.seed, index, attempt)
        threshold = 0.0
        for kind in _KINDS:
            threshold += getattr(plan, f"{kind}_rate")
            if draw < threshold:
                return kind
        return None

    def decide_network(self, index: int, attempt: int) -> Optional[str]:
        """The message fault planned for this delivery, or ``None``.

        Evaluated by the broker when a worker's *result* message for
        ``(index, attempt)`` arrives: ``drop``/``delay``/``dup``.  Planted
        indices fire on the first attempt only; rate-based decisions stop
        after ``max_faulty_attempts`` so reassigned work eventually lands.
        """

        plan = self.plan
        if attempt == 1:
            for kind in _NET_RATE_KINDS:
                if index in getattr(plan, f"{kind}_at"):
                    return kind
        if attempt > plan.max_faulty_attempts:
            return None
        draw = _unit_interval(plan.seed, index, attempt, domain="net")
        threshold = 0.0
        for kind in _NET_RATE_KINDS:
            threshold += getattr(plan, f"{kind}_rate")
            if draw < threshold:
                return kind
        return None

    def partition_planned(self, index: int, attempt: int) -> bool:
        """Whether the broker severs the leaseholder's connection (attempt 1)."""

        return attempt == 1 and index in self.plan.partition_at

    def leasekill_planned(self, index: int, attempt: int) -> bool:
        """Whether the worker hard-exits while holding this lease (attempt 1)."""

        return attempt == 1 and index in self.plan.leasekill_at

    # ------------------------------------------------------------------ #
    # Worker-side application
    # ------------------------------------------------------------------ #
    def perturb(self, index: int, attempt: int, *, in_worker_process: bool = False):
        """Apply the planned fault; returns a :class:`CorruptPayload` marker
        when the plan says "corrupt", ``None`` when the worker should run
        normally (possibly after a planned hang)."""

        kind = self.decide(index, attempt)
        if kind is None:
            return None
        if kind == "kill":
            if in_worker_process:
                os._exit(13)  # hard exit: breaks the process pool, as planned
            kind = "crash"  # thread/serial: a hard exit would kill the runner
        if kind == "crash":
            raise InjectedCrash(f"planned crash (item {index}, attempt {attempt})")
        if kind == "hang":
            time.sleep(self.plan.hang_seconds)
            return None
        return CorruptPayload(index=index, attempt=attempt)


def active_plan(environ=None) -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset/empty.

    Looked up on every call (no caching): tests toggle the variable around
    individual runs, and workers call this once per attempt at most.  A
    malformed specification raises one
    :class:`~repro.errors.ConfigurationError` naming the variable, not a
    bare ``ValueError`` from deep inside the clause parser.
    """

    spec = (environ or os.environ).get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    try:
        plan = FaultPlan.parse(spec)
    except ValueError as exc:
        raise ConfigurationError(f"{FAULTS_ENV}={spec!r} is invalid: {exc}") from exc
    return plan if plan.active else None
