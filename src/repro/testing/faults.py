"""Deterministic fault injection for batch workers.

Fault tolerance that is only exercised by real outages is fault tolerance
that does not work; Boucheneb & Imine's model-checking of optimistic
replication (PAPERS.md) makes the case that fault scenarios must be
*enumerated* and tested.  This module plants worker failures on a plan that
is a pure function of ``(seed, item index, attempt)``, so a chaos run is as
reproducible as a clean one:

* ``crash`` -- the worker raises :class:`InjectedCrash`;
* ``hang``  -- the worker sleeps ``hang_seconds`` before answering (long
  enough to trip a supervisor timeout when one is configured);
* ``corrupt`` -- the worker returns a :class:`CorruptPayload` marker
  instead of its result (a stand-in for a truncated or garbled IPC
  payload, which the supervisor must detect and retry);
* ``kill`` -- the worker process exits hard (``os._exit``), breaking a
  :class:`~concurrent.futures.ProcessPoolExecutor`; under the thread and
  serial policies (where ``os._exit`` would take the test runner down with
  it) this degenerates to a ``crash``.

The plan travels through the ``REPRO_FAULTS`` environment variable so that
process-pool workers -- which inherit the dispatcher's environment --
reconstruct the very same plan.  Syntax: comma-separated clauses,

.. code-block:: text

    REPRO_FAULTS="crash:0.1,hang:0.05,corrupt@7,kill@3,seed:42,hangdur:1.5"

where ``kind:rate`` injects *kind* with the given probability per (item,
attempt) -- decided by a seeded hash, not a shared RNG, so decisions are
independent of execution order -- and ``kind@index`` plants *kind* at one
item index (first attempt only).  ``seed:N`` seeds the hash (default 0),
``hangdur:S`` sets the hang duration in seconds (default 30), and
``maxattempts:K`` stops rate-based faults firing beyond attempt ``K``
(default 2), so a supervisor with a larger retry budget always completes.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultInjector",
    "InjectedCrash",
    "CorruptPayload",
    "active_plan",
    "is_corrupt_payload",
]

#: Environment variable carrying the plan into (process) workers.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds, in the order rate thresholds are stacked.
_KINDS = ("crash", "hang", "corrupt", "kill")


class InjectedCrash(RuntimeError):
    """A planned worker crash (not a :class:`~repro.errors.ReproError`:

    from the supervisor's point of view it is indistinguishable from a
    genuine worker blow-up, and therefore retryable)."""


@dataclass(frozen=True)
class CorruptPayload:
    """Marker the injector returns in place of a worker's real result."""

    index: int
    attempt: int
    note: str = "injected corrupt payload"


def is_corrupt_payload(value: object) -> bool:
    """Whether *value* is an injected stand-in for a garbled worker answer."""

    return isinstance(value, CorruptPayload)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of worker faults.

    Rates decide per ``(index, attempt)`` through a seeded hash; planted
    indices fire on the first attempt only.  ``max_faulty_attempts`` caps
    rate-based faults so retries beyond it always run clean -- that is what
    makes the chaos invariant ("every run completes with byte-identical
    reports") a guarantee instead of a likelihood.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    kill_rate: float = 0.0
    crash_at: FrozenSet[int] = frozenset()
    hang_at: FrozenSet[int] = frozenset()
    corrupt_at: FrozenSet[int] = frozenset()
    kill_at: FrozenSet[int] = frozenset()
    seed: int = 0
    hang_seconds: float = 30.0
    max_faulty_attempts: int = 2

    # ------------------------------------------------------------------ #
    # Parsing / serialization (the REPRO_FAULTS syntax)
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` specification string."""

        rates = {kind: 0.0 for kind in _KINDS}
        at = {kind: set() for kind in _KINDS}
        seed, hang_seconds, max_faulty = 0, 30.0, 2
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if "@" in clause:
                kind, _, index = clause.partition("@")
                kind = kind.strip()
                if kind not in _KINDS:
                    raise ValueError(f"unknown fault kind {kind!r} in {clause!r}")
                at[kind].add(int(index))
                continue
            key, _, value = clause.partition(":")
            key = key.strip()
            if not value:
                raise ValueError(f"malformed fault clause {clause!r}")
            if key in _KINDS:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"fault rate out of [0,1] in {clause!r}")
                rates[key] = rate
            elif key == "seed":
                seed = int(value)
            elif key == "hangdur":
                hang_seconds = float(value)
            elif key == "maxattempts":
                max_faulty = int(value)
            else:
                raise ValueError(f"unknown fault clause {clause!r}")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1.0")
        return cls(
            crash_rate=rates["crash"],
            hang_rate=rates["hang"],
            corrupt_rate=rates["corrupt"],
            kill_rate=rates["kill"],
            crash_at=frozenset(at["crash"]),
            hang_at=frozenset(at["hang"]),
            corrupt_at=frozenset(at["corrupt"]),
            kill_at=frozenset(at["kill"]),
            seed=seed,
            hang_seconds=hang_seconds,
            max_faulty_attempts=max_faulty,
        )

    def to_spec(self) -> str:
        """The inverse of :meth:`parse` (round-trips through the env var)."""

        clauses = []
        for kind in _KINDS:
            rate = getattr(self, f"{kind}_rate")
            if rate:
                clauses.append(f"{kind}:{rate!r}")
            for index in sorted(getattr(self, f"{kind}_at")):
                clauses.append(f"{kind}@{index}")
        clauses.append(f"seed:{self.seed}")
        clauses.append(f"hangdur:{self.hang_seconds!r}")
        clauses.append(f"maxattempts:{self.max_faulty_attempts}")
        return ",".join(clauses)

    @property
    def active(self) -> bool:
        return bool(
            self.crash_rate or self.hang_rate or self.corrupt_rate or self.kill_rate
            or self.crash_at or self.hang_at or self.corrupt_at or self.kill_at
        )


def _unit_interval(seed: int, index: int, attempt: int) -> float:
    """A uniform draw in [0, 1) that is a pure function of its arguments."""

    digest = hashlib.sha256(f"faults|{seed}|{index}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """Applies a :class:`FaultPlan` inside a worker.

    Stateless apart from the plan, so every worker process building its own
    injector from the inherited environment reaches identical decisions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def decide(self, index: int, attempt: int) -> Optional[str]:
        """The fault kind planned for this (item, attempt), or ``None``."""

        plan = self.plan
        if attempt == 1:
            for kind in _KINDS:
                if index in getattr(plan, f"{kind}_at"):
                    return kind
        if attempt > plan.max_faulty_attempts:
            return None
        draw = _unit_interval(plan.seed, index, attempt)
        threshold = 0.0
        for kind in _KINDS:
            threshold += getattr(plan, f"{kind}_rate")
            if draw < threshold:
                return kind
        return None

    # ------------------------------------------------------------------ #
    # Worker-side application
    # ------------------------------------------------------------------ #
    def perturb(self, index: int, attempt: int, *, in_worker_process: bool = False):
        """Apply the planned fault; returns a :class:`CorruptPayload` marker
        when the plan says "corrupt", ``None`` when the worker should run
        normally (possibly after a planned hang)."""

        kind = self.decide(index, attempt)
        if kind is None:
            return None
        if kind == "kill":
            if in_worker_process:
                os._exit(13)  # hard exit: breaks the process pool, as planned
            kind = "crash"  # thread/serial: a hard exit would kill the runner
        if kind == "crash":
            raise InjectedCrash(f"planned crash (item {index}, attempt {attempt})")
        if kind == "hang":
            time.sleep(self.plan.hang_seconds)
            return None
        return CorruptPayload(index=index, attempt=attempt)


def active_plan(environ=None) -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset/empty.

    Looked up on every call (no caching): tests toggle the variable around
    individual runs, and workers call this once per attempt at most.
    """

    spec = (environ or os.environ).get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    plan = FaultPlan.parse(spec)
    return plan if plan.active else None
