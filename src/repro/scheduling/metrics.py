"""Schedule-quality metrics used by the experiments.

The paper's Section 5 compares methods by two quantities: how far the
register saturation was reduced, and how much instruction-level parallelism
was lost in the process (the critical-path / makespan increase).  This
module centralises those measurements so every experiment and benchmark
reports them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.context import context_for
from ..core.graph import DDG
from ..core.lifetime import register_need_all_types
from ..core.machine import ProcessorModel
from ..core.schedule import Schedule
from ..core.types import RegisterType, canonical_type

__all__ = ["ScheduleMetrics", "evaluate_schedule", "ilp_loss"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Makespan, register needs and speedup-related figures of one schedule."""

    makespan: int
    total_time: int
    register_needs: Dict[str, int]
    critical_path: int

    @property
    def slack(self) -> int:
        """Idle cycles beyond the critical path (0 for a critical-path schedule)."""

        return max(0, self.total_time - self.critical_path)

    def register_need(self, rtype: RegisterType | str) -> int:
        return self.register_needs.get(canonical_type(rtype).name, 0)


def evaluate_schedule(ddg: DDG, schedule: Schedule) -> ScheduleMetrics:
    """Compute the metrics of *schedule* on *ddg* (bottom-normalised internally)."""

    bottom_ctx = context_for(ddg).bottom()
    g = bottom_ctx.ddg
    needs = {
        rtype.name: need for rtype, need in register_need_all_types(g, schedule).items()
    }
    return ScheduleMetrics(
        makespan=schedule.makespan,
        total_time=schedule.total_time(g),
        register_needs=needs,
        critical_path=bottom_ctx.critical_path_length(),
    )


def ilp_loss(original: DDG, extended: DDG) -> int:
    """Critical-path increase caused by extending *original* into *extended*.

    Both graphs are bottom-normalised before measuring so the figure matches
    the convention of :class:`repro.reduction.result.ReductionResult`.
    """

    return (
        context_for(extended).bottom().critical_path_length()
        - context_for(original).bottom().critical_path_length()
    )
