"""Functional-unit resource tracking for the list scheduler.

Register saturation itself is computed *independently of the functional
unit constraints* -- that is the whole point of the paper's decoupling.  The
resource model here exists for the *downstream* scheduler of Figure 1: once
the DDG has been (possibly) extended by the reduction pass, a classic
resource-constrained list scheduler produces the final schedule, and the
register allocator runs on it.

The model is intentionally simple and classic: the machine has an issue
width and a set of functional-unit classes, each with a multiplicity and a
(fully pipelined) occupancy.  A reservation table records, per cycle, how
many units of each class and how many issue slots are used.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import DefaultDict, Dict, Iterable, Mapping

from ..core.machine import ProcessorModel
from ..core.operation import Operation

__all__ = ["ReservationTable"]


@dataclass
class ReservationTable:
    """Tracks per-cycle functional-unit and issue-slot usage."""

    machine: ProcessorModel
    _issue: DefaultDict[int, int] = field(default_factory=lambda: defaultdict(int))
    _units: DefaultDict[str, DefaultDict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def can_issue(self, op: Operation, cycle: int) -> bool:
        """True when *op* can be issued at *cycle* without oversubscription."""

        if op.fu_class == "none":
            return True
        if self._issue[cycle] >= self.machine.issue_width:
            return False
        spec = self.machine.fu_spec(op.fu_class)
        for c in range(cycle, cycle + spec.occupancy):
            if self._units[op.fu_class][c] >= spec.count:
                return False
        return True

    def issue(self, op: Operation, cycle: int) -> None:
        """Record the issue of *op* at *cycle* (caller checked :meth:`can_issue`)."""

        if op.fu_class == "none":
            return
        self._issue[cycle] += 1
        spec = self.machine.fu_spec(op.fu_class)
        for c in range(cycle, cycle + spec.occupancy):
            self._units[op.fu_class][c] += 1

    def earliest_slot(self, op: Operation, not_before: int, horizon: int = 1 << 20) -> int:
        """The first cycle ``>= not_before`` at which *op* can be issued."""

        cycle = not_before
        while cycle < horizon:
            if self.can_issue(op, cycle):
                return cycle
            cycle += 1
        raise RuntimeError("no issue slot found within the horizon")

    def usage(self, cycle: int) -> Dict[str, int]:
        """Functional-unit usage at *cycle* (used by the tests)."""

        return {cls: counts[cycle] for cls, counts in self._units.items() if counts[cycle]}

    def issue_count(self, cycle: int) -> int:
        return self._issue[cycle]
