"""Instruction-scheduling substrate: the downstream scheduler of Figure 1."""

from .list_scheduler import (
    IncrementalListSchedule,
    list_schedule,
    register_pressure_aware_schedule,
)
from .metrics import ScheduleMetrics, evaluate_schedule, ilp_loss
from .resources import ReservationTable

__all__ = [
    "IncrementalListSchedule",
    "list_schedule",
    "register_pressure_aware_schedule",
    "ReservationTable",
    "ScheduleMetrics",
    "evaluate_schedule",
    "ilp_loss",
]
