"""Resource-constrained list scheduling (the scheduler of Figure 1).

After the register-saturation pass has (possibly) extended the DDG, the
paper's flow hands the graph to an instruction scheduler that no longer has
to worry about registers.  This module provides that scheduler:

* :func:`list_schedule` -- classic critical-path list scheduling under
  functional-unit and issue-width constraints;
* :func:`register_pressure_aware_schedule` -- the *combined* scheduler used
  as a baseline in the examples: it refuses to start new lifetimes when the
  number of live values has reached the register budget, and therefore
  serialises code by itself (the behaviour the RS approach renders
  unnecessary).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional

from ..analysis.context import AnalysisContext, context_for
from ..core.graph import DDG
from ..core.lifetime import register_need
from ..core.machine import ProcessorModel, superscalar
from ..core.schedule import Schedule
from ..core.types import RegisterType, canonical_type
from ..errors import ScheduleError
from .resources import ReservationTable

__all__ = [
    "list_schedule",
    "register_pressure_aware_schedule",
    "IncrementalListSchedule",
]


def list_schedule(
    ddg: DDG,
    machine: Optional[ProcessorModel] = None,
    priority: Optional[Dict[str, float]] = None,
    ctx: Optional[AnalysisContext] = None,
) -> Schedule:
    """Critical-path list scheduling under resource constraints.

    Ready operations (all predecessors issued and their latencies elapsed)
    are issued greedily, highest priority first; the default priority is the
    longest latency path to the sinks (critical-path scheduling).  Negative
    latency serial arcs (possible on reduced VLIW graphs) are honoured as
    ordinary precedence constraints.  An :class:`AnalysisContext` may be
    passed to reuse the priorities/topological order the earlier pipeline
    stages already computed.
    """

    machine = machine or superscalar()
    ctx = ctx if ctx is not None else context_for(ddg)
    if priority is None:
        priority = ctx.longest_path_to_sinks()

    order = ctx.topological_order()
    table = ReservationTable(machine)
    times: Dict[str, int] = {}
    pending = set(order)

    # Repeatedly pick the ready operation with the highest priority and give
    # it the earliest cycle compatible with both dependences and resources.
    while pending:
        ready = [
            v
            for v in pending
            if all(e.src in times for e in ddg.in_edges(v))
        ]
        if not ready:
            raise ScheduleError(
                f"list scheduler deadlocked on {ddg.name!r} (cyclic graph?)"
            )
        ready.sort(key=lambda v: (-priority.get(v, 0.0), v))
        node = ready[0]
        op = ddg.operation(node)
        earliest = 0
        for e in ddg.in_edges(node):
            earliest = max(earliest, times[e.src] + e.latency)
        earliest = max(earliest, 0)
        cycle = table.earliest_slot(op, earliest)
        table.issue(op, cycle)
        times[node] = cycle
        pending.discard(node)
    return Schedule(times, ddg.name).check(ddg)


class IncrementalListSchedule:
    """An unlimited-resource list schedule kept warm across serial-arc pushes.

    :func:`repro.core.schedule.list_schedule_priority` issues every ready
    operation at its earliest feasible cycle under *no* resource
    constraints.  In that regime the issue times are **priority
    independent**: each operation's cycle is exactly
    ``max(0, max over incoming arcs of (time(src) + latency))`` (all
    predecessors are final when the operation is popped, whatever the pop
    order), so any priority function produces the same unique earliest
    fixpoint and only permutes the issue *order*.  That makes the schedule
    repairable: pushing serial arcs into a target can only raise times at
    the target and downstream of it, so :meth:`reschedule` recomputes
    exactly that region (priorities of those operations are the only ones
    that could move, and they are inert) instead of replaying the full
    O(V^2 log V) sort-per-step loop the from-scratch scheduler pays.

    The Greedy-k keep-alive candidate is the consumer: its biased schedule
    is rebuilt from scratch every reduction iteration otherwise, and the
    produced :class:`~repro.core.schedule.Schedule` here is equal (same
    ``times`` mapping, same graph name) to the from-scratch one --
    ``tests/test_incremental_candidates.py`` pins that across push/pop.

    :meth:`push`/:meth:`pop` bracket a group of insertions with an undo log
    of pre-repair issue times, mirroring the owning saturation state's
    undo protocol; :meth:`pop` returns False when no frame remains (the
    state was built mid-stack and the caller must discard it).
    """

    __slots__ = ("_g", "_times", "_frames", "_schedule", "repairs", "repaired_ops")

    def __init__(self, ddg: DDG, ctx: Optional[AnalysisContext] = None) -> None:
        self._g = ddg
        ctx = ctx if ctx is not None else context_for(ddg)
        times: Dict[str, int] = {}
        for node in ctx.topological_order():
            t = 0
            for e in ddg.in_edges(node):
                c = times[e.src] + e.latency
                if c > t:
                    t = c
            times[node] = t
        self._times = times
        self._frames: List[Dict[str, int]] = []
        self._schedule: Optional[Schedule] = None
        self.repairs = 0
        self.repaired_ops = 0

    @property
    def depth(self) -> int:
        return len(self._frames)

    def schedule(self) -> Schedule:
        """The current warm schedule (cached until the next repair or pop)."""

        if self._schedule is None:
            self._schedule = Schedule(dict(self._times), self._g.name)
        return self._schedule

    def push(self) -> None:
        """Open an undo frame covering the subsequent :meth:`reschedule`."""

        self._frames.append({})

    def pop(self) -> bool:
        """Undo the most recent :meth:`push`; False when none remain."""

        if not self._frames:
            return False
        log = self._frames.pop()
        if log:
            self._times.update(log)
            self._schedule = None
        return True

    def reschedule(
        self, dirty_ops: Iterable[str], ctx: Optional[AnalysisContext] = None
    ) -> int:
        """Repair issue slots downstream of *dirty_ops*; returns ops moved.

        *dirty_ops* are the operations whose incoming arcs changed (the
        targets of freshly pushed serial arcs).  Operations are revisited in
        topological order, so each affected slot is recomputed exactly once;
        anything not reachable from a dirty operation provably keeps its
        slot and is never touched.
        """

        g = self._g
        ctx = ctx if ctx is not None else context_for(g)
        pos = {v: i for i, v in enumerate(ctx.topological_order())}
        heap = [(pos[v], v) for v in dirty_ops]
        heapq.heapify(heap)
        queued = {v for _, v in heap}
        log = self._frames[-1] if self._frames else None
        times = self._times
        moved = 0
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            t = 0
            for e in g.in_edges(node):
                c = times[e.src] + e.latency
                if c > t:
                    t = c
            if t != times[node]:
                if log is not None and node not in log:
                    log[node] = times[node]
                times[node] = t
                moved += 1
                for succ in g.successors(node):
                    if succ not in queued:
                        queued.add(succ)
                        heapq.heappush(heap, (pos[succ], succ))
        if moved:
            self._schedule = None
        self.repairs += 1
        self.repaired_ops += moved
        return moved


def register_pressure_aware_schedule(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    machine: Optional[ProcessorModel] = None,
) -> Schedule:
    """A combined scheduler that throttles new lifetimes above the register budget.

    This is the kind of "selfish" register-sensitive scheduler the paper's
    introduction discusses: whenever issuing an operation that defines a new
    value of *rtype* would exceed *registers* simultaneously-alive values,
    the operation is delayed in favour of operations that free registers
    (value killers).  The resulting schedule is correct but typically longer
    -- the examples use it to illustrate why decoupling with RS is
    preferable.  Note that the throttle is a heuristic: when only producers
    are ready it must issue one anyway, so the bound can still be exceeded
    on graphs whose saturation cannot be reduced.
    """

    rtype = canonical_type(rtype)
    machine = machine or superscalar()
    ctx = context_for(ddg)
    priority = ctx.longest_path_to_sinks()
    order = ctx.topological_order()
    table = ReservationTable(machine)
    times: Dict[str, int] = {}
    pending = set(order)

    def live_values_at(candidate_times: Dict[str, int]) -> int:
        if not candidate_times:
            return 0
        partial = Schedule(candidate_times, ddg.name)
        # Count only values whose producer is scheduled; consumers not yet
        # scheduled keep the value conservatively alive until the horizon.
        live = 0
        horizon = max(candidate_times.values()) + 1
        for value in ddg.values(rtype):
            if value.node not in candidate_times:
                continue
            birth = candidate_times[value.node]
            consumers = ddg.consumers(value.node, rtype)
            if consumers and all(c in candidate_times for c in consumers):
                death = max(candidate_times[c] for c in consumers)
            else:
                death = horizon
            if birth <= horizon <= death or birth < horizon:
                live += 1 if death >= horizon else 0
        return live

    while pending:
        ready = [
            v for v in pending if all(e.src in times for e in ddg.in_edges(v))
        ]
        if not ready:
            raise ScheduleError(f"scheduler deadlocked on {ddg.name!r}")
        producers = [v for v in ready if ddg.operation(v).defines(rtype)]
        killers = [v for v in ready if v not in producers]
        live_now = live_values_at(times)
        pool = ready
        if producers and live_now >= registers and killers:
            pool = killers
        pool.sort(key=lambda v: (-priority.get(v, 0.0), v))
        node = pool[0]
        op = ddg.operation(node)
        earliest = 0
        for e in ddg.in_edges(node):
            earliest = max(earliest, times[e.src] + e.latency)
        cycle = table.earliest_slot(op, max(earliest, 0))
        table.issue(op, cycle)
        times[node] = cycle
        pending.discard(node)
    return Schedule(times, ddg.name).check(ddg)
