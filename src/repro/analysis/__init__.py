"""Structural graph analyses shared by the saturation and reduction passes."""

from .antichain import (
    brute_force_maximum_antichain,
    is_antichain,
    maximum_antichain,
    maximum_antichain_size,
    minimum_chain_cover_size,
)
from .context import AnalysisContext, caching_disabled, caching_enabled, context_for
from .graphalgo import (
    NEG_INF,
    alap_times,
    ancestors,
    asap_times,
    critical_path_length,
    descendants,
    descendants_map,
    longest_path_matrix,
    longest_path_to_sinks,
    longest_paths_from,
    redundant_edges,
    transitive_closure_of_relation,
    transitive_closure_pairs,
    worst_case_total_time,
)
from .stats import Summary, fit_power_law, geometric_mean, percentage_breakdown, summarize

__all__ = [
    "AnalysisContext",
    "context_for",
    "caching_disabled",
    "caching_enabled",
    "NEG_INF",
    "alap_times",
    "ancestors",
    "asap_times",
    "critical_path_length",
    "descendants",
    "descendants_map",
    "longest_path_matrix",
    "longest_path_to_sinks",
    "longest_paths_from",
    "redundant_edges",
    "transitive_closure_of_relation",
    "transitive_closure_pairs",
    "worst_case_total_time",
    "maximum_antichain",
    "maximum_antichain_size",
    "minimum_chain_cover_size",
    "is_antichain",
    "brute_force_maximum_antichain",
    "Summary",
    "summarize",
    "percentage_breakdown",
    "fit_power_law",
    "geometric_mean",
]
