"""Vectorized buffer kernels for the flat hot core (``REPRO_VECTOR``).

PR 6 moved the reduction engine's hot state onto flat integer-indexed
structures: longest-path rows indexed by op id, killer/DV state as int
bitsets, verdicts keyed by flat pair ints.  The rows were plain
``List[float]`` -- one step from contiguous buffers.  This module takes that
step: every remaining inner loop of the profiled hot stages (whole-row lp
max-merge, DV threshold scan, bitset-closure accumulation, the quadratic
candidate-pair scan) lives here as a *kernel* with two interchangeable
implementations behind one interface:

* ``numpy`` -- rows are ``float64`` ndarrays, kernels are whole-array ops
  (fancy gather + compare + ``packbits``); used when numpy is importable.
* ``stdlib`` -- scan tables are ``array('d')``/``array('q')`` buffers where
  that measurably wins (:func:`pair_tables`); rows are plain lists run by
  the scalar loops (``array('d')`` element reads box a fresh float per
  access, which made the "vectorized" stdlib row kernels *lose* to the
  plain loop -- see :data:`_ROW_NUMPY_MIN` for the measurements).
* ``off`` -- rows stay plain ``List[float]`` and every kernel runs the
  exact PR-6 scalar code; this is the reference the other two are
  property-tested against (``tests/test_flatbuf.py``) and the
  pre-vectorization baseline of the benchmark's stage-delta table.

The backend is chosen by the ``REPRO_VECTOR`` environment variable
(``auto``/``numpy``/``stdlib``/``off``, default ``auto`` = numpy when
importable else stdlib); malformed values raise
:class:`~repro.errors.ConfigurationError` naming the variable, consistent
with every other ``REPRO_*`` knob.  All three implementations are exact:
the kernels perform the same IEEE-754 double operations in the same order
wherever ordering can matter, so reports, store keys and
``ReductionResult`` details are byte-identical across backends (asserted by
``benchmarks/bench_vector.py``).

Kernels dispatch on the *runtime type* of the buffer they receive, not just
the configured backend, so state built under one backend stays correct if
the backend is switched mid-session (the tests do exactly that through
:func:`use`).  ``counters["vector_kernel_calls"]`` counts vectorized kernel
invocations (numpy or stdlib buffers; the ``off`` scalar reference does not
count) and is surfaced in ``ReductionResult.details["engine_stats"]``.

PR 10 adds the *batched push path*: :func:`max_merge_rows` patches every
dirty lp row under one pushed arc as a single (rows x n) block operation
(its pre-image snapshots are the block undo frames of
``IncrementalAnalysis``), and :func:`relax_sources` seeds several
longest-path rows in one multi-source relaxation pass over the shared flat
adjacency.  Both are counted by backend-independent *path* counters
(``counters["row_block_patches"]`` / ``counters["mirror_bulk_seeds"]``) so
CI can assert the batched path is actually taken even on the no-numpy leg,
where the kernels run their scalar forms.
"""

from __future__ import annotations

import os
import sys
from array import array
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

try:  # The numpy backend is optional; the stdlib backend always works.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "BACKENDS",
    "NEG_INF",
    "backend",
    "closure_from_rows",
    "counters",
    "finite_entries",
    "max_merge",
    "max_merge_rows",
    "numpy_available",
    "pair_tables",
    "prepare_values",
    "relax_sources",
    "row_buffer",
    "row_from_list",
    "row_to_list",
    "scan_pairs",
    "set_backend",
    "threshold_mask",
    "use",
]

NEG_INF = float("-inf")

#: Accepted ``REPRO_VECTOR`` values.
BACKENDS = ("auto", "numpy", "stdlib", "off")

#: Vectorized-kernel invocation counters (module-wide; sessions snapshot
#: and diff them for their ``engine_stats``).  ``vector_kernel_calls``
#: counts *vectorized* invocations only (numpy buffers; the scalar forms do
#: not count), while ``row_block_patches`` / ``mirror_bulk_seeds`` are
#: *path* counters: they increment on every :func:`max_merge_rows` /
#: :func:`relax_sources` call regardless of backend, so the CI smoke job
#: can assert the batched push path is taken even where the kernels run
#: their scalar forms (``REPRO_VECTOR=off`` and the no-numpy leg).
counters: Dict[str, int] = {
    "vector_kernel_calls": 0,
    "row_block_patches": 0,
    "mirror_bulk_seeds": 0,
}

_active: Optional[str] = None


def numpy_available() -> bool:
    """Whether the numpy backend can be activated in this process."""

    return _np is not None


def _resolve(spec: str, source: str = "REPRO_VECTOR") -> str:
    if spec not in BACKENDS:
        raise ConfigurationError(
            f"{source}={spec!r} must be one of {', '.join(BACKENDS)}"
        )
    if spec == "numpy" and _np is None:
        raise ConfigurationError(
            f"{source}={spec!r} requests the numpy backend, but numpy is not"
            " importable; use 'stdlib', 'off', or 'auto'"
        )
    if spec == "auto":
        return "numpy" if _np is not None else "stdlib"
    return spec


def backend() -> str:
    """The active kernel backend, resolving ``REPRO_VECTOR`` on first use."""

    global _active
    if _active is None:
        _active = _resolve(os.environ.get("REPRO_VECTOR", "auto"))
    return _active


def set_backend(spec: Optional[str]) -> str:
    """Activate a backend; ``None`` re-reads ``REPRO_VECTOR`` lazily."""

    global _active
    if spec is None:
        _active = None
        return backend()
    _active = _resolve(spec)
    return _active


@contextmanager
def use(spec: str) -> Iterator[str]:
    """Temporarily activate a backend (tests and the benchmark delta table)."""

    global _active
    previous = _active
    _active = _resolve(spec)
    try:
        yield _active
    finally:
        _active = previous


# --------------------------------------------------------------------- #
# Row buffers
# --------------------------------------------------------------------- #
#: Row width below which even the numpy backend keeps rows as plain lists.
#: Measured on this container (benchmarks/bench_batchpush.py,
#: ``BENCH_batchpush.json`` section ``row_gate``): per-call numpy overhead
#: loses to the plain-list scalar loops on narrow rows (per-row max_merge
#: crosses over around n~200, the block kernel around n~180 with realistic
#: row counts, threshold_mask around n~96; at n=240 the ndarray forms win
#: 1.3x / 1.45x / 2.9x respectively), and the stdlib ``array('d')``
#: buffers lose at *every* width because each element read boxes a fresh
#: float (the BENCH_vector.json anomaly: stdlib max_merge 0.00383s vs off
#: 0.00283s at row width 240).  Dispatch therefore keys on the measured
#: crossover of the row width, not on backend presence alone: plain lists
#: below it, ndarrays at or above it, ``array('d')`` rows never.
_ROW_NUMPY_MIN = 160


def row_from_list(values: List[float]):
    """A longest-path row buffer for the active backend (no width gate).

    ``off`` and ``stdlib`` return the list itself (no copy -- the scalar
    loops are the measured winners over ``array('d')`` buffers, whose
    element reads box a fresh float each); ``numpy`` copies into a
    contiguous ndarray.  Hot analysis code uses :func:`row_buffer` instead,
    which additionally applies the measured :data:`_ROW_NUMPY_MIN` width
    gate; this ungated form is the parity-test / benchmark constructor that
    always yields the backend's vector buffer type.
    """

    if backend() == "numpy":
        return _np.asarray(values, dtype=_np.float64)
    return values


def row_buffer(values: List[float]):
    """A row buffer for the active backend under the measured width gate.

    The analysis-facing constructor: rows narrower than
    :data:`_ROW_NUMPY_MIN` stay plain lists even under the numpy backend
    (the scalar loops win there -- see the gate's measurement note), so
    every kernel dispatching on the runtime buffer type takes the fastest
    measured form for the instance size at hand.
    """

    if backend() == "numpy" and len(values) >= _ROW_NUMPY_MIN:
        return _np.asarray(values, dtype=_np.float64)
    return values


def row_to_list(row) -> List[float]:
    """Plain-``float`` list view of a row (the string-facing boundary).

    Guarantees no ``numpy.float64`` leaks into name-keyed dict views or
    report bytes: ``ndarray.tolist``/``array.tolist`` both box to built-in
    floats.
    """

    if type(row) is list:
        return row
    return row.tolist()


# --------------------------------------------------------------------- #
# Kernel 1: whole-row longest-path max-merge
# --------------------------------------------------------------------- #
def finite_entries(row_dst):
    """Hoisted finite continuation entries of an arc's destination row.

    The per-arc precomputation of the push patch loop: the ``(y, lp(dst,
    y))`` pairs with a finite longest path.  The numpy form is an ``(index
    array, value array)`` pair consumed by the vector :func:`max_merge`;
    the scalar form is the PR-6 list of pairs.
    """

    if _np is not None and type(row_dst) is _np.ndarray:
        idx = _np.nonzero(row_dst != NEG_INF)[0]
        return (idx, row_dst[idx])
    return [(y, dv) for y, dv in enumerate(row_dst) if dv != NEG_INF]


def max_merge(row, shift, finite):
    """``row'[y] = max(row[y], shift + lp(dst, y))`` over the finite entries.

    Returns ``(patched_row, changed_indices)`` -- a fresh copy-on-write
    buffer and the ascending indices that grew -- or ``(None, None)`` when
    nothing improved.  The changed-index list feeds the DV dirty-region
    recheck, so its order (ascending ``y``) is part of the contract.
    """

    if _np is not None and type(row) is _np.ndarray:
        counters["vector_kernel_calls"] += 1
        idx, vals = finite
        cand = vals + shift
        improved = cand > row[idx]
        if not improved.any():
            return None, None
        patched = row.copy()
        where = idx[improved]
        patched[where] = cand[improved]
        return patched, where.tolist()
    if type(row) is not list:
        counters["vector_kernel_calls"] += 1
    patched = None
    changed: Optional[List[int]] = None
    for y, dv in finite:
        cand = shift + dv
        if patched is None:
            if cand > row[y]:
                patched = row[:]
                patched[y] = cand
                changed = [y]
        elif cand > patched[y]:
            patched[y] = cand
            changed.append(y)  # type: ignore[union-attr]
    return patched, changed


def max_merge_rows(rows, shifts, finite):
    """Block form of :func:`max_merge`: patch several rows under one arc.

    *rows* are the buffers with a finite ``lp(x, src)`` (all the same
    backend type), *shifts* the per-row ``lp(x, src) + w`` values, *finite*
    the arc destination's hoisted continuation entries.  Unlike the
    copy-on-write :func:`max_merge`, the rows are patched **in place** --
    this is the batched push path, whose undo format is the returned
    pre-image block instead of per-row copies.

    Returns ``(changed_positions, changed_cols, snapshots)``:

    * ``changed_positions`` -- ascending indices into *rows* that improved;
    * ``changed_cols`` -- per changed row, the ascending column ids that
      grew (the ``lp_changes`` contract of the per-row kernel);
    * ``snapshots`` -- per changed row, its full pre-image (under numpy one
      contiguous ``(changed, n)`` block, handed out as row views).

    The scalar form runs the exact per-row reference loop (every finite
    entry has a distinct column, so comparing against the mutating row is
    identical to comparing against a pristine copy), and the numpy form
    performs the same IEEE-754 adds/compares elementwise, so the patched
    state is byte-identical across backends (``tests/test_batchpush.py``).
    """

    counters["row_block_patches"] += 1
    if not rows:
        return [], [], []
    if _np is not None and type(rows[0]) is _np.ndarray:
        counters["vector_kernel_calls"] += 1
        idx, vals = finite
        if len(idx) == 0:
            return [], [], []
        stacked = _np.stack(rows)
        sub = stacked[:, idx]
        cand = _np.asarray(shifts, dtype=_np.float64)[:, None] + vals[None, :]
        improved = cand > sub
        rowmask = improved.any(axis=1)
        if not rowmask.any():
            return [], [], []
        changed_positions = _np.nonzero(rowmask)[0]
        # The pre-image snapshot: one contiguous block of exactly the rows
        # about to change (fancy indexing copies out of `stacked`, which
        # still holds every pre-image).
        snapshot_block = stacked[changed_positions]
        changed_cols: List[List[int]] = []
        for r in changed_positions:
            mask = improved[r]
            cols = idx[mask]
            rows[r][cols] = cand[r][mask]
            changed_cols.append(cols.tolist())
        return (
            changed_positions.tolist(),
            changed_cols,
            list(snapshot_block),
        )
    changed_positions_s: List[int] = []
    changed_cols_s: List[List[int]] = []
    snapshots: List[List[float]] = []
    for p, row in enumerate(rows):
        shift = shifts[p]
        snap = None
        cols: Optional[List[int]] = None
        for y, dv in finite:
            cand = shift + dv
            if cand > row[y]:
                if snap is None:
                    snap = row[:]
                    cols = [y]
                else:
                    cols.append(y)  # type: ignore[union-attr]
                row[y] = cand
        if snap is not None:
            changed_positions_s.append(p)
            changed_cols_s.append(cols)  # type: ignore[arg-type]
            snapshots.append(snap)
    return changed_positions_s, changed_cols_s, snapshots


# --------------------------------------------------------------------- #
# Kernel 1b: multi-source longest-path seeding (killed-mirror rebuilds)
# --------------------------------------------------------------------- #
def relax_sources(adj, order, start, sources, n):
    """Seed several longest-path rows in one pass over the shared topo order.

    *adj* is the dense flat out-adjacency (op id -> list of ``(succ_id,
    weight)`` pairs, indexable by id), *order* is the shared topological
    order, *start* the earliest position any source occupies (positions
    before it cannot reach any source), *sources* the distinct op ids to
    seed, *n* the row width.  Returns one row buffer per source, in
    *sources* order, each exactly what the per-source single-relaxation
    pass would have produced (``tests/test_batchpush.py`` pins the
    byte-identity; the seed distance is the integer ``0``, matching the
    reference seeding).

    The batching win here is **algorithmic, not SIMD**: one walk over the
    ``order[start:]`` suffix shares each node's adjacency reads across all
    k rows instead of re-walking per source.  An ndarray (k x n) variant
    was measured on this container (benchmarks/bench_batchpush.py,
    ``BENCH_batchpush.json`` section ``relax_seeding``) and *lost* at every
    realistic shape -- 0.024s vs 0.0017s at (n=240, k=2), still 1.8x
    slower at k=32 -- because the sparse walk decays into two numpy calls
    per edge on length-k vectors.  Dispatch keyed on the measurements, so
    this kernel is scalar on every backend; only the returned buffer type
    follows :func:`row_buffer`.
    """

    counters["mirror_bulk_seeds"] += 1
    rows = []
    for src in sources:
        row: List[float] = [NEG_INF] * n
        row[src] = 0
        rows.append(row)
    for nid in order[start:]:
        succs = adj[nid]
        if not succs:
            continue
        for row in rows:
            d = row[nid]
            if d == NEG_INF:
                continue
            for ni, w in succs:
                nd = d + w
                if nd > row[ni]:
                    row[ni] = nd
    return [row_buffer(row) for row in rows]


# --------------------------------------------------------------------- #
# Kernel 2: DV threshold scan (killer bitset from a longest-path row)
# --------------------------------------------------------------------- #
def prepare_values(
    value_opids: Sequence[int], delta_w: Sequence[int], n: Optional[int] = None
):
    """Backend handle over the value-id / delta_w tables of one DV state.

    Built once per killing-function rebuild; :func:`threshold_mask` then
    gathers through it on every killer-row seed.  Pass the row width *n*
    when known: below :data:`_ROW_NUMPY_MIN` the rows themselves are plain
    lists (see :func:`row_buffer`), so the prep stays scalar to match.
    """

    if backend() == "numpy" and (n is None or n >= _ROW_NUMPY_MIN):
        return (
            _np.asarray(list(value_opids), dtype=_np.intp),
            _np.asarray(list(delta_w), dtype=_np.int64),
        )
    return (list(value_opids), list(delta_w))


def threshold_mask(row, prep, read: int) -> int:
    """The killer's DV bitset: bit ``j`` set iff ``lp(k, v_j) >= read - dw_j``.

    Always returns a built-in Python int (the bitset code downstream is
    big-int arithmetic).
    """

    vids, dw = prep
    if (
        _np is not None
        and type(row) is _np.ndarray
        and type(vids) is _np.ndarray
    ):
        counters["vector_kernel_calls"] += 1
        if len(vids) == 0:
            return 0
        dist = row[vids]
        ok = (dist != NEG_INF) & (dist >= (read - dw))
        return int.from_bytes(
            _np.packbits(ok, bitorder="little").tobytes(), "little"
        )
    if type(row) is not list:
        counters["vector_kernel_calls"] += 1
    mask = 0
    for j, vid in enumerate(vids):
        dist = row[vid]
        if dist != NEG_INF and dist >= read - dw[j]:
            mask |= 1 << j
    return mask


# --------------------------------------------------------------------- #
# Kernel 3: bitset transitive closure (PersistentAntichain seeding)
# --------------------------------------------------------------------- #
def closure_from_rows(rows: Sequence[int]) -> Optional[List[int]]:
    """Transitive-closure bitsets of a bit relation, or None on a cycle.

    Kahn over the bit relation, then closure accumulation in reverse
    topological order.  The closure of a DAG is unique, so the result is
    independent of the topological order either implementation walks.

    Dispatch note: the numpy word-matrix form only pays for itself on wide
    relations -- Python's big-int ``|`` is already a vectorized word loop in
    C, and the scalar kernel has no per-call conversion.  The measured
    crossover on the benchmark suite sits far above the paper's instance
    sizes (a few hundred values), so the scalar kernel is the wired default
    and the numpy form is kept parity-tested for wider ground sets.
    """

    if (
        _np is not None
        and len(rows) >= _CLOSURE_NUMPY_MIN
        and backend() == "numpy"
        and sys.byteorder == "little"
    ):
        return _closure_numpy(rows)
    return _closure_scalar(rows)


#: Ground-set size below which the closure always takes the scalar big-int
#: kernel.  benchmarks/bench_vector.py measures the scalar kernel ahead
#: through its whole range (n <= 2304: its big-int OR is itself a C word
#: loop with no per-call conversion), so this gate sits above anything the
#: suite produces and the numpy form is a parity-tested alternative for
#: far wider ground sets.
_CLOSURE_NUMPY_MIN = 4096


def _closure_scalar(rows: Sequence[int]) -> Optional[List[int]]:
    n = len(rows)
    indeg = [0] * n
    for mask in rows:
        while mask:
            low = mask & -mask
            indeg[low.bit_length() - 1] += 1
            mask ^= low
    stack = [i for i in range(n) if indeg[i] == 0]
    order: List[int] = []
    while stack:
        i = stack.pop()
        order.append(i)
        mask = rows[i]
        while mask:
            low = mask & -mask
            j = low.bit_length() - 1
            mask ^= low
            indeg[j] -= 1
            if indeg[j] == 0:
                stack.append(j)
    if len(order) != n:
        return None
    closure = [0] * n
    for i in reversed(order):
        acc = 0
        mask = rows[i]
        while mask:
            low = mask & -mask
            acc |= low | closure[low.bit_length() - 1]
            mask ^= low
        closure[i] = acc
    return closure


def _closure_numpy(rows: Sequence[int]) -> Optional[List[int]]:
    counters["vector_kernel_calls"] += 1
    n = len(rows)
    if n == 0:
        return []
    nwords = (n + 63) // 64
    nbytes = nwords * 8
    buf = _np.empty((n, nbytes), dtype=_np.uint8)
    for i, mask in enumerate(rows):
        buf[i] = _np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=_np.uint8)
    bits = _np.unpackbits(buf, axis=1, bitorder="little")[:, :n]
    indeg = bits.sum(axis=0, dtype=_np.int64)
    succ = [_np.nonzero(bits[i])[0] for i in range(n)]
    stack = [int(i) for i in _np.nonzero(indeg == 0)[0]]
    order: List[int] = []
    while stack:
        i = stack.pop()
        order.append(i)
        s = succ[i]
        if len(s):
            indeg[s] -= 1
            for j in s[indeg[s] == 0]:
                stack.append(int(j))
    if len(order) != n:
        return None
    words = buf.view(_np.dtype("<u8"))
    closure = _np.zeros((n, nwords), dtype=_np.dtype("<u8"))
    for i in reversed(order):
        s = succ[i]
        if len(s):
            closure[i] = _np.bitwise_or.reduce(closure[s], axis=0) | words[i]
        else:
            closure[i] = words[i]
    return [
        int.from_bytes(closure[i].tobytes(), "little") for i in range(n)
    ]


# --------------------------------------------------------------------- #
# Kernel 4: candidate-pair scan over flat verdict tables
# --------------------------------------------------------------------- #
def pair_tables(n2: int):
    """Flat verdict tables mirroring the session's pair-verdict dict.

    ``xs[key]`` holds the cached pair-local quantity ``X`` of a candidate
    verdict; ``arcs[key]`` encodes the verdict kind: ``-1`` missing, ``-2``
    implied, ``-3`` none/illegal, ``>= 0`` the candidate's arc count.
    Returns None when the backend is ``off`` (the session keeps its scalar
    dict loop).
    """

    b = backend()
    if b == "numpy":
        return (
            _np.zeros(n2, dtype=_np.float64),
            _np.full(n2, -1, dtype=_np.int64),
        )
    if b == "stdlib":
        return (array("d", bytes(8 * n2)), array("q", [-1]) * n2)
    return None


#: Single-entry memo for the numpy scan's derived index arrays, keyed by
#: ``(n, tuple(idx))``.
_scan_key_cache: Optional[Tuple] = None


def scan_pairs(
    xs,
    arcs,
    idx: Sequence[int],
    n: int,
    cp: int,
    base_cp: int,
    fresh: Callable[[int, int, int], None],
):
    """One quadratic candidate-pair scan over the flat verdict tables.

    *idx* maps scan positions to value indices (all distinct); the pair at
    positions ``(a, b)`` has flat key ``idx[a] * n + idx[b]``.  Missing
    verdicts are filled through ``fresh(a, b, key)``, which must leave the
    tables updated.  Returns ``(best, best_key, implied, reused)`` where
    *best* is the winning ``(cp_increase, arc_count)`` under the strict
    first-minimum lexicographic order of the scalar scan (row-major pair
    order), or None when no pair is applicable.
    """

    counters["vector_kernel_calls"] += 1
    if _np is not None and type(arcs) is _np.ndarray:
        global _scan_key_cache
        k = len(idx)
        # The candidate set is stable across the many scans of one
        # reduction iteration, so the derived key/off-diagonal arrays are
        # memoized (single entry -- scans interleave per session, not per
        # graph).
        sig = (n, tuple(idx))
        if _scan_key_cache is not None and _scan_key_cache[0] == sig:
            keys, offdiag = _scan_key_cache[1]
        else:
            ii = _np.asarray(list(idx), dtype=_np.int64)
            keys = (ii[:, None] * n + ii[None, :]).ravel()
            offdiag = ~_np.eye(k, dtype=bool).ravel()
            _scan_key_cache = (sig, (keys, offdiag))
        codes = arcs[keys]
        missing = _np.nonzero(offdiag & (codes == -1))[0]
        for p in missing:
            p = int(p)
            fresh(p // k, p % k, int(keys[p]))
        if len(missing):
            codes = arcs[keys]
        reused = int(offdiag.sum()) - len(missing)
        implied = int((offdiag & (codes == -2)).sum())
        valid = offdiag & (codes >= 0)
        if not valid.any():
            return None, None, implied, reused
        vpos = _np.nonzero(valid)[0]
        x = xs[keys[vpos]]
        # int(x if x > cp else cp) - base_cp, elementwise: both int() and
        # the int64 cast truncate toward zero, so the arithmetic is
        # bit-for-bit the scalar loop's.
        inc = _np.where(x > cp, x, float(cp)).astype(_np.int64) - base_cp
        arc_counts = codes[vpos]
        min_inc = inc.min()
        at_min = inc == min_inc
        min_arc = arc_counts[at_min].min()
        sel = int(_np.nonzero(at_min & (arc_counts == min_arc))[0][0])
        best = (int(min_inc), int(min_arc))
        return best, int(keys[vpos[sel]]), implied, reused
    k = len(idx)
    best: Optional[Tuple[int, int]] = None
    best_key: Optional[int] = None
    reused = 0
    implied = 0
    for a in range(k):
        base = idx[a] * n
        for b in range(k):
            if a == b:
                continue
            key = base + idx[b]
            code = arcs[key]
            if code == -1:
                fresh(a, b, key)
                code = arcs[key]
            else:
                reused += 1
            if code == -2:
                implied += 1
                continue
            if code == -3:
                continue
            x = xs[key]
            inc = int(x if x > cp else cp) - base_cp
            if best is None or (inc, code) < best:
                best = (inc, code)
                best_key = key
    return best, best_key, implied, reused
