"""Graph algorithms used throughout the register-saturation analysis.

Everything here operates on a :class:`~repro.core.graph.DDG` and is purely
structural: longest paths (``lp`` in the paper), reachability/descendants,
transitive closure, critical path, and the as-soon-as/as-late-as-possible
issue times that bound every valid schedule.

All functions are deterministic and side-effect free; the heavier ones cache
nothing themselves -- callers that need repeated queries should hold on to
the returned dictionaries/matrices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.graph import DDG
from ..errors import CyclicGraphError

__all__ = [
    "NEG_INF",
    "longest_paths_from",
    "longest_path_matrix",
    "longest_path_to_sinks",
    "critical_path_length",
    "asap_times",
    "alap_times",
    "worst_case_total_time",
    "descendants",
    "ancestors",
    "descendants_map",
    "reachability_matrix",
    "transitive_closure_pairs",
    "transitive_closure_of_relation",
    "would_remain_acyclic",
    "extended_critical_path",
    "mini_graph_remains_acyclic",
    "is_redundant_edge",
    "redundant_edges",
]

#: Sentinel for "no path"; small enough that adding latencies never overflows.
NEG_INF = float("-inf")


# --------------------------------------------------------------------------- #
# Longest paths
# --------------------------------------------------------------------------- #
def longest_paths_from(
    ddg: DDG, source: str, order: Optional[List[str]] = None
) -> Dict[str, float]:
    """Longest-path distances (in accumulated latency) from *source* to every node.

    Returns a mapping ``node -> lp(source, node)`` where unreachable nodes map
    to :data:`NEG_INF` and ``lp(source, source) == 0``.  *order* optionally
    supplies an already-computed topological order (the disjoint-value DAG
    runs this once per killer of the same graph).
    """

    if order is None:
        order = ddg.topological_order()
    dist: Dict[str, float] = {v: NEG_INF for v in order}
    dist[source] = 0
    started = False
    for v in order:
        if v == source:
            started = True
        if not started or dist[v] == NEG_INF:
            continue
        for edge in ddg.out_edges(v):
            cand = dist[v] + edge.latency
            if cand > dist[edge.dst]:
                dist[edge.dst] = cand
    return dist


def longest_path_matrix(ddg: DDG) -> Dict[str, Dict[str, float]]:
    """The full longest-path matrix ``lp(u, v)`` of the paper.

    ``lp(u, v)`` is the largest accumulated latency of a path from ``u`` to
    ``v`` (``0`` when ``u == v``, :data:`NEG_INF` when no path exists).  The
    computation is a topological-order dynamic program run from each node,
    i.e. ``O(n (n + m))``.
    """

    order = ddg.topological_order()
    position = {v: i for i, v in enumerate(order)}
    matrix: Dict[str, Dict[str, float]] = {}
    for src in order:
        dist: Dict[str, float] = {v: NEG_INF for v in order}
        dist[src] = 0
        for v in order[position[src]:]:
            if dist[v] == NEG_INF:
                continue
            for edge in ddg.out_edges(v):
                cand = dist[v] + edge.latency
                if cand > dist[edge.dst]:
                    dist[edge.dst] = cand
        matrix[src] = dist
    return matrix


def longest_path_to_sinks(ddg: DDG) -> Dict[str, float]:
    """For every node, the longest latency path from it to any sink.

    This is ``LongestPathFrom(u)`` in the paper's ALAP bound.
    """

    order = ddg.topological_order()
    dist: Dict[str, float] = {v: 0 for v in order}
    for v in reversed(order):
        for edge in ddg.out_edges(v):
            cand = edge.latency + dist[edge.dst]
            if cand > dist[v]:
                dist[v] = cand
    return dist


def critical_path_length(ddg: DDG) -> int:
    """The critical path of the DDG: the maximum accumulated latency of any path.

    Note that following the paper this is a pure latency sum (the issue time
    of the last operation under an ASAP schedule); the caller adds the final
    operation's latency when it wants a makespan.
    """

    if ddg.n == 0:
        return 0
    to_sinks = longest_path_to_sinks(ddg)
    return int(max(to_sinks.values()))


def asap_times(ddg: DDG) -> Dict[str, int]:
    """As-soon-as-possible issue times: ``LongestPathTo(u)`` from the sources."""

    order = ddg.topological_order()
    asap: Dict[str, int] = {v: 0 for v in order}
    for v in order:
        for edge in ddg.out_edges(v):
            cand = asap[v] + edge.latency
            if cand > asap[edge.dst]:
                asap[edge.dst] = cand
    return asap


def alap_times(ddg: DDG, total_time: Optional[int] = None) -> Dict[str, int]:
    """As-late-as-possible issue times with respect to *total_time*.

    The paper defines ``sigma_bar(u) = T - LongestPathFrom(u)`` where ``T`` is
    a worst possible total schedule time; by default the critical path is
    used, which gives the tightest ALAP values.
    """

    if total_time is None:
        total_time = critical_path_length(ddg)
    to_sinks = longest_path_to_sinks(ddg)
    return {v: int(total_time - to_sinks[v]) for v in ddg.nodes()}


def worst_case_total_time(ddg: DDG) -> int:
    """The paper's worst total schedule time ``T = sum_{e in E} delta(e)``.

    This upper bound is valid for the register-saturation intLP because any
    register-need pattern reachable by some schedule is reachable by a
    schedule no longer than the fully sequential one.  A minimum of the
    critical path (plus one) is enforced so that trivial graphs keep a
    non-degenerate horizon.
    """

    total = sum(max(edge.latency, 0) for edge in ddg.edges())
    return int(max(total, critical_path_length(ddg), 1))


# --------------------------------------------------------------------------- #
# Reachability
# --------------------------------------------------------------------------- #
def descendants(ddg: DDG, node: str, include_self: bool = True) -> Set[str]:
    """The set ``↓node`` of nodes reachable from *node* (including itself by default)."""

    seen: Set[str] = {node}
    stack = [node]
    while stack:
        v = stack.pop()
        for w in ddg.successors(v):
            if w not in seen:
                seen.add(w)
                stack.append(w)
    if not include_self:
        seen.discard(node)
    return seen


def ancestors(ddg: DDG, node: str, include_self: bool = True) -> Set[str]:
    """The set ``↑node`` of nodes that reach *node*."""

    seen: Set[str] = {node}
    stack = [node]
    while stack:
        v = stack.pop()
        for w in ddg.predecessors(v):
            if w not in seen:
                seen.add(w)
                stack.append(w)
    if not include_self:
        seen.discard(node)
    return seen


def descendants_map(ddg: DDG, include_self: bool = True) -> Dict[str, Set[str]]:
    """``↓u`` for every node ``u``, computed in a single reverse topological sweep."""

    order = ddg.topological_order()
    desc: Dict[str, Set[str]] = {}
    for v in reversed(order):
        acc: Set[str] = set()
        for w in ddg.successors(v):
            acc.add(w)
            acc |= desc[w]
        desc[v] = acc
    if include_self:
        for v in desc:
            desc[v].add(v)
    return desc


def reachability_matrix(ddg: DDG) -> Dict[str, Set[str]]:
    """Alias of :func:`descendants_map` without the node itself (strict reachability)."""

    return descendants_map(ddg, include_self=False)


def transitive_closure_pairs(ddg: DDG) -> Set[Tuple[str, str]]:
    """All ordered pairs ``(u, v)`` with a non-trivial path ``u -> v``."""

    reach = reachability_matrix(ddg)
    return {(u, v) for u, targets in reach.items() for v in targets}


def would_remain_acyclic(ddg: DDG, edges) -> bool:
    """True when adding *edges* keeps the graph a DAG.

    Rather than copying the graph, the check looks for a path from each
    arc's head back to its tail among the existing arcs plus the tentative
    ones.  This is the single implementation behind both
    ``repro.reduction.serialization.would_remain_acyclic`` and the uncached
    fallback of ``AnalysisContext.remains_acyclic_with_edges``.
    """

    extra_succ: Dict[str, Set[str]] = {}
    for e in edges:
        extra_succ.setdefault(e.src, set()).add(e.dst)

    def reaches(start: str, goal: str) -> bool:
        seen: Set[str] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            nexts = set(ddg.successors(node)) | extra_succ.get(node, set())
            for w in nexts:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return False

    return not any(reaches(e.dst, e.src) for e in edges)


def extended_critical_path(edges, asap, to_sinks, lp_lookup, base_cp) -> int:
    """Exact critical path of a DAG extended with *edges*, without a copy.

    ``asap``/``to_sinks`` are the base graph's longest paths from the sources
    / to the sinks, ``lp_lookup(u)`` its longest-path row from ``u`` and
    ``base_cp`` its critical path.  Any path through the extension
    alternates base-graph segments with new arcs, so the longest mixed path
    only needs a relaxation over the "mini-DAG" spanned by the new arcs'
    endpoints (base segments collapse to single weighted edges via ``lp``).
    Distances grow monotonically, so the relaxation converges in at most one
    round per new arc on a path.

    This is the single implementation shared by
    :meth:`repro.analysis.context.AnalysisContext.critical_path_with_edges`
    and the in-place :class:`repro.reduction.session.ReductionSession`, which
    guarantees both produce the same score for a candidate serialization.
    """

    edges = list(edges)
    if not edges:
        return int(base_cp)
    nodes = {e.src for e in edges} | {e.dst for e in edges}
    best = {x: float(asap[x]) for x in nodes}
    for _ in range(len(edges) + 1):
        changed = False
        for e in edges:
            cand = best[e.src] + e.latency
            if cand > best[e.dst]:
                best[e.dst] = cand
                changed = True
        for u in nodes:
            row = lp_lookup(u)
            base_u = best[u]
            for v in nodes:
                if u == v:
                    continue
                d = row[v]
                if d != NEG_INF and base_u + d > best[v]:
                    best[v] = base_u + d
                    changed = True
        if not changed:
            break
    through_new = max(best[x] + to_sinks[x] for x in nodes)
    return int(max(base_cp, through_new))


def mini_graph_remains_acyclic(edges, reach_lookup) -> bool:
    """Whether adding *edges* to a DAG with reachability *reach_lookup* keeps it a DAG.

    Any new cycle must alternate new arcs with (possibly empty) base paths,
    so it maps to a cycle of the mini-graph over the new arcs' endpoints
    whose extra edges are the base reachability relation.
    ``reach_lookup(u)`` returns the base graph's strict descendant set of
    ``u``.  Shared by the context's ``remains_acyclic_with_edges`` and the
    reduction session's warm legality check.
    """

    edges = list(edges)
    if not edges:
        return True
    nodes = sorted({e.src for e in edges} | {e.dst for e in edges})
    succ: Dict[str, Set[str]] = {x: set() for x in nodes}
    for e in edges:
        succ[e.src].add(e.dst)
    for u in nodes:
        reach_u = reach_lookup(u)
        for v in nodes:
            if v != u and v in reach_u:
                succ[u].add(v)
    state: Dict[str, int] = {}

    def has_cycle(x: str) -> bool:
        state[x] = 1
        for y in succ[x]:
            s = state.get(y, 0)
            if s == 1 or (s == 0 and has_cycle(y)):
                return True
        state[x] = 2
        return False

    return not any(state.get(x, 0) == 0 and has_cycle(x) for x in nodes)


def transitive_closure_of_relation(nodes, edges):
    """Transitive closure of an arbitrary binary relation over *nodes*.

    ``edges`` is an iterable of ordered pairs ``(u, v)``; the result contains
    ``(u, v)`` whenever a non-empty chain of relation edges leads from ``u``
    to ``v``.  This is the node-type-agnostic worker behind
    :func:`transitive_closure_pairs` -- the disjoint-value DAG of
    :mod:`repro.saturation.dvk` uses it on :class:`~repro.core.types.Value`
    pairs rather than on operation names.
    """

    succ: Dict[object, Set[object]] = {v: set() for v in nodes}
    for u, v in edges:
        succ.setdefault(u, set()).add(v)
    closure: Set[Tuple[object, object]] = set()
    for start in succ:
        stack = list(succ[start])
        seen: Set[object] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(succ.get(node, ()))
    return closure


# --------------------------------------------------------------------------- #
# Redundant arcs (paper, optimization note at the end of Section 3)
# --------------------------------------------------------------------------- #
def is_redundant_edge(ddg: DDG, edge, lp: Optional[Mapping[str, Mapping[str, float]]] = None) -> bool:
    """True when the scheduling constraint of *edge* is implied by another path.

    The paper notes that an arc ``e = (u, v)`` is redundant for the
    scheduling constraints when ``lp(u, v) > delta(e)`` with the longest path
    not going through ``e`` itself.  We implement this by removing the arc
    and recomputing the longest path between its endpoints; the matrix form
    accepted via *lp* is used only as a quick negative filter.
    """

    if lp is not None and lp[edge.src][edge.dst] <= edge.latency:
        return False
    trimmed = ddg.copy()
    trimmed.remove_edge(edge)
    dist = longest_paths_from(trimmed, edge.src)
    return dist[edge.dst] >= edge.latency


def redundant_edges(ddg: DDG) -> List:
    """All serial arcs whose scheduling constraint is implied by the rest of the graph.

    Only serial arcs are ever reported: flow arcs carry the register-type
    information needed by the lifetime analysis and must never be dropped
    even when their latency constraint is redundant.
    """

    lp = longest_path_matrix(ddg)
    out = []
    for edge in list(ddg.edges()):
        if edge.is_flow:
            continue
        if is_redundant_edge(ddg, edge, lp):
            out.append(edge)
    return out
