"""Persistent cross-run result store keyed by canonical DDG content hashes.

The :class:`~repro.analysis.context.AnalysisContext` memoizes analyses
within a process; this module extends that memoization *across* processes
and runs, so repeated suite runs and CI stop re-solving identical instances
(the ROADMAP's "cross-run result caching" item).  Two pieces:

* :func:`canonical_graph_hash` -- a content hash of a DDG covering exactly
  what the analyses can observe (operations with their latencies, offsets
  and register types; arcs with their kinds, types and latencies) and
  nothing they cannot (node/arc insertion order, the graph's display name,
  Python object identity).  Two graphs with the same hash are
  indistinguishable to every algorithm in this package, so a result
  computed for one is valid for the other.
* :class:`ResultStore` -- a disk-backed map ``(graph_hash, query, params)
  -> result`` under a versioned schema directory with atomic writes
  (write-to-temp + ``os.replace``), safe for concurrent writers.  Values
  are pickled; a corrupt or mismatching entry reads as a miss, never as an
  error.

The store is **opt-in**: :func:`active_store` returns ``None`` unless the
``REPRO_STORE_DIR`` environment variable names a directory (or
``REPRO_STORE=1`` selects the default ``~/.cache/repro-touati04``), or a
store was activated programmatically with :func:`set_active_store` /
:func:`store_active`.  Clearing the cache is ``rm -rf`` of the directory or
:meth:`ResultStore.clear`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..core.graph import DDG

__all__ = [
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "ResultStore",
    "canonical_graph_hash",
    "default_store_dir",
    "active_store",
    "set_active_store",
    "reset_active_store",
    "store_active",
]

#: Bump when the on-disk payload layout (or anything that invalidates every
#: stored result, like the pickle format of the result objects) changes;
#: entries live under ``<root>/v<version>/`` so old schemas never collide.
STORE_SCHEMA_VERSION = 1

#: Environment variables controlling the ambient store.
STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_ENABLE_ENV = "REPRO_STORE"

_MISS = object()


# --------------------------------------------------------------------------- #
# Canonical graph hashing
# --------------------------------------------------------------------------- #
def _graph_tokens(ddg: DDG) -> Iterator[str]:
    """Canonical serialization of everything the analyses can observe.

    Operations and edges are emitted in sorted order, so the hash is
    invariant under insertion order and under rebuilds that preserve the
    labels; the graph's display name is deliberately excluded (renaming a
    graph cannot change any analysis result).
    """

    yield "ddg-v1"
    for name in sorted(ddg.nodes()):
        op = ddg.operation(name)
        defs = ",".join(sorted(t.name for t in op.defs))
        yield (
            f"op|{name}|{defs}|{op.latency}|{op.delta_r}|{op.delta_w}"
            f"|{op.opcode}|{op.fu_class}"
        )
    edges = sorted(
        (
            e.src,
            e.dst,
            e.kind.value,
            "" if e.rtype is None else e.rtype.name,
            e.latency,
        )
        for e in ddg.edges()
    )
    for src, dst, kind, rtype, latency in edges:
        yield f"edge|{src}|{dst}|{kind}|{rtype}|{latency}"


def canonical_graph_hash(ddg: DDG) -> str:
    """Content hash of *ddg*: equal for semantically identical graphs.

    The hash covers structure, latencies, offsets and register types; it is
    independent of node/arc insertion order and of the graph's name.  Any
    semantic mutation -- a latency, a register type, an extra arc -- changes
    it (property-tested in ``tests/test_result_store.py``).
    """

    digest = hashlib.sha256()
    for token in _graph_tokens(ddg):
        digest.update(token.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _canonical_params(params: object) -> object:
    """Normalize a params structure so equal queries key identically.

    Mappings are sorted by the repr of their canonicalized keys (insertion
    order must not matter), sequences keep their order, sets are sorted.
    Leaves rely on ``repr``, which is deterministic for the value objects
    used as parameters here (str/int/float/bool/None, RegisterType, frozen
    dataclasses).
    """

    if isinstance(params, dict):
        items = [(_canonical_params(k), _canonical_params(v)) for k, v in params.items()]
        return ("dict",) + tuple(sorted(items, key=repr))
    if isinstance(params, (set, frozenset)):
        return ("set",) + tuple(sorted((_canonical_params(v) for v in params), key=repr))
    if isinstance(params, (list, tuple)):
        return ("seq",) + tuple(_canonical_params(v) for v in params)
    return repr(params)


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
@dataclass
class StoreStats:
    """In-process counters of one :class:`ResultStore` (not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from disk (0.0 when none happened)."""

        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }


class ResultStore:
    """Disk-backed ``(graph_hash, query, params) -> result`` map.

    Entries are pickle files under ``<root>/v<schema>/<kk>/<key>.pkl`` where
    ``key`` is the SHA-256 of the lookup triple and ``kk`` its first two hex
    digits (keeps directories small).  Writes go to a temp file in the final
    directory followed by :func:`os.replace`, so concurrent writers (the
    batch engine's process policy, parallel CI shards) can only ever race
    towards identical complete entries, never corrupt one.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._schema_dir = self.root / f"v{STORE_SCHEMA_VERSION}"
        self._lock = threading.Lock()
        self.stats = StoreStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    def _key(self, graph_hash: str, query: str, params: object) -> str:
        digest = hashlib.sha256()
        digest.update(f"{graph_hash}|{query}|".encode("utf-8"))
        digest.update(repr(_canonical_params(params)).encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, graph_hash: str, query: str, params: object = None) -> Path:
        key = self._key(graph_hash, query, params)
        return self._schema_dir / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(
        self,
        graph_hash: str,
        query: str,
        params: object = None,
        default: object = None,
    ) -> object:
        """The stored result, or *default* on a miss (corrupt entry = miss)."""

        path = self.path_for(graph_hash, query, params)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return default
        except Exception:
            # Corrupt/partial/unreadable entry: drop it and report a miss.
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return default
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != STORE_SCHEMA_VERSION
            or payload.get("graph_hash") != graph_hash
            or payload.get("query") != query
        ):
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            return default
        with self._lock:
            self.stats.hits += 1
        return payload["value"]

    def put(self, graph_hash: str, query: str, params: object, value: object) -> Path:
        """Atomically store *value*; concurrent identical puts are harmless."""

        path = self.path_for(graph_hash, query, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "graph_hash": graph_hash,
            "query": query,
            "value": value,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.puts += 1
        return path

    def memo(self, graph_hash: str, query: str, params: object, factory):
        """``get`` falling back to ``factory()`` + ``put`` (the common shape)."""

        value = self.get(graph_hash, query, params, default=_MISS)
        if value is not _MISS:
            return value
        value = factory()
        self.put(graph_hash, query, params, value)
        return value

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        if not self._schema_dir.is_dir():
            return 0
        return sum(1 for _ in self._schema_dir.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry of the current schema; returns how many."""

        removed = 0
        if self._schema_dir.is_dir():
            for entry in self._schema_dir.glob("*/*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# --------------------------------------------------------------------------- #
# Ambient store (opt-in)
# --------------------------------------------------------------------------- #
#: Explicit override set by set_active_store/store_active; the sentinel
#: means "not overridden, consult the environment".
_ACTIVE_OVERRIDE: object = _MISS
_ENV_STORES: Dict[str, ResultStore] = {}
_AMBIENT_LOCK = threading.Lock()


def default_store_dir() -> Path:
    """``$REPRO_STORE_DIR``, else ``$XDG_CACHE_HOME``/``~/.cache`` + ``repro-touati04``."""

    explicit = os.environ.get(STORE_DIR_ENV, "").strip()
    if explicit:
        return Path(explicit)
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-touati04"


def active_store() -> Optional[ResultStore]:
    """The ambient :class:`ResultStore`, or ``None`` when persistence is off.

    Explicit :func:`set_active_store` / :func:`store_active` wins; otherwise
    ``REPRO_STORE_DIR=<dir>`` (or ``REPRO_STORE=1`` for the default cache
    location) switches persistence on.  Store objects are shared per
    directory so hit/miss statistics aggregate per process.
    """

    if _ACTIVE_OVERRIDE is not _MISS:
        return _ACTIVE_OVERRIDE  # type: ignore[return-value]
    explicit = os.environ.get(STORE_DIR_ENV, "").strip()
    enabled = os.environ.get(STORE_ENABLE_ENV, "").strip().lower()
    if not explicit and enabled not in ("1", "on", "true", "yes"):
        return None
    directory = str(default_store_dir())
    with _AMBIENT_LOCK:
        store = _ENV_STORES.get(directory)
        if store is None:
            store = _ENV_STORES.setdefault(directory, ResultStore(directory))
    return store


def set_active_store(store: Optional[ResultStore]) -> None:
    """Force the ambient store (``None`` disables persistence regardless of env)."""

    global _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = store


def reset_active_store() -> None:
    """Drop any explicit override; the environment decides again."""

    global _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = _MISS


@contextmanager
def store_active(store: Union[None, str, Path, ResultStore]):
    """Activate *store* (a :class:`ResultStore` or a directory) for a block."""

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    global _ACTIVE_OVERRIDE
    previous = _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = store
    try:
        yield store
    finally:
        _ACTIVE_OVERRIDE = previous
