"""Persistent cross-run result store keyed by canonical DDG content hashes.

The :class:`~repro.analysis.context.AnalysisContext` memoizes analyses
within a process; this module extends that memoization *across* processes
and runs, so repeated suite runs and CI stop re-solving identical instances
(the ROADMAP's "cross-run result caching" item).  Two pieces:

* :func:`canonical_graph_hash` -- a content hash of a DDG covering exactly
  what the analyses can observe (operations with their latencies, offsets
  and register types; arcs with their kinds, types and latencies) and
  nothing they cannot (node/arc insertion order, the graph's display name,
  Python object identity).  Two graphs with the same hash are
  indistinguishable to every algorithm in this package, so a result
  computed for one is valid for the other.
* :class:`ResultStore` -- a disk-backed map ``(graph_hash, query, params)
  -> result`` under a versioned schema directory with crash-safe atomic
  writes (write-ahead temp file + ``fsync`` + ``os.replace``, serialized
  per hash-prefix shard by a lock file), safe for concurrent writer
  *processes*.  Values are pickled; a corrupt or mismatching entry reads
  as a miss -- but never silently: it is quarantined to the schema's
  ``corrupt/`` subdirectory, counted in :attr:`StoreStats.corrupt` and
  logged at debug level, so store rot is observable instead of hoped
  away.

The store is **opt-in**: :func:`active_store` returns ``None`` unless the
``REPRO_STORE_DIR`` environment variable names a directory (or
``REPRO_STORE=1`` selects the default ``~/.cache/repro-touati04``), or a
store was activated programmatically with :func:`set_active_store` /
:func:`store_active`.  Clearing the cache is ``rm -rf`` of the directory or
:meth:`ResultStore.clear`.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

try:  # POSIX shard locking; Windows falls back to atomic-replace-only.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None

from ..core.graph import DDG

_log = logging.getLogger(__name__)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "ResultStore",
    "canonical_graph_hash",
    "default_store_dir",
    "active_store",
    "set_active_store",
    "reset_active_store",
    "store_active",
]

#: Bump when the on-disk payload layout (or anything that invalidates every
#: stored result, like the pickle format of the result objects) changes;
#: entries live under ``<root>/v<version>/`` so old schemas never collide.
STORE_SCHEMA_VERSION = 1

#: Environment variables controlling the ambient store.
STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_ENABLE_ENV = "REPRO_STORE"

_MISS = object()


# --------------------------------------------------------------------------- #
# Canonical graph hashing
# --------------------------------------------------------------------------- #
def _graph_tokens(ddg: DDG) -> Iterator[str]:
    """Canonical serialization of everything the analyses can observe.

    Operations and edges are emitted in sorted order, so the hash is
    invariant under insertion order and under rebuilds that preserve the
    labels; the graph's display name is deliberately excluded (renaming a
    graph cannot change any analysis result).
    """

    yield "ddg-v1"
    for name in sorted(ddg.nodes()):
        op = ddg.operation(name)
        defs = ",".join(sorted(t.name for t in op.defs))
        yield (
            f"op|{name}|{defs}|{op.latency}|{op.delta_r}|{op.delta_w}"
            f"|{op.opcode}|{op.fu_class}"
        )
    edges = sorted(
        (
            e.src,
            e.dst,
            e.kind.value,
            "" if e.rtype is None else e.rtype.name,
            e.latency,
        )
        for e in ddg.edges()
    )
    for src, dst, kind, rtype, latency in edges:
        yield f"edge|{src}|{dst}|{kind}|{rtype}|{latency}"


def canonical_graph_hash(ddg: DDG) -> str:
    """Content hash of *ddg*: equal for semantically identical graphs.

    The hash covers structure, latencies, offsets and register types; it is
    independent of node/arc insertion order and of the graph's name.  Any
    semantic mutation -- a latency, a register type, an extra arc -- changes
    it (property-tested in ``tests/test_result_store.py``).
    """

    digest = hashlib.sha256()
    for token in _graph_tokens(ddg):
        digest.update(token.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _canonical_params(params: object) -> object:
    """Normalize a params structure so equal queries key identically.

    Mappings are sorted by the repr of their canonicalized keys (insertion
    order must not matter), sequences keep their order, sets are sorted.
    Leaves rely on ``repr``, which is deterministic for the value objects
    used as parameters here (str/int/float/bool/None, RegisterType, frozen
    dataclasses).
    """

    if isinstance(params, dict):
        items = [(_canonical_params(k), _canonical_params(v)) for k, v in params.items()]
        return ("dict",) + tuple(sorted(items, key=repr))
    if isinstance(params, (set, frozenset)):
        return ("set",) + tuple(sorted((_canonical_params(v) for v in params), key=repr))
    if isinstance(params, (list, tuple)):
        return ("seq",) + tuple(_canonical_params(v) for v in params)
    return repr(params)


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
@dataclass
class StoreStats:
    """In-process counters of one :class:`ResultStore` (not persisted).

    ``errors`` totals every read anomaly; ``corrupt`` counts the subset of
    entries that were quarantined (unreadable pickle, wrong payload shape,
    mismatching key fields); ``write_errors`` counts failed writes and
    failed maintenance deletions; ``lock_timeouts`` counts shard locks that
    could not be acquired within the timeout and were quarantined as stale;
    ``stale_tmp_removed`` counts orphaned write-ahead temp files swept on
    open.  The counters exist so fault handling is
    *observable* -- a store that silently eats corruption looks identical
    to a healthy one until results go missing.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    corrupt: int = 0
    write_errors: int = 0
    lock_timeouts: int = 0
    stale_tmp_removed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from disk (0.0 when none happened)."""

        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "lock_timeouts": self.lock_timeouts,
            "stale_tmp_removed": self.stale_tmp_removed,
            "hit_rate": self.hit_rate,
        }


class ResultStore:
    """Disk-backed ``(graph_hash, query, params) -> result`` map.

    Entries are pickle files under ``<root>/v<schema>/<kk>/<key>.pkl`` where
    ``key`` is the SHA-256 of the lookup triple and ``kk`` its first two hex
    digits -- the *shard*.  Writes follow a write-ahead discipline: pickle
    into a temp file in the final directory, flush + ``fsync``, then
    :func:`os.replace`, all under an ``flock``-ed per-shard lock file, so
    concurrent writer *processes* (the batch engine's process policy, a
    future distributed fleet, parallel CI shards) can only ever race
    towards complete entries -- a reader observes a miss or a fully-written
    value, never a torn one.  Reads are lockless (``os.replace`` is atomic)
    and an entry that fails to load is quarantined under
    ``<root>/v<schema>/corrupt/`` rather than silently dropped.
    """

    #: Quarantine subdirectory name (inside the schema dir; deliberately
    #: not two hex digits, so shard globs never pick it up).
    CORRUPT_DIR = "corrupt"

    #: How long a writer waits for a shard lock before declaring the holder
    #: stuck, quarantining the lock file, and retrying on a fresh one.
    DEFAULT_LOCK_TIMEOUT = 10.0

    #: A write-ahead temp file older than this at open time belongs to a
    #: writer that died mid-write; younger ones may be live concurrent puts.
    TMP_GRACE_SECONDS = 60.0

    def __init__(
        self,
        root: Union[str, Path],
        *,
        lock_timeout: Optional[float] = DEFAULT_LOCK_TIMEOUT,
        tmp_grace: float = TMP_GRACE_SECONDS,
    ) -> None:
        self.root = Path(root)
        self._schema_dir = self.root / f"v{STORE_SCHEMA_VERSION}"
        self._lock = threading.Lock()
        self.lock_timeout = lock_timeout
        self.tmp_grace = tmp_grace
        self.stats = StoreStats()
        self._sweep_orphan_tmp()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    def _key(self, graph_hash: str, query: str, params: object) -> str:
        digest = hashlib.sha256()
        digest.update(f"{graph_hash}|{query}|".encode("utf-8"))
        digest.update(repr(_canonical_params(params)).encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, graph_hash: str, query: str, params: object = None) -> Path:
        key = self._key(graph_hash, query, params)
        return self._schema_dir / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # Shard locking and quarantine
    # ------------------------------------------------------------------ #
    @property
    def quarantine_dir(self) -> Path:
        return self._schema_dir / self.CORRUPT_DIR

    @contextmanager
    def _shard_lock(self, shard: Path):
        """Exclusive cross-process lock on one hash-prefix shard.

        Backed by ``flock`` on a ``.lock`` file inside the shard directory;
        where ``fcntl`` is unavailable the context degrades to the atomic
        ``os.replace`` guarantees alone (last identical writer wins).

        Acquisition is bounded by ``lock_timeout``: a holder stuck mid-write
        (hung worker, process frozen under a debugger) must not block every
        contender indefinitely.  On timeout the lock *file* is quarantined
        -- renamed into ``corrupt/`` so the stuck holder keeps its flock on
        an orphaned inode -- and contenders coordinate on a fresh lock file
        (counted in :attr:`StoreStats.lock_timeouts`).  After two quarantine
        rounds the writer proceeds unlocked: the atomic-replace discipline
        alone still guarantees readers never observe a torn entry.
        """

        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = shard / ".lock"
        fd: Optional[int] = None
        for round_ in range(3):
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            if self.lock_timeout is None:
                fcntl.flock(fd, fcntl.LOCK_EX)
                break
            deadline = time.monotonic() + self.lock_timeout
            acquired = False
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(min(0.02, self.lock_timeout / 10.0))
            if acquired:
                break
            os.close(fd)
            fd = None
            if round_ < 2:
                self._quarantine_stale_lock(lock_path)
        try:
            yield
        finally:
            if fd is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)

    def _quarantine_stale_lock(self, lock_path: Path) -> None:
        """Move a lock file whose holder looks stuck out of the way."""

        with self._lock:
            self.stats.lock_timeouts += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / (
                f"{lock_path.parent.name}-{time.time_ns():x}.lock.stale"
            )
            os.replace(lock_path, target)
            _log.debug("quarantined stale shard lock %s -> %s", lock_path, target)
        except OSError as exc:
            # A fellow contender beat us to the rename; its fresh lock file
            # is what the retry round will coordinate on.
            _log.debug("could not quarantine stale lock %s: %s", lock_path, exc)

    def _sweep_orphan_tmp(self) -> int:
        """Remove write-ahead temp files orphaned by writers that died.

        Called on open: a ``.tmp-*.pkl`` older than ``tmp_grace`` seconds
        can no longer belong to a live put (puts hold their shard lock for
        milliseconds), so it is deleted and counted.  Younger temp files are
        left alone -- they may be a concurrent writer mid-``fsync``.
        """

        if not self._schema_dir.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - self.tmp_grace
        for tmp in self._schema_dir.glob("[0-9a-f][0-9a-f]/.tmp-*.pkl"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - lost a race with its writer
                continue
        if removed:
            with self._lock:
                self.stats.stale_tmp_removed += removed
            _log.debug("swept %d orphaned write-ahead temp file(s)", removed)
        return removed

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside (never silently delete it) and count it."""

        with self._lock:
            self.stats.corrupt += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
            _log.debug("quarantined corrupt store entry %s (%s)", path.name, reason)
        except OSError as exc:
            # Another process may have quarantined or rewritten it first.
            with self._lock:
                self.stats.write_errors += 1
            _log.debug("could not quarantine %s (%s): %s", path.name, reason, exc)

    def quarantined_count(self) -> int:
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.glob("*.pkl"))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(
        self,
        graph_hash: str,
        query: str,
        params: object = None,
        default: object = None,
    ) -> object:
        """The stored result, or *default* on a miss.

        A corrupt entry also reads as a miss, but is quarantined and
        counted (:attr:`StoreStats.corrupt`) rather than silently eaten.
        """

        path = self.path_for(graph_hash, query, params)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return default
        except Exception as exc:
            # Unreadable/partial pickle: quarantine it and report a miss.
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            self._quarantine(path, f"unreadable: {type(exc).__name__}: {exc}")
            return default
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != STORE_SCHEMA_VERSION
            or payload.get("graph_hash") != graph_hash
            or payload.get("query") != query
        ):
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            self._quarantine(path, "payload shape/key mismatch")
            return default
        with self._lock:
            self.stats.hits += 1
        return payload["value"]

    def put(self, graph_hash: str, query: str, params: object, value: object) -> Path:
        """Durably and atomically store *value*.

        Write-ahead discipline under the shard lock: temp file in the final
        directory, flush + ``fsync``, ``os.replace`` over the entry, then a
        best-effort directory fsync -- a crash at any point leaves either
        the old entry or the new one, never a torn file.  Concurrent
        identical puts are harmless (they serialize on the shard lock).
        Write failures propagate to the caller but are counted first
        (:attr:`StoreStats.write_errors`).
        """

        path = self.path_for(graph_hash, query, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "graph_hash": graph_hash,
            "query": query,
            "value": value,
        }
        try:
            with self._shard_lock(path.parent):
                self._write_entry(path, payload)
            self._fsync_dir(path.parent)
        except BaseException as exc:
            with self._lock:
                self.stats.write_errors += 1
            _log.debug("store write failed for %s: %s", path.name, exc)
            raise
        with self._lock:
            self.stats.puts += 1
        return path

    def put_if_absent(
        self, graph_hash: str, query: str, params: object, value: object
    ) -> Tuple[object, bool]:
        """Store *value* unless a fully-written entry already exists.

        Returns ``(winning_value, stored)``: the first fully-written value
        wins, so an at-least-once producer (the distributed fleet delivers
        duplicate results by design) converges on one canonical entry --
        later writers observe the existing value and drop their own.  The
        existence check and the write happen under the same shard lock, so
        two racing writers cannot both believe they won.
        """

        path = self.path_for(graph_hash, query, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._shard_lock(path.parent):
            existing = self.get(graph_hash, query, params, default=_MISS)
            if existing is not _MISS:
                return existing, False
            payload = {
                "schema": STORE_SCHEMA_VERSION,
                "graph_hash": graph_hash,
                "query": query,
                "value": value,
            }
            try:
                self._write_entry(path, payload)
            except BaseException as exc:
                with self._lock:
                    self.stats.write_errors += 1
                _log.debug("store write failed for %s: %s", path.name, exc)
                raise
        self._fsync_dir(path.parent)
        with self._lock:
            self.stats.puts += 1
        return value, True

    def _write_entry(self, path: Path, payload: dict) -> None:
        """Write-ahead write of one entry (caller holds the shard lock)."""

        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError as unlink_exc:
                with self._lock:
                    self.stats.write_errors += 1
                _log.debug("left stale temp file %s: %s", tmp, unlink_exc)
            raise

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Best-effort directory fsync so the rename itself is durable."""

        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - some filesystems refuse
            pass
        finally:
            os.close(fd)

    def memo(self, graph_hash: str, query: str, params: object, factory):
        """``get`` falling back to ``factory()`` + ``put`` (the common shape)."""

        value = self.get(graph_hash, query, params, default=_MISS)
        if value is not _MISS:
            return value
        value = factory()
        self.put(graph_hash, query, params, value)
        return value

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    #: Glob matching entry shards only (two hex digits -- never ``corrupt/``).
    _SHARD_GLOB = "[0-9a-f][0-9a-f]/*.pkl"

    def entry_count(self) -> int:
        if not self._schema_dir.is_dir():
            return 0
        return sum(1 for _ in self._schema_dir.glob(self._SHARD_GLOB))

    def clear(self) -> int:
        """Delete every live entry of the current schema; returns how many.

        Quarantined entries survive a :meth:`clear` (they are evidence of
        corruption, removable with ``rm -rf`` once inspected).  Deletion
        failures are counted and logged, never silently swallowed.
        """

        removed = 0
        if self._schema_dir.is_dir():
            for entry in self._schema_dir.glob(self._SHARD_GLOB):
                try:
                    entry.unlink()
                    removed += 1
                except OSError as exc:
                    with self._lock:
                        self.stats.write_errors += 1
                    _log.debug("clear could not delete %s: %s", entry, exc)
        return removed


# --------------------------------------------------------------------------- #
# Ambient store (opt-in)
# --------------------------------------------------------------------------- #
#: Explicit override set by set_active_store/store_active; the sentinel
#: means "not overridden, consult the environment".
_ACTIVE_OVERRIDE: object = _MISS
_ENV_STORES: Dict[str, ResultStore] = {}
_AMBIENT_LOCK = threading.Lock()


def default_store_dir() -> Path:
    """``$REPRO_STORE_DIR``, else ``$XDG_CACHE_HOME``/``~/.cache`` + ``repro-touati04``."""

    explicit = os.environ.get(STORE_DIR_ENV, "").strip()
    if explicit:
        return Path(explicit)
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-touati04"


def active_store() -> Optional[ResultStore]:
    """The ambient :class:`ResultStore`, or ``None`` when persistence is off.

    Explicit :func:`set_active_store` / :func:`store_active` wins; otherwise
    ``REPRO_STORE_DIR=<dir>`` (or ``REPRO_STORE=1`` for the default cache
    location) switches persistence on.  Store objects are shared per
    directory so hit/miss statistics aggregate per process.
    """

    if _ACTIVE_OVERRIDE is not _MISS:
        return _ACTIVE_OVERRIDE  # type: ignore[return-value]
    explicit = os.environ.get(STORE_DIR_ENV, "").strip()
    enabled = os.environ.get(STORE_ENABLE_ENV, "").strip().lower()
    if not explicit and enabled not in ("1", "on", "true", "yes"):
        return None
    directory = str(default_store_dir())
    with _AMBIENT_LOCK:
        store = _ENV_STORES.get(directory)
        if store is None:
            store = _ENV_STORES.setdefault(directory, ResultStore(directory))
    return store


def set_active_store(store: Optional[ResultStore]) -> None:
    """Force the ambient store (``None`` disables persistence regardless of env)."""

    global _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = store


def reset_active_store() -> None:
    """Drop any explicit override; the environment decides again."""

    global _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = _MISS


@contextmanager
def store_active(store: Union[None, str, Path, ResultStore]):
    """Activate *store* (a :class:`ResultStore` or a directory) for a block."""

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    global _ACTIVE_OVERRIDE
    previous = _ACTIVE_OVERRIDE
    _ACTIVE_OVERRIDE = store
    try:
        yield store
    finally:
        _ACTIVE_OVERRIDE = previous
