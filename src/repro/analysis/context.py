"""A memoized analysis context shared across the Figure-1 pipeline stages.

The paper's flow (RS computation -> RS reduction -> scheduling -> register
allocation) repeatedly asks the same structural questions about one DDG:
topological order, the longest-path matrix ``lp``, descendants/reachability,
transitive closure, ASAP/ALAP issue times, redundant serial arcs.  The pure
functions of :mod:`repro.analysis.graphalgo` deliberately cache nothing, so
before this module existed every pass recomputed everything from scratch --
the Greedy-k heuristic alone rebuilds the potential-killer map for each of
its candidate killing functions.

:class:`AnalysisContext` wraps a :class:`~repro.core.graph.DDG` and lazily
computes-and-caches those queries.  Correctness under mutation is handled in
two complementary ways:

* every cached answer is stamped with :attr:`DDG.version`, a monotonic
  revision counter bumped by every graph mutation; a stale context discards
  its caches transparently on the next query;
* callers that extend a graph with serialization arcs (RS reduction) can
  either call :meth:`AnalysisContext.invalidate` explicitly or use
  :meth:`AnalysisContext.with_edges`, which returns a *new* context over an
  extended copy and leaves the original untouched.

:func:`context_for` attaches the shared context to the graph object itself
(under a private attribute), so independent passes querying the same graph
share one context without any API plumbing and the cache dies exactly when
the graph does -- a global registry would either leak every throwaway graph
(its values reference its keys) or need weak-value gymnastics.
:func:`caching_disabled` switches the whole mechanism off (every query falls
through to :mod:`graphalgo`), which is how
``benchmarks/bench_analysis_cache.py`` measures the seed behaviour.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple, TypeVar

from ..core.graph import DDG, Edge
from ..errors import CyclicGraphError
from . import graphalgo
from .interner import OpInterner

__all__ = ["AnalysisContext", "context_for", "caching_disabled", "caching_enabled"]

T = TypeVar("T")

#: Attribute under which the shared context rides on its DDG.
_ATTACH = "_analysis_context"
_CACHING_ENABLED = True
#: Internal miss marker (stored values may legitimately be falsy).
_MISS = object()


def _caching_on() -> bool:
    return _CACHING_ENABLED


@contextmanager
def caching_disabled():
    """Disable analysis caching (the uncached seed behaviour).

    Inside the block :func:`context_for` hands out throw-away contexts whose
    every query recomputes through :mod:`repro.analysis.graphalgo`.  The
    flag is process-global so :class:`~repro.experiments.engine.BatchEngine`
    thread workers spawned inside the block see it too (forked process
    workers inherit it at fork time); it is a measurement tool, not meant
    to be toggled concurrently from several threads.
    """

    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = False
    try:
        yield
    finally:
        _CACHING_ENABLED = previous


def caching_enabled() -> bool:
    """Whether shared memoized contexts are currently handed out."""

    return _caching_on()


def context_for(ddg: DDG) -> "AnalysisContext":
    """The shared :class:`AnalysisContext` of *ddg* (created on first use).

    The context lives on the graph object, so its cached analyses die with
    the graph.  Under :func:`caching_disabled` a fresh pass-through context
    is returned instead and nothing is retained.
    """

    if not _caching_on():
        return AnalysisContext(ddg, enabled=False)
    ctx = ddg.__dict__.get(_ATTACH)
    if ctx is None:
        # setdefault keeps the first winner under concurrent creation.
        ctx = ddg.__dict__.setdefault(_ATTACH, AnalysisContext(ddg))
    return ctx


def _adopt(ctx: "AnalysisContext") -> "AnalysisContext":
    """Attach a derived context so :func:`context_for` returns the same one."""

    if ctx.enabled and _caching_on():
        return ctx.ddg.__dict__.setdefault(_ATTACH, ctx)
    return ctx


class AnalysisContext:
    """Lazily computed, cached structural analyses of one DDG.

    Every accessor mirrors the :mod:`repro.analysis.graphalgo` function of
    the same name and is guaranteed to return an equal result (the property
    tests in ``tests/test_analysis_context.py`` enforce exactly that).  The
    returned objects are shared -- callers must treat them as read-only.
    """

    def __init__(self, ddg: DDG, enabled: bool = True) -> None:
        self._ddg = ddg
        self._enabled = enabled
        self._version = ddg.version
        self._cache: Dict[object, object] = {}
        self._lock = threading.RLock()
        self._interner: Optional[OpInterner] = None
        self._interner_version = -1

    def __getstate__(self):
        # Contexts ride on their DDG, which the process engine pickles; the
        # lock cannot cross and the caches are cheaper to rebuild than ship.
        return {"ddg": self._ddg, "enabled": self._enabled}

    def __setstate__(self, state) -> None:
        # The DDG may still be mid-restore (pickle cycle through its
        # attached context), so don't query it here; the stale sentinel
        # version makes the first memo() resynchronise instead.
        self._ddg = state["ddg"]
        self._enabled = state["enabled"]
        self._version = -1
        self._cache = {}
        self._lock = threading.RLock()
        self._interner = None
        self._interner_version = -1

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    @property
    def ddg(self) -> DDG:
        return self._ddg

    @property
    def enabled(self) -> bool:
        return self._enabled

    def invalidate(self) -> None:
        """Drop every cached analysis (needed only after in-place mutation).

        Mutations through the :class:`~repro.core.graph.DDG` API bump the
        graph's revision counter and are detected automatically; explicit
        invalidation is for callers that replace referenced state behind the
        graph's back.
        """

        with self._lock:
            self._cache.clear()
            self._version = self._ddg.version

    def op_interner(self) -> OpInterner:
        """Stable name ↔ small-int interning of the graph's operations.

        Lives *outside* the versioned analysis cache on purpose: the
        reduction pipeline mutates arcs, never the node set, and the flat
        rows and bitsets indexed by these ids must survive graph revisions.
        Ids are assigned in ``DDG.nodes()`` insertion order (which
        :meth:`DDG.copy` preserves), so independently interned copies of a
        graph -- the bottom mirror and the killed graphs derived from it --
        agree on every id.  The rare node addition (``with_bottom`` on a
        live graph) is picked up append-only, keeping existing ids stable.
        """

        interner = self._interner
        if interner is None:
            interner = self._interner = OpInterner(self._ddg.nodes())
            self._interner_version = self._ddg.version
        elif self._interner_version != self._ddg.version:
            for name in self._ddg.nodes():
                interner.intern(name)
            self._interner_version = self._ddg.version
        return interner

    def graph_hash(self) -> str:
        """Canonical content hash of the graph (see :mod:`repro.analysis.store`).

        Memoized like every other analysis, so the serialization walk is
        paid once per graph revision; it keys the persistent memo tier and
        the cross-run result store.
        """

        from .store import canonical_graph_hash

        return self.memo("graph_hash", lambda: canonical_graph_hash(self._ddg))

    def memo(
        self,
        key: object,
        factory: Callable[[], T],
        persist: Optional[Tuple[str, object]] = None,
    ) -> T:
        """Memoize an arbitrary derived analysis under *key*.

        This is how higher layers (potential killers, Greedy-k results, ...)
        attach their own per-graph caches without the analysis layer having
        to know about them.  The key must capture every input other than the
        graph itself; invalidation follows the graph revision like the
        built-in queries.

        ``persist`` opts the entry into the cross-run tier: a ``(query,
        params)`` pair naming the result in the ambient
        :class:`~repro.analysis.store.ResultStore` under the graph's
        canonical content hash.  On an in-memory miss the store is consulted
        before *factory* runs, and a computed value is written back.  With
        no ambient store (the default -- see
        :func:`repro.analysis.store.active_store`) the argument is inert,
        so callers can pass it unconditionally.  Persisted values must be
        picklable and deterministic functions of (graph content, params).
        """

        if not self._enabled:
            return factory()
        with self._lock:
            if self._version != self._ddg.version:
                self._cache.clear()
                self._version = self._ddg.version
            if key in self._cache:
                return self._cache[key]  # type: ignore[return-value]
            observed = self._version
        value = _MISS
        store = None
        if persist is not None:
            from .store import active_store

            store = active_store()
        if store is not None:
            query, params = persist
            ghash = self.graph_hash()
            value = store.get(ghash, query, params, default=_MISS)
        if value is _MISS:
            value = factory()
            if store is not None:
                store.put(ghash, query, params, value)
        with self._lock:
            # Cache only if the revision the factory observed is still
            # current -- comparing against a resynchronised self._version
            # alone would let a concurrently-mutated graph adopt a stale
            # result under its new revision.
            if self._version == observed and self._ddg.version == observed:
                self._cache.setdefault(key, value)
        return value

    # ------------------------------------------------------------------ #
    # Structural queries (mirrors of graphalgo)
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[str]:
        return self.memo("topo", self._ddg.topological_order)

    def is_acyclic(self) -> bool:
        def compute() -> bool:
            try:
                self.topological_order()
            except CyclicGraphError:
                return False
            return True

        return self.memo("acyclic", compute)

    def longest_path_matrix(self) -> Dict[str, Dict[str, float]]:
        return self.memo("lp", lambda: graphalgo.longest_path_matrix(self._ddg))

    def longest_paths_from(self, source: str) -> Mapping[str, float]:
        if "lp" in self._cache and self._version == self._ddg.version:
            return self.longest_path_matrix()[source]
        return self.memo(
            ("lp_from", source),
            lambda: graphalgo.longest_paths_from(
                self._ddg, source, order=self.topological_order()
            ),
        )

    def longest_path_to_sinks(self) -> Dict[str, float]:
        return self.memo("lp_sinks", lambda: graphalgo.longest_path_to_sinks(self._ddg))

    def critical_path_length(self) -> int:
        return self.memo("cp", lambda: graphalgo.critical_path_length(self._ddg))

    def asap_times(self) -> Dict[str, int]:
        return self.memo("asap", lambda: graphalgo.asap_times(self._ddg))

    def alap_times(self, total_time: Optional[int] = None) -> Dict[str, int]:
        return self.memo(
            ("alap", total_time), lambda: graphalgo.alap_times(self._ddg, total_time)
        )

    def worst_case_total_time(self) -> int:
        return self.memo("wctt", lambda: graphalgo.worst_case_total_time(self._ddg))

    def descendants_map(self, include_self: bool = True) -> Dict[str, Set[str]]:
        return self.memo(
            ("desc", include_self),
            lambda: graphalgo.descendants_map(self._ddg, include_self=include_self),
        )

    def reachability_matrix(self) -> Dict[str, Set[str]]:
        return self.descendants_map(include_self=False)

    def transitive_closure_pairs(self) -> Set[Tuple[str, str]]:
        def compute() -> Set[Tuple[str, str]]:
            reach = self.reachability_matrix()
            return {(u, v) for u, targets in reach.items() for v in targets}

        return self.memo("closure", compute)

    def redundant_edges(self) -> List[Edge]:
        return self.memo("redundant", lambda: graphalgo.redundant_edges(self._ddg))

    def descendants(self, node: str, include_self: bool = True) -> Set[str]:
        return self.descendants_map(include_self=include_self)[node]

    def ancestors(self, node: str, include_self: bool = True) -> Set[str]:
        return self.memo(
            ("anc", node, include_self),
            lambda: graphalgo.ancestors(self._ddg, node, include_self=include_self),
        )

    def critical_path_with_edges(self, edges) -> int:
        """Exact critical path of the graph extended with *edges*, incrementally.

        The RS-reduction heuristic scores every candidate serialization by
        the critical-path increase it would cause; materialising a graph
        copy per candidate made that its hottest loop.  Using the cached
        ASAP times, sink distances and longest-path matrix, the extension's
        critical path only needs a longest-path sweep over the tiny
        "mini-DAG" spanned by the new arcs' endpoints (base-graph segments
        become single weighted edges via ``lp``).

        The extension must keep the graph acyclic (callers check with
        ``would_remain_acyclic``).  Without caching this falls back to the
        copy-and-recompute seed path, since the matrix alone would cost more
        than it saves.
        """

        edges = list(edges)
        if not self._enabled:
            g = self._ddg.copy()
            for e in edges:
                g.add_edge(e)
            return graphalgo.critical_path_length(g)
        if not edges:
            return self.critical_path_length()

        lp = self.longest_path_matrix()
        return graphalgo.extended_critical_path(
            edges,
            self.asap_times(),
            self.longest_path_to_sinks(),
            lp.__getitem__,
            self.critical_path_length(),
        )

    def remains_acyclic_with_edges(self, edges) -> bool:
        """Whether adding *edges* keeps the graph a DAG, via cached reachability.

        Any new cycle must alternate new arcs with (possibly empty) base
        paths, so it maps to a cycle of the mini-graph over the new arcs'
        endpoints whose extra edges are the cached reachability relation.
        The RS-reduction heuristic asks this for ~|antichain|^2 candidates
        per iteration of the same graph; the uncached fallback walks the
        full graph per candidate instead (the seed behaviour).
        """

        edges = list(edges)
        if not edges:
            return True
        if not self._enabled:
            return graphalgo.would_remain_acyclic(self._ddg, edges)

        reach = self.descendants_map(include_self=False)
        return graphalgo.mini_graph_remains_acyclic(edges, reach.__getitem__)

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def bottom(self) -> "AnalysisContext":
        """The context of the bottom-normalised graph ``G ∪ {⊥}``.

        The normalised copy is built once and shared; like every other
        cached object it must be treated as read-only.  When the graph
        already carries ``⊥`` the context itself is returned.
        """

        if self._ddg.has_bottom:
            return self

        def build() -> AnalysisContext:
            return _adopt(AnalysisContext(self._ddg.with_bottom(), enabled=self._enabled))

        return self.memo("bottom", build)

    def with_edges(self, edges, name: Optional[str] = None) -> "AnalysisContext":
        """A new context over a copy of the graph extended with *edges*.

        This is the invalidation-free route for RS reduction: the original
        graph and its caches stay valid, the extension gets fresh ones.
        """

        g = self._ddg.copy(name or self._ddg.name)
        for edge in edges:
            g.add_edge(edge)
        return _adopt(AnalysisContext(g, enabled=self._enabled))
