"""Stable operation-name interning for the flat-array analysis core.

The incremental engine's hot state (longest-path rows, DV bitsets, killer
maps) is indexed by *operation*.  Keying it by name means every inner-loop
access pays a string hash and every per-value structure is a dict; interning
the names once per analysis epoch turns those into list indexing and small
``int`` keys, and gives the bitset layers (:mod:`repro.analysis.antichain`,
the candidate DV mirrors) one shared id space.

The id assignment is *deterministic*: ids are handed out in first-intern
order, and every consumer seeds the interner from ``DDG.nodes()`` (insertion
order, which :meth:`DDG.copy` preserves).  Two graphs with the same node set
in the same order -- e.g. a bottom mirror and the killed graphs copied from
it -- therefore agree on every id even when they intern independently, which
is what lets candidate killed-graph mirrors exchange flat rows with the
analyses built on the mirror.  A session's node set never changes (only
arcs are pushed/popped), so ids are stable across push/pop/reset; the
interner is append-only by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["OpInterner"]


class OpInterner:
    """Append-only name ↔ small-int interning of a graph's operations."""

    __slots__ = ("_ids", "_names")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """The id of *name*, assigning the next free id on first sight."""

        i = self._ids.get(name)
        if i is None:
            i = len(self._names)
            self._ids[name] = i
            self._names.append(name)
        return i

    def id(self, name: str) -> int:
        """The id of an already-interned name (KeyError otherwise)."""

        return self._ids[name]

    def get(self, name: str) -> Optional[int]:
        """The id of *name*, or None when it was never interned."""

        return self._ids.get(name)

    def name(self, op_id: int) -> str:
        """The name owning *op_id* (the reverse table, used for reporting)."""

        return self._names[op_id]

    def names(self) -> List[str]:
        """The reverse table ``id -> name`` as a fresh list."""

        return list(self._names)

    @property
    def size(self) -> int:
        return len(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpInterner({len(self._names)} ops)"
