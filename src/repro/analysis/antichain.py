"""Maximal antichains and minimum chain covers of a DAG (Dilworth's theorem).

The Greedy-k register-saturation heuristic reduces "how many values can be
simultaneously alive under a killing function k" to a *maximum antichain*
problem on the disjoint-value DAG ``DV_k(G)``.  By Dilworth's theorem, the
maximum antichain of a finite poset equals its minimum chain cover, which on
the transitive closure of a DAG is a minimum path cover and is computed with
a maximum bipartite matching (Hopcroft--Karp).

The antichain itself is extracted with the constructive Koenig/Dilworth
argument: take a minimum vertex cover of the bipartite "split" graph of the
strict order; the elements whose both copies avoid the cover form a maximum
antichain.

The matching runs on integer indices over plain lists rather than a general
graph library: the heuristic solves one instance per candidate killing
function, making this the hottest kernel of the whole pipeline, and the
hashing/view overhead of a generic graph structure dominated its runtime.

:class:`PersistentAntichain` is the incremental counterpart used by the
reduction loop: the DV-DAG of an unchanged killing function only *gains*
edges as serial arcs are pushed, so the transitive closure is maintained as
a running family of bitsets and the matching is kept alive across updates --
edge additions never invalidate a matching, so each update costs a handful
of augmenting-path phases instead of a full solve.  The extracted antichain
is nevertheless byte-identical to the from-scratch path: by the uniqueness
of the Dulmage--Mendelsohn decomposition, the Koenig sets ``Z_L``/``Z_R``
(alternating-path reachability from the unmatched left vertices) are the
same for *every* maximum matching of the split graph, so the repaired
matching and the from-scratch Hopcroft--Karp matching yield the same
antichain even when the matchings themselves differ.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from . import flatbuf

__all__ = [
    "maximum_antichain",
    "maximum_antichain_from_adjacency",
    "maximum_antichain_size",
    "minimum_chain_cover_size",
    "is_antichain",
    "brute_force_maximum_antichain",
    "antichain_indices_from_rows",
    "PersistentAntichain",
]


def _split_adjacency(
    elements: Sequence[Hashable], pairs: Set[Tuple[Hashable, Hashable]]
) -> List[List[int]]:
    """Adjacency of the bipartite split graph, left copy ``i`` -> right copies.

    Rows are sorted so the matching (and hence the extracted antichain) is
    deterministic for a fixed element ordering.
    """

    index = {e: i for i, e in enumerate(elements)}
    adj: List[List[int]] = [[] for _ in elements]
    for u, v in pairs:
        adj[index[u]].append(index[v])
    for row in adj:
        row.sort()
    return adj


def _hopcroft_karp(adj: Sequence[List[int]], n: int) -> Tuple[List[int], List[int]]:
    """Maximum matching of the split graph; returns (match_left, match_right).

    The layered distances are plain ints with ``n + 1`` as the unreachable
    sentinel (no float infinities), and the augmenting-path walk is an
    explicit stack instead of recursion: the split graph of a deep chain
    yields augmenting paths as long as the poset itself, which blows the
    interpreter's recursion limit around the 240-operation scale tier.
    """

    match_l = [-1] * n
    match_r = [-1] * n
    infinity = n + 1
    dist = [0] * n

    def bfs() -> bool:
        queue = deque()
        for u in range(n):
            if match_l[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = infinity
        found = False
        while queue:
            u = queue.popleft()
            next_dist = dist[u] + 1
            for v in adj[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == infinity:
                    dist[w] = next_dist
                    queue.append(w)
        return found

    def dfs(root: int) -> bool:
        # Each frame is [left vertex, edge cursor, edge descended through];
        # identical traversal order to the recursive formulation.
        frames = [[root, 0, -1]]
        while frames:
            frame = frames[-1]
            u, cursor = frame[0], frame[1]
            row = adj[u]
            descended = False
            while cursor < len(row):
                v = row[cursor]
                cursor += 1
                w = match_r[v]
                if w == -1:
                    # Free right vertex: flip the matching along the path.
                    match_l[u] = v
                    match_r[v] = u
                    for fu, _, fv in frames[:-1]:
                        match_l[fu] = fv
                        match_r[fv] = fu
                    return True
                if dist[w] == dist[u] + 1:
                    frame[1], frame[2] = cursor, v
                    frames.append([w, 0, -1])
                    descended = True
                    break
            if not descended:
                dist[u] = infinity
                frames.pop()
        return False

    while bfs():
        for u in range(n):
            if match_l[u] == -1:
                dfs(u)
    return match_l, match_r


def _koenig_free_sets(
    adj: Sequence[List[int]], match_l: List[int], match_r: List[int], n: int
) -> Tuple[Set[int], Set[int]]:
    """Koenig's construction: (Z_L, Z_R), the sets of left/right vertices
    reachable by alternating paths from the unmatched left vertices.

    The minimum vertex cover is ``(L - Z_L) | Z_R``; an element belongs to
    the maximum antichain iff its left copy is in ``Z_L`` and its right copy
    is not in ``Z_R``.
    """

    z_left: Set[int] = {u for u in range(n) if match_l[u] == -1}
    z_right: Set[int] = set()
    queue = deque(sorted(z_left))
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v in z_right:
                continue
            z_right.add(v)
            w = match_r[v]
            if w != -1 and w not in z_left:
                z_left.add(w)
                queue.append(w)
    return z_left, z_right


def maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> List[Hashable]:
    """A maximum antichain of the poset ``(elements, <)``.

    Parameters
    ----------
    elements:
        The ground set.
    order_pairs:
        The *strict* order relation given as ordered pairs ``(u, v)`` meaning
        ``u < v``.  The relation must be transitively closed by the caller
        (use :func:`repro.analysis.graphalgo.transitive_closure_pairs`);
        otherwise the result is an antichain of the given relation, not of
        its closure.

    Returns
    -------
    list
        A maximum antichain; deterministic for a fixed input ordering.
    """

    elements = list(elements)
    if not elements:
        return []
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    adj = _split_adjacency(elements, pairs)
    return maximum_antichain_from_adjacency(elements, adj)


def maximum_antichain_from_adjacency(
    elements: Sequence[Hashable],
    adj: Sequence[List[int]],
) -> List[Hashable]:
    """A maximum antichain from an already-built split-graph adjacency.

    ``adj[i]`` must list, in ascending order, the indices ``j`` with
    ``elements[i] < elements[j]`` under the transitively-closed strict
    order.  This is the same matching/Koenig pipeline as
    :func:`maximum_antichain` -- callers that already hold the order as
    per-element bitsets (the incremental saturation engine) use it to skip
    materialising the pair set; identical adjacency yields an identical
    antichain.
    """

    elements = list(elements)
    if not elements:
        return []
    n = len(elements)
    match_l, match_r = _hopcroft_karp(adj, n)
    z_left, z_right = _koenig_free_sets(adj, match_l, match_r, n)
    antichain = [
        e for i, e in enumerate(elements) if i in z_left and i not in z_right
    ]
    # Koenig guarantees |antichain| = n - |matching| = maximum antichain size
    # (Dilworth / Mirsky duality on the split graph).
    expected = n - sum(1 for v in match_l if v != -1)
    if len(antichain) != expected:  # pragma: no cover - defensive
        # Fall back to greedy completion; should not happen but we never
        # want to return a wrong size silently.
        pairs = {
            (elements[i], elements[j]) for i, row in enumerate(adj) for j in row
        }
        antichain = _greedy_antichain(elements, pairs, expected)
    return antichain


def _greedy_antichain(
    elements: Sequence[Hashable],
    pairs: Set[Tuple[Hashable, Hashable]],
    target: int,
) -> List[Hashable]:
    comparable: Dict[Hashable, Set[Hashable]] = {e: set() for e in elements}
    for u, v in pairs:
        comparable[u].add(v)
        comparable[v].add(u)
    chosen: List[Hashable] = []
    for e in sorted(elements, key=lambda x: len(comparable[x])):
        if all(e not in comparable[c] for c in chosen):
            chosen.append(e)
        if len(chosen) == target:
            break
    return chosen


def maximum_antichain_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Size of a maximum antichain (Dilworth number) of the poset."""

    return len(maximum_antichain(elements, order_pairs))


def minimum_chain_cover_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Minimum number of chains covering the poset.

    By Dilworth's theorem this equals the maximum antichain size; it is
    computed directly from the matching size so the test-suite can check the
    duality explicitly.
    """

    elements = list(elements)
    if not elements:
        return 0
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    adj = _split_adjacency(elements, pairs)
    match_l, _ = _hopcroft_karp(adj, len(elements))
    matched = sum(1 for v in match_l if v != -1)
    return len(elements) - matched


def is_antichain(
    candidate: Iterable[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> bool:
    """True when no two elements of *candidate* are comparable under the strict order."""

    members = set(candidate)
    for u, v in order_pairs:
        if u in members and v in members and u != v:
            return False
    return True


def _closure_from_rows(rows: Sequence[int]) -> Optional[List[int]]:
    """Transitive-closure bitsets of a bit relation, or None on a cycle.

    Shared by the from-scratch reference path and the persistent engine's
    seeding, so the two can never diverge.  The word-op kernel itself lives
    in :mod:`repro.analysis.flatbuf` (scalar big-int Kahn + reverse-topo
    accumulation, with a numpy word-matrix form for wide ground sets); the
    closure of a DAG is unique, so every backend returns identical bitsets.
    """

    return flatbuf.closure_from_rows(rows)


def antichain_indices_from_rows(rows: Sequence[int]) -> Optional[List[int]]:
    """Maximum-antichain indices of a relation given as successor bitsets.

    ``rows[i]`` is the bitset of direct successors of vertex ``i`` (bit ``j``
    set means ``i < j``); the relation need not be transitively closed.  The
    from-scratch pipeline is the one the incremental saturation engine ran
    per candidate per iteration before :class:`PersistentAntichain` existed:
    closure bitsets via :func:`_closure_from_rows`, ascending adjacency
    lists, then the shared matching/Koenig path.  Returns None when the
    relation has a cycle (the caller falls back to the generic antichain
    machinery).  This is the reference implementation the persistent engine
    is property-tested and benchmarked against.
    """

    n = len(rows)
    if n == 0:
        return []
    closure = _closure_from_rows(rows)
    if closure is None:
        return None
    adj: List[List[int]] = []
    for mask in closure:
        row_list: List[int] = []
        while mask:
            low = mask & -mask
            row_list.append(low.bit_length() - 1)
            mask ^= low
        adj.append(row_list)
    return maximum_antichain_from_adjacency(list(range(n)), adj)


class _Frame:
    """One undo frame of a :class:`PersistentAntichain`.

    Stores the first pre-change value of every closure row / matching entry
    touched while the frame was on top of the stack, plus the scalar state
    at push time; :meth:`PersistentAntichain.pop` replays them.
    """

    __slots__ = ("closure_log", "left_log", "right_log", "cyclic", "stale", "matched", "cached")

    def __init__(self, cyclic: bool, stale: bool, matched: int, cached) -> None:
        self.closure_log: Dict[int, int] = {}
        self.left_log: Dict[int, int] = {}
        self.right_log: Dict[int, int] = {}
        self.cyclic = cyclic
        self.stale = stale
        self.matched = matched
        self.cached = cached


class PersistentAntichain:
    """Maximum-antichain maintenance under monotone edge insertion.

    The ground set is ``range(n)``; the strict order lives as one closure
    bitset per vertex (bit ``j`` of ``closure[i]`` means ``i < j`` in the
    transitive closure).  Three facts make the maintenance cheap and exact:

    * **closure**: inserting ``u < v`` adds ``{v} | closure[v]`` to ``u``
      and to every current ancestor of ``u`` -- one bitset OR per dirty
      vertex instead of the full Kahn + reverse-topological rebuild;
    * **matching**: an edge *addition* never invalidates a matching of the
      split graph, so the previous ``match_l``/``match_r`` stay a valid
      (near-maximum) starting point and only augmenting paths from the
      still-free left vertices must be searched -- usually a single BFS
      phase that finds nothing, instead of a from-scratch Hopcroft--Karp;
    * **extraction**: the Koenig sets are the same for every maximum
      matching (Dulmage--Mendelsohn uniqueness), so the repaired matching
      extracts the *byte-identical* antichain to the from-scratch path
      (:func:`antichain_indices_from_rows`); the property tests pin that.

    :meth:`push`/:meth:`pop` bracket a group of insertions with an undo log
    (pre-change closure rows and matching entries), which is what lets the
    reduction session's candidate DV states survive its own push/pop
    protocol instead of being rebuilt after every undo.
    """

    __slots__ = ("_n", "_closure", "_match_l", "_match_r", "_matched",
                 "_stale", "cyclic", "_frames", "_cached")

    def __init__(self, n: int, rows: Optional[Sequence[int]] = None) -> None:
        self._n = n
        self._closure = [0] * n
        self._match_l = [-1] * n
        self._match_r = [-1] * n
        self._matched = 0
        self._stale = n > 0
        self.cyclic = False
        self._frames: List[_Frame] = []
        self._cached: Optional[List[int]] = None
        if rows is not None:
            self._seed(rows)

    # ------------------------------------------------------------------ #
    # Construction / mutation
    # ------------------------------------------------------------------ #
    def _seed(self, rows: Sequence[int]) -> None:
        """Bulk-build the closure from raw successor bitsets."""

        closure = _closure_from_rows(rows)
        if closure is None:
            self.cyclic = True
            return
        self._closure = closure

    def insert(self, u: int, v: int) -> bool:
        """Insert the strict-order pair ``u < v``; False when it closes a cycle.

        A cycle marks the whole state cyclic (callers fall back to their
        generic path); the flag is undone by :meth:`pop` like every other
        mutation of the bracketing frame.
        """

        if self.cyclic:
            return False
        closure = self._closure
        if u == v or (closure[v] >> u) & 1:
            self.cyclic = True
            return False
        addition = (1 << v) | closure[v]
        if not (addition & ~closure[u]):
            return True  # already implied by the running closure
        self._cached = None
        self._stale = True
        log = self._frames[-1].closure_log if self._frames else None
        for x in range(self._n):
            cx = closure[x]
            if x == u or (cx >> u) & 1:
                merged = cx | addition
                if merged != cx:
                    if log is not None and x not in log:
                        log[x] = cx
                    closure[x] = merged
        return True

    def insert_mask(self, u: int, mask: int) -> bool:
        """Insert ``u < j`` for every bit ``j`` of *mask*, ascending.

        The bulk form of :meth:`insert` for callers whose new successors
        arrive as a bitset (the flat-array DV sync/patch path); stops and
        returns False as soon as one pair closes a cycle, exactly like the
        per-pair loop it replaces (later inserts on a cyclic state are
        no-ops anyway).
        """

        while mask:
            low = mask & -mask
            if not self.insert(u, low.bit_length() - 1):
                return False
            mask ^= low
        return True

    def push(self) -> None:
        """Open an undo frame covering every subsequent insert/repair."""

        self._frames.append(
            _Frame(self.cyclic, self._stale, self._matched, self._cached)
        )

    def pop(self) -> None:
        """Revert to the state at the matching :meth:`push`."""

        frame = self._frames.pop()
        closure, match_l, match_r = self._closure, self._match_l, self._match_r
        for x, old in frame.closure_log.items():
            closure[x] = old
        for u, old in frame.left_log.items():
            match_l[u] = old
        for v, old in frame.right_log.items():
            match_r[v] = old
        self.cyclic = frame.cyclic
        self._stale = frame.stale
        self._matched = frame.matched
        self._cached = frame.cached

    def clear_frames(self) -> None:
        """Drop the undo stack, making the current state the new baseline.

        The incremental candidate engine calls this when it *patches* a DV
        state onto a new killing function: the patch invalidates the sync
        history the frames belong to (they can never be popped again), but
        the running closure and the repaired matching stay valid and warm.
        Without this, monotone patches would leave unpoppable frames
        accumulating pre-change closure rows forever.
        """

        self._frames.clear()

    # ------------------------------------------------------------------ #
    # Matching repair + extraction
    # ------------------------------------------------------------------ #
    def _set_match(self, u: int, v: int) -> None:
        if self._frames:
            frame = self._frames[-1]
            if u not in frame.left_log:
                frame.left_log[u] = self._match_l[u]
            if v not in frame.right_log:
                frame.right_log[v] = self._match_r[v]
        self._match_l[u] = v
        self._match_r[v] = u

    def _repair(self) -> None:
        """Hopcroft--Karp phases from the current matching until maximum.

        Starting from a valid matching, every augmenting path begins at a
        free left vertex, so the standard phase structure applies verbatim;
        when the matching is already maximum (the common case after a batch
        of implied or already-covered insertions) a single BFS proves it.
        """

        if not self._stale or self.cyclic:
            return
        n, closure = self._n, self._closure
        match_l, match_r = self._match_l, self._match_r
        infinity = n + 1
        dist = [0] * n
        while True:
            queue = deque()
            for u in range(n):
                if match_l[u] == -1:
                    dist[u] = 0
                    queue.append(u)
                else:
                    dist[u] = infinity
            found = False
            # Each right vertex needs distancing (or the free-vertex check)
            # at most once per phase, so track the already-visited rights in
            # one bitmask and strip them from every subsequent closure row.
            seen = 0
            while queue:
                u = queue.popleft()
                next_dist = dist[u] + 1
                mask = closure[u] & ~seen
                seen |= mask
                while mask:
                    low = mask & -mask
                    v = low.bit_length() - 1
                    mask ^= low
                    w = match_r[v]
                    if w == -1:
                        found = True
                    elif dist[w] == infinity:
                        dist[w] = next_dist
                        queue.append(w)
            if not found:
                break
            for u in range(n):
                if match_l[u] == -1:
                    self._augment(u, dist, infinity)
        self._stale = False

    def _augment(self, root: int, dist: List[int], infinity: int) -> bool:
        """One iterative augmenting-path walk (bitset edges, undo-logged flips)."""

        closure, match_r = self._closure, self._match_r
        frames = [[root, closure[root], -1]]
        while frames:
            frame = frames[-1]
            u, mask = frame[0], frame[1]
            descended = False
            while mask:
                low = mask & -mask
                v = low.bit_length() - 1
                mask ^= low
                w = match_r[v]
                if w == -1:
                    frame[1], frame[2] = mask, v
                    for fu, _, fv in frames:
                        self._set_match(fu, fv)
                    self._matched += 1
                    return True
                if dist[w] == dist[u] + 1:
                    frame[1], frame[2] = mask, v
                    frames.append([w, closure[w], -1])
                    descended = True
                    break
            if not descended:
                frame[1] = 0
                dist[u] = infinity
                frames.pop()
        return False

    def antichain_indices(self) -> Optional[List[int]]:
        """Indices of the maximum antichain, or None when the state is cyclic.

        Byte-identical to :func:`antichain_indices_from_rows` on any raw
        relation whose closure equals the running closure; cached until the
        next insert or pop actually changes the state.
        """

        if self.cyclic:
            return None
        if self._cached is None:
            self._repair()
            self._cached = self._koenig()
        # A copy: the cache is also aliased by the undo frames, so handing
        # out the internal list would let a mutating caller corrupt both.
        return list(self._cached)

    def _koenig(self) -> List[int]:
        n, closure = self._n, self._closure
        match_l, match_r = self._match_l, self._match_r
        z_left = 0
        queue = [u for u in range(n) if match_l[u] == -1]
        for u in queue:
            z_left |= 1 << u
        z_right = 0
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            fresh = closure[u] & ~z_right
            z_right |= fresh
            while fresh:
                low = fresh & -fresh
                v = low.bit_length() - 1
                fresh ^= low
                w = match_r[v]
                if w != -1 and not (z_left >> w) & 1:
                    z_left |= 1 << w
                    queue.append(w)
        free = z_left & ~z_right
        return [i for i in range(n) if (free >> i) & 1]

    # ------------------------------------------------------------------ #
    # Introspection (tests, Dilworth-duality checks)
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        return len(self._frames)

    def closure_row(self, i: int) -> int:
        return self._closure[i]

    def matching(self) -> Tuple[List[int], List[int]]:
        """A snapshot of (match_left, match_right) after repair."""

        self._repair()
        return list(self._match_l), list(self._match_r)

    def matching_size(self) -> int:
        self._repair()
        return self._matched

    def cardinality(self) -> Optional[int]:
        """``n - |maximum matching|`` (the Dilworth width), None when cyclic."""

        if self.cyclic:
            return None
        self._repair()
        return self._n - self._matched


def brute_force_maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Exponential reference implementation used by the tests (|elements| <= ~16)."""

    elements = list(elements)
    pairs = {(u, v) for (u, v) in order_pairs}
    best = 0
    n = len(elements)
    for mask in range(1 << n):
        subset = [elements[i] for i in range(n) if mask >> i & 1]
        if len(subset) <= best:
            continue
        if is_antichain(subset, pairs):
            best = len(subset)
    return best
