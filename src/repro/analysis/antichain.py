"""Maximal antichains and minimum chain covers of a DAG (Dilworth's theorem).

The Greedy-k register-saturation heuristic reduces "how many values can be
simultaneously alive under a killing function k" to a *maximum antichain*
problem on the disjoint-value DAG ``DV_k(G)``.  By Dilworth's theorem, the
maximum antichain of a finite poset equals its minimum chain cover, which on
the transitive closure of a DAG is a minimum path cover and is computed with
a maximum bipartite matching (Hopcroft--Karp).

The antichain itself is extracted with the constructive Koenig/Dilworth
argument: take a minimum vertex cover of the bipartite "split" graph of the
strict order; the elements whose both copies avoid the cover form a maximum
antichain.

The matching runs on integer indices over plain lists rather than a general
graph library: the heuristic solves one instance per candidate killing
function, making this the hottest kernel of the whole pipeline, and the
hashing/view overhead of a generic graph structure dominated its runtime.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "maximum_antichain",
    "maximum_antichain_from_adjacency",
    "maximum_antichain_size",
    "minimum_chain_cover_size",
    "is_antichain",
    "brute_force_maximum_antichain",
]

_INFINITY = float("inf")


def _split_adjacency(
    elements: Sequence[Hashable], pairs: Set[Tuple[Hashable, Hashable]]
) -> List[List[int]]:
    """Adjacency of the bipartite split graph, left copy ``i`` -> right copies.

    Rows are sorted so the matching (and hence the extracted antichain) is
    deterministic for a fixed element ordering.
    """

    index = {e: i for i, e in enumerate(elements)}
    adj: List[List[int]] = [[] for _ in elements]
    for u, v in pairs:
        adj[index[u]].append(index[v])
    for row in adj:
        row.sort()
    return adj


def _hopcroft_karp(adj: Sequence[List[int]], n: int) -> Tuple[List[int], List[int]]:
    """Maximum matching of the split graph; returns (match_left, match_right)."""

    match_l = [-1] * n
    match_r = [-1] * n
    dist = [0.0] * n

    def bfs() -> bool:
        queue = deque()
        for u in range(n):
            if match_l[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INFINITY
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == _INFINITY:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = match_r[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INFINITY
        return False

    while bfs():
        for u in range(n):
            if match_l[u] == -1:
                dfs(u)
    return match_l, match_r


def _koenig_free_sets(
    adj: Sequence[List[int]], match_l: List[int], match_r: List[int], n: int
) -> Tuple[Set[int], Set[int]]:
    """Koenig's construction: (Z_L, Z_R), the sets of left/right vertices
    reachable by alternating paths from the unmatched left vertices.

    The minimum vertex cover is ``(L - Z_L) | Z_R``; an element belongs to
    the maximum antichain iff its left copy is in ``Z_L`` and its right copy
    is not in ``Z_R``.
    """

    z_left: Set[int] = {u for u in range(n) if match_l[u] == -1}
    z_right: Set[int] = set()
    queue = deque(sorted(z_left))
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v in z_right:
                continue
            z_right.add(v)
            w = match_r[v]
            if w != -1 and w not in z_left:
                z_left.add(w)
                queue.append(w)
    return z_left, z_right


def maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> List[Hashable]:
    """A maximum antichain of the poset ``(elements, <)``.

    Parameters
    ----------
    elements:
        The ground set.
    order_pairs:
        The *strict* order relation given as ordered pairs ``(u, v)`` meaning
        ``u < v``.  The relation must be transitively closed by the caller
        (use :func:`repro.analysis.graphalgo.transitive_closure_pairs`);
        otherwise the result is an antichain of the given relation, not of
        its closure.

    Returns
    -------
    list
        A maximum antichain; deterministic for a fixed input ordering.
    """

    elements = list(elements)
    if not elements:
        return []
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    adj = _split_adjacency(elements, pairs)
    return maximum_antichain_from_adjacency(elements, adj)


def maximum_antichain_from_adjacency(
    elements: Sequence[Hashable],
    adj: Sequence[List[int]],
) -> List[Hashable]:
    """A maximum antichain from an already-built split-graph adjacency.

    ``adj[i]`` must list, in ascending order, the indices ``j`` with
    ``elements[i] < elements[j]`` under the transitively-closed strict
    order.  This is the same matching/Koenig pipeline as
    :func:`maximum_antichain` -- callers that already hold the order as
    per-element bitsets (the incremental saturation engine) use it to skip
    materialising the pair set; identical adjacency yields an identical
    antichain.
    """

    elements = list(elements)
    if not elements:
        return []
    n = len(elements)
    match_l, match_r = _hopcroft_karp(adj, n)
    z_left, z_right = _koenig_free_sets(adj, match_l, match_r, n)
    antichain = [
        e for i, e in enumerate(elements) if i in z_left and i not in z_right
    ]
    # Koenig guarantees |antichain| = n - |matching| = maximum antichain size
    # (Dilworth / Mirsky duality on the split graph).
    expected = n - sum(1 for v in match_l if v != -1)
    if len(antichain) != expected:  # pragma: no cover - defensive
        # Fall back to greedy completion; should not happen but we never
        # want to return a wrong size silently.
        pairs = {
            (elements[i], elements[j]) for i, row in enumerate(adj) for j in row
        }
        antichain = _greedy_antichain(elements, pairs, expected)
    return antichain


def _greedy_antichain(
    elements: Sequence[Hashable],
    pairs: Set[Tuple[Hashable, Hashable]],
    target: int,
) -> List[Hashable]:
    comparable: Dict[Hashable, Set[Hashable]] = {e: set() for e in elements}
    for u, v in pairs:
        comparable[u].add(v)
        comparable[v].add(u)
    chosen: List[Hashable] = []
    for e in sorted(elements, key=lambda x: len(comparable[x])):
        if all(e not in comparable[c] for c in chosen):
            chosen.append(e)
        if len(chosen) == target:
            break
    return chosen


def maximum_antichain_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Size of a maximum antichain (Dilworth number) of the poset."""

    return len(maximum_antichain(elements, order_pairs))


def minimum_chain_cover_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Minimum number of chains covering the poset.

    By Dilworth's theorem this equals the maximum antichain size; it is
    computed directly from the matching size so the test-suite can check the
    duality explicitly.
    """

    elements = list(elements)
    if not elements:
        return 0
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    adj = _split_adjacency(elements, pairs)
    match_l, _ = _hopcroft_karp(adj, len(elements))
    matched = sum(1 for v in match_l if v != -1)
    return len(elements) - matched


def is_antichain(
    candidate: Iterable[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> bool:
    """True when no two elements of *candidate* are comparable under the strict order."""

    members = set(candidate)
    for u, v in order_pairs:
        if u in members and v in members and u != v:
            return False
    return True


def brute_force_maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Exponential reference implementation used by the tests (|elements| <= ~16)."""

    elements = list(elements)
    pairs = {(u, v) for (u, v) in order_pairs}
    best = 0
    n = len(elements)
    for mask in range(1 << n):
        subset = [elements[i] for i in range(n) if mask >> i & 1]
        if len(subset) <= best:
            continue
        if is_antichain(subset, pairs):
            best = len(subset)
    return best
