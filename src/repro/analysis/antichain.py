"""Maximal antichains and minimum chain covers of a DAG (Dilworth's theorem).

The Greedy-k register-saturation heuristic reduces "how many values can be
simultaneously alive under a killing function k" to a *maximum antichain*
problem on the disjoint-value DAG ``DV_k(G)``.  By Dilworth's theorem, the
maximum antichain of a finite poset equals its minimum chain cover, which on
the transitive closure of a DAG is a minimum path cover and is computed with
a maximum bipartite matching (Hopcroft--Karp via :mod:`networkx`).

The antichain itself is extracted with the constructive Koenig/Dilworth
argument: take a minimum vertex cover of the bipartite "split" graph of the
strict order; the elements whose both copies avoid the cover form a maximum
antichain.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

import networkx as nx

__all__ = [
    "maximum_antichain",
    "maximum_antichain_size",
    "minimum_chain_cover_size",
    "is_antichain",
    "brute_force_maximum_antichain",
]


def _split_graph(order_pairs: Set[Tuple[Hashable, Hashable]], elements: Sequence[Hashable]):
    """Bipartite split graph of the strict order: left copies to right copies."""

    g = nx.Graph()
    left = {e: ("L", e) for e in elements}
    right = {e: ("R", e) for e in elements}
    g.add_nodes_from(left.values(), bipartite=0)
    g.add_nodes_from(right.values(), bipartite=1)
    for u, v in order_pairs:
        g.add_edge(left[u], right[v])
    return g, set(left.values())


def maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> List[Hashable]:
    """A maximum antichain of the poset ``(elements, <)``.

    Parameters
    ----------
    elements:
        The ground set.
    order_pairs:
        The *strict* order relation given as ordered pairs ``(u, v)`` meaning
        ``u < v``.  The relation must be transitively closed by the caller
        (use :func:`repro.analysis.graphalgo.transitive_closure_pairs`);
        otherwise the result is an antichain of the given relation, not of
        its closure.

    Returns
    -------
    list
        A maximum antichain; deterministic for a fixed input ordering.
    """

    elements = list(elements)
    if not elements:
        return []
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    graph, left_nodes = _split_graph(pairs, elements)
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left_nodes)
    # ``matching`` contains both directions; keep left->right only.
    match_lr = {u: v for u, v in matching.items() if u in left_nodes}
    cover = nx.bipartite.to_vertex_cover(graph, matching, top_nodes=left_nodes)
    antichain = [
        e for e in elements if ("L", e) not in cover and ("R", e) not in cover
    ]
    # Koenig guarantees |antichain| = n - |matching| = maximum antichain size
    # (Dilworth / Mirsky duality on the split graph).
    expected = len(elements) - len(match_lr)
    if len(antichain) != expected:  # pragma: no cover - defensive
        # Fall back to greedy completion; should not happen with networkx's
        # Koenig implementation but we never want to return a wrong size
        # silently.
        antichain = _greedy_antichain(elements, pairs, expected)
    return antichain


def _greedy_antichain(
    elements: Sequence[Hashable],
    pairs: Set[Tuple[Hashable, Hashable]],
    target: int,
) -> List[Hashable]:
    comparable: Dict[Hashable, Set[Hashable]] = {e: set() for e in elements}
    for u, v in pairs:
        comparable[u].add(v)
        comparable[v].add(u)
    chosen: List[Hashable] = []
    for e in sorted(elements, key=lambda x: len(comparable[x])):
        if all(e not in comparable[c] for c in chosen):
            chosen.append(e)
        if len(chosen) == target:
            break
    return chosen


def maximum_antichain_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Size of a maximum antichain (Dilworth number) of the poset."""

    return len(maximum_antichain(elements, order_pairs))


def minimum_chain_cover_size(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Minimum number of chains covering the poset (equals the Dilworth number... of the dual).

    By Dilworth's theorem this equals the maximum antichain size; it is
    computed directly from the matching size so the test-suite can check the
    duality explicitly.
    """

    elements = list(elements)
    if not elements:
        return 0
    pairs = {(u, v) for (u, v) in order_pairs if u != v}
    graph, left_nodes = _split_graph(pairs, elements)
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left_nodes)
    matched = sum(1 for u in matching if u in left_nodes)
    return len(elements) - matched


def is_antichain(
    candidate: Iterable[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> bool:
    """True when no two elements of *candidate* are comparable under the strict order."""

    members = set(candidate)
    for u, v in order_pairs:
        if u in members and v in members and u != v:
            return False
    return True


def brute_force_maximum_antichain(
    elements: Sequence[Hashable],
    order_pairs: Iterable[Tuple[Hashable, Hashable]],
) -> int:
    """Exponential reference implementation used by the tests (|elements| <= ~16)."""

    elements = list(elements)
    pairs = {(u, v) for (u, v) in order_pairs}
    best = 0
    n = len(elements)
    for mask in range(1 << n):
        subset = [elements[i] for i in range(n) if mask >> i & 1]
        if len(subset) <= best:
            continue
        if is_antichain(subset, pairs):
            best = len(subset)
    return best
