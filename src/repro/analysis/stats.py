"""Small statistics helpers shared by the experiment harness and the benches.

Nothing here is specific to register saturation; the helpers keep the
experiment code readable (percentage breakdowns, simple descriptive stats,
least-squares growth-exponent fits for the intLP size study).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "Summary",
    "summarize",
    "percentage_breakdown",
    "fit_power_law",
    "geometric_mean",
]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of a numeric sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
        }


def summarize(values: Iterable[float]) -> Summary:
    data: List[float] = [float(v) for v in values]
    if not data:
        return Summary(0, float("nan"), float("nan"), float("nan"), float("nan"))
    n = len(data)
    mean = math.fsum(data) / n
    var = math.fsum((v - mean) ** 2 for v in data) / n
    return Summary(
        count=n,
        mean=mean,
        minimum=min(data),
        maximum=max(data),
        std=math.sqrt(var),
    )


def percentage_breakdown(counts: Mapping[str, int]) -> Dict[str, float]:
    """Convert a category -> count mapping into category -> percentage (of the total)."""

    total = sum(counts.values())
    if total == 0:
        return {k: 0.0 for k in counts}
    return {k: 100.0 * v / total for k, v in counts.items()}


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit ``y = c * x^alpha`` by least squares in log space; returns ``(alpha, c)``.

    Zero values are dropped (they carry no information about the exponent).
    Used by the intLP size study to check the O(n^2) variable-count claim.
    """

    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive points to fit a power law")
    lx = [math.log(p[0]) for p in pairs]
    ly = [math.log(p[1]) for p in pairs]
    n = len(pairs)
    mx = math.fsum(lx) / n
    my = math.fsum(ly) / n
    sxx = math.fsum((x - mx) ** 2 for x in lx)
    if sxx == 0.0:
        raise ValueError("need at least two distinct x values to fit a power law")
    sxy = math.fsum((x - mx) * (y - my) for x, y in zip(lx, ly))
    alpha = sxy / sxx
    logc = my - alpha * mx
    return float(alpha), float(math.exp(logc))


def geometric_mean(values: Iterable[float]) -> float:
    data = [v for v in values if v > 0]
    if not data:
        return float("nan")
    return float(math.exp(sum(math.log(v) for v in data) / len(data)))
