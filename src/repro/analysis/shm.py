"""Zero-copy graph dispatch over ``multiprocessing.shared_memory``.

When a batch engine fans a suite of instances out to process workers, the
default transport pickles every :class:`~repro.core.graph.DDG` into each
task message.  For the synthetic scale suites the graphs dominate the
payload, and the same graph is often shipped several times (one per
configuration row).  This module exports each distinct graph **once** into
a named shared-memory segment and replaces the in-message graph with a
tiny proxy whose pickle is just the segment name; workers attach to the
segment and rebuild the graph from the flat buffers without a second copy
of the byte payload travelling through the task pipe.

Layout of a segment (all integers little-endian)::

    [0:8]      uint64   byte length L of the pickled metadata block
    [8:8+L]    bytes    pickle of a small dict: graph name, operation
                        names, string tables (opcodes, fu classes,
                        register types, dependence kinds) and the edge
                        count.  Strings live here; numbers live below.
    ...pad to a multiple of 8...
    ops block  int64    6 words per operation:
                        latency, delta_r, delta_w, opcode idx, fu idx,
                        defs bitmask over the register-type table
    edge block int64    5 words per edge:
                        src idx, dst idx, latency, kind idx, rtype idx
                        (rtype idx is -1 for serial arcs)

Rebuilding follows the same recipe as :meth:`DDG.copy` -- re-add the
operations, then re-add the arcs in ``edges()`` order -- so an attached
graph is indistinguishable from a copied one.

Dispatch is controlled by ``REPRO_SHM`` (``auto``/``off``); anything that
cannot be exported (exotic payloads, exhausted shared memory, platforms
without the facility) silently falls back to plain pickling and bumps the
``fallbacks`` counter so the regression tests can assert on the split.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import fields, is_dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.graph import DDG, Edge
from ..core.operation import Operation
from ..core.types import DependenceKind, canonical_type
from ..errors import ConfigurationError

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "GraphExporter",
    "counters",
    "enabled",
    "pack_item",
    "reset_counters",
]

MODES = ("auto", "off")

#: Process-wide telemetry.  ``exports`` counts segments created by this
#: process, ``attaches`` counts segments opened (typically by workers) and
#: ``fallbacks`` counts items that were dispatched via plain pickle because
#: shared-memory packing was unavailable or failed.
counters: Dict[str, int] = {"exports": 0, "attaches": 0, "fallbacks": 0}

_OP_WORDS = 6
_EDGE_WORDS = 5
_MAX_PACK_DEPTH = 4


def reset_counters() -> None:
    for key in counters:
        counters[key] = 0


def _mode() -> str:
    raw = os.environ.get("REPRO_SHM", "auto")
    spec = raw.strip().lower()
    if spec not in MODES:
        raise ConfigurationError(
            f"REPRO_SHM must be one of {'/'.join(MODES)}, got {raw!r}"
        )
    return spec


def enabled() -> bool:
    """True when shared-memory dispatch is configured and available."""

    return _mode() == "auto" and shared_memory is not None


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_graph(ddg: DDG) -> bytes:
    names: Tuple[str, ...] = tuple(op.name for op in ddg.operations())
    index = {name: i for i, name in enumerate(names)}
    edges: List[Edge] = list(ddg.edges())

    opcodes: List[str] = []
    fus: List[str] = []
    rtypes: List[str] = []
    kinds: List[str] = [k.value for k in DependenceKind]

    def intern(table: List[str], value: str) -> int:
        try:
            return table.index(value)
        except ValueError:
            table.append(value)
            return len(table) - 1

    op_words: List[int] = []
    for name in names:
        op = ddg.operation(name)
        mask = 0
        for rt in op.defs:
            mask |= 1 << intern(rtypes, rt.name)
        op_words += [
            op.latency,
            op.delta_r,
            op.delta_w,
            intern(opcodes, op.opcode),
            intern(fus, op.fu_class),
            mask,
        ]

    edge_words: List[int] = []
    for edge in edges:
        edge_words += [
            index[edge.src],
            index[edge.dst],
            edge.latency,
            kinds.index(edge.kind.value),
            intern(rtypes, edge.rtype.name) if edge.rtype is not None else -1,
        ]

    meta = pickle.dumps(
        {
            "graph": ddg.name,
            "names": names,
            "opcodes": tuple(opcodes),
            "fus": tuple(fus),
            "rtypes": tuple(rtypes),
            "kinds": tuple(kinds),
            "n_edges": len(edges),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    if len(rtypes) > 63:
        raise ValueError("too many register types for a defs bitmask")

    pad = (-(8 + len(meta))) % 8
    blob = bytearray()
    blob += len(meta).to_bytes(8, "little")
    blob += meta
    blob += b"\0" * pad
    for word in op_words + edge_words:
        blob += word.to_bytes(8, "little", signed=True)
    return bytes(blob)


def _decode_graph(buf: memoryview) -> DDG:
    meta_len = int.from_bytes(bytes(buf[0:8]), "little")
    meta = pickle.loads(bytes(buf[8 : 8 + meta_len]))
    offset = 8 + meta_len + ((-(8 + meta_len)) % 8)

    names: Tuple[str, ...] = meta["names"]
    rtypes = [canonical_type(name) for name in meta["rtypes"]]
    kinds = [DependenceKind(value) for value in meta["kinds"]]

    def word(i: int) -> int:
        start = offset + 8 * i
        return int.from_bytes(bytes(buf[start : start + 8]), "little", signed=True)

    g = DDG(meta["graph"])
    for i, name in enumerate(names):
        base = _OP_WORDS * i
        mask = word(base + 5)
        defs = frozenset(rt for bit, rt in enumerate(rtypes) if mask >> bit & 1)
        g.add_operation(
            Operation(
                name=name,
                defs=defs,
                latency=word(base),
                delta_r=word(base + 1),
                delta_w=word(base + 2),
                opcode=meta["opcodes"][word(base + 3)],
                fu_class=meta["fus"][word(base + 4)],
            )
        )

    edge_base = _OP_WORDS * len(names)
    for j in range(meta["n_edges"]):
        base = edge_base + _EDGE_WORDS * j
        rt_idx = word(base + 4)
        g.add_edge(
            Edge(
                src=names[word(base)],
                dst=names[word(base + 1)],
                latency=word(base + 2),
                kind=kinds[word(base + 3)],
                rtype=rtypes[rt_idx] if rt_idx >= 0 else None,
            )
        )
    return g


# ---------------------------------------------------------------------------
# Worker-side attach
# ---------------------------------------------------------------------------


def _tracker_pid() -> Optional[int]:
    """Pid of this process's resource-tracker daemon (None if unknown)."""

    if resource_tracker is None:
        return None
    try:
        tracker = resource_tracker._resource_tracker
        tracker.ensure_running()
        return tracker._pid
    except Exception:  # pragma: no cover - tracker internals vary
        return None


def _attach_graph(
    segment_name: str, owner_pid: int, owner_tracker: Optional[int] = None
) -> DDG:
    """Unpickle hook: open *segment_name* and rebuild the graph."""

    seg = shared_memory.SharedMemory(name=segment_name)
    counters["attaches"] += 1
    # Attaching registers the segment with the resource tracker, which
    # would unlink it when this worker exits even though the exporting
    # process still owns it.  Deregister (but not in the owner process,
    # whose registration from ``create=True`` must survive until
    # ``unlink``, and not in fork-started workers, which share the owner's
    # tracker daemon: unregistering there would strip the owner's own
    # registration and its later ``unlink`` would double-unregister).
    shares_owner_tracker = (
        owner_tracker is not None and _tracker_pid() == owner_tracker
    )
    if (
        resource_tracker is not None
        and os.getpid() != owner_pid
        and not shares_owner_tracker
    ):
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    try:
        view = memoryview(seg.buf)
        try:
            return _decode_graph(view)
        finally:
            view.release()
    finally:
        seg.close()


class _SharedDDG(DDG):
    """A DDG whose pickle is just the name of its shared-memory segment.

    The proxy shares the exported graph's ``__dict__`` so reads behave
    exactly like the original object inside the coordinator process; only
    ``__reduce__`` differs.
    """

    def __reduce__(self):  # type: ignore[override]
        return (
            _attach_graph,
            (
                self.__dict__["_shm_segment"],
                self.__dict__["_shm_owner"],
                self.__dict__["_shm_tracker"],
            ),
        )


def _make_proxy(ddg: DDG, segment_name: str) -> DDG:
    proxy = DDG.__new__(_SharedDDG)
    proxy.__dict__ = dict(ddg.__dict__)
    proxy.__dict__["_shm_segment"] = segment_name
    proxy.__dict__["_shm_owner"] = os.getpid()
    proxy.__dict__["_shm_tracker"] = _tracker_pid()
    return proxy


# ---------------------------------------------------------------------------
# Coordinator-side export
# ---------------------------------------------------------------------------


class GraphExporter:
    """Exports graphs into shared memory for the lifetime of a dispatch.

    One exporter is opened per batch run; every distinct graph object is
    exported at most once (keyed by identity) and every task item routed
    through :meth:`pack` has its graphs swapped for proxies.  ``close()``
    unlinks all segments -- call it from a ``finally`` once every worker
    result has been collected.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, Tuple[Any, DDG, DDG]] = {}
        self._closed = False

    # -- bookkeeping --------------------------------------------------

    def __enter__(self) -> "GraphExporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for seg, _ddg, _proxy in self._segments.values():
            try:
                seg.close()
            finally:
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments.clear()

    @property
    def exported(self) -> int:
        return len(self._segments)

    # -- packing ------------------------------------------------------

    def _proxy_for(self, ddg: DDG) -> DDG:
        key = id(ddg)
        entry = self._segments.get(key)
        if entry is not None:
            return entry[2]
        blob = _encode_graph(ddg)
        seg = shared_memory.SharedMemory(create=True, size=max(len(blob), 1))
        seg.buf[: len(blob)] = blob
        counters["exports"] += 1
        proxy = _make_proxy(ddg, seg.name)
        # Keep a strong reference to the source graph: identity keys must
        # stay valid for the exporter's lifetime.
        self._segments[key] = (seg, ddg, proxy)
        return proxy

    def _pack(self, item: Any, depth: int) -> Any:
        if type(item) is _SharedDDG:
            return item
        if isinstance(item, DDG):
            return self._proxy_for(item)
        if depth >= _MAX_PACK_DEPTH:
            return item
        # Containers are rebuilt only when a child actually changed, so a
        # graphless item ships as-is (and keeps its identity).
        if type(item) is tuple or type(item) is list:
            packed = [self._pack(v, depth + 1) for v in item]
            if all(new is old for new, old in zip(packed, item)):
                return item
            return tuple(packed) if type(item) is tuple else packed
        if type(item) is dict:
            packed = {k: self._pack(v, depth + 1) for k, v in item.items()}
            if all(packed[k] is item[k] for k in item):
                return item
            return packed
        if is_dataclass(item) and not isinstance(item, type):
            updates = {}
            for f in fields(item):
                old = getattr(item, f.name)
                new = self._pack(old, depth + 1)
                if new is not old:
                    updates[f.name] = new
            return replace(item, **updates) if updates else item
        return item

    def pack(self, item: Any) -> Any:
        """Return *item* with embedded graphs replaced by shm proxies.

        Never raises: any failure (or a closed exporter) counts a fallback
        and returns the original item untouched.
        """

        if self._closed:
            counters["fallbacks"] += 1
            return item
        try:
            return self._pack(item, 0)
        except Exception:
            counters["fallbacks"] += 1
            return item


def pack_item(exporter: Optional[GraphExporter], item: Any) -> Any:
    """Pack *item* through *exporter*, or pass it through when disabled."""

    if exporter is None:
        return item
    return exporter.pack(item)
