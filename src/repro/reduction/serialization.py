"""Lifetime serialization arcs (the building block of RS reduction).

Reducing the register saturation means adding serial arcs that force pairs
of value lifetimes to be disjoint in *every* schedule.  The construction is
the one used by the proof of the paper's Theorem 4.2: to impose
``LT(u^t) < LT(v^t)`` (the value ``u^t`` dies before ``v^t`` is defined),
add an arc from every consumer of ``u^t`` (except ``v`` itself when ``v``
consumes ``u^t``) towards ``v``.

The latency of those arcs depends on the target family:

* **sequential / superscalar codes** -- the paper sets the latency to 1;
* **VLIW / EPIC codes** -- the latency is ``delta_r(u') - delta_w(v)`` so
  that the read of ``u'`` happens no later than the write of ``v``.  These
  latencies may be negative (never positive cycles), which is why reduction
  for those targets must additionally check that the extended graph stays
  schedulable (and, to remain a DAG usable by a subsequent resource-bound
  scheduler, acyclic).

The module also provides the schedulability test (no positive-latency
circuit) used by both the heuristic and the optimal reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.context import context_for
from ..analysis.graphalgo import NEG_INF, is_redundant_edge
from ..analysis.graphalgo import would_remain_acyclic as graphalgo_would_remain_acyclic
from ..core.graph import DDG, Edge
from ..core.machine import ArchitectureFamily, ProcessorModel
from ..core.types import BOTTOM, DependenceKind, RegisterType, Value, canonical_type
from ..errors import ReductionError

__all__ = [
    "SerializationMode",
    "serialization_latency",
    "serialization_edges",
    "serialization_implied",
    "apply_serialization",
    "prune_redundant_serial_arcs",
    "would_remain_acyclic",
    "has_positive_circuit",
    "is_schedulable",
    "legal_serialization",
]


class SerializationMode:
    """How the latency of added serial arcs is chosen.

    The library defaults to :data:`OFFSETS` for every target because it is
    the rule consistent with the paper's left-open lifetime intervals (a
    value written at cycle ``c`` is available at ``c + 1``): a reader issued
    at the same cycle as the next definition still sees the old value, so a
    latency of ``delta_r - delta_w`` (zero on superscalar) already guarantees
    lifetime disjointness and never lengthens the witness schedule.  The
    paper's latency-1 rule for sequential superscalar object code is kept as
    :data:`SEQUENTIAL` and can be requested explicitly (it is strictly more
    conservative and may report a larger ILP loss).
    """

    #: The paper's superscalar rule: sequential semantics, latency 1.
    SEQUENTIAL = "sequential"
    #: The paper's VLIW/EPIC rule: ``delta_r(u') - delta_w(v)``.
    OFFSETS = "offsets"

    @staticmethod
    def for_machine(machine: Optional[ProcessorModel]) -> str:
        """The mode matching the paper's per-family rule (sequential for superscalar)."""

        if machine is not None and machine.family == ArchitectureFamily.SUPERSCALAR:
            return SerializationMode.SEQUENTIAL
        return SerializationMode.OFFSETS


def serialization_latency(
    ddg: DDG, reader: str, target: str, mode: str
) -> int:
    """Latency of the serial arc ``reader -> target`` for the given mode."""

    if mode == SerializationMode.SEQUENTIAL:
        return 1
    if mode == SerializationMode.OFFSETS:
        return ddg.operation(reader).delta_r - ddg.operation(target).delta_w
    raise ReductionError(f"unknown serialization mode {mode!r}")


def serialization_edges(
    ddg: DDG,
    before: Value,
    after: Value,
    mode: str = SerializationMode.OFFSETS,
    skip_existing: bool = True,
) -> List[Edge]:
    """The serial arcs imposing ``LT(before) < LT(after)`` in every schedule.

    Following the Theorem-4.2 construction: when ``after``'s operation is a
    consumer of ``before`` the arcs come from the *other* readers; otherwise
    from every reader.  A value with no reader needs no arc (it dies at
    birth).  Arcs already present with a sufficient latency are skipped when
    *skip_existing* is set.
    """

    if before.rtype != after.rtype:
        raise ReductionError("cannot serialize lifetimes of different register types")
    readers = ddg.consumers(before.node, before.rtype)
    target = after.node
    edges: List[Edge] = []
    for reader in readers:
        if reader == target:
            continue
        latency = serialization_latency(ddg, reader, target, mode)
        if skip_existing:
            existing = ddg.edges_between(reader, target)
            if any(e.latency >= latency for e in existing):
                continue
        edges.append(Edge(reader, target, latency, DependenceKind.SERIAL, None))
    return edges


def serialization_implied(
    ddg: DDG,
    before: Value,
    after: Value,
    mode: str,
    lp_lookup,
    reach_lookup=None,
) -> bool:
    """True when ``LT(before) < LT(after)`` is already forced by the graph.

    The Theorem-4.2 serialization for the pair adds one arc per reader of
    *before*; when every such arc is dominated by an existing longest path of
    at least the arc's latency, the serialization cannot remove a single
    schedule -- evaluating it is pure waste (and applying it would only add
    redundant arcs).  The reduction heuristics use this as a cheap
    reachability pre-filter over the O(|antichain|^2) candidate pairs before
    paying for :func:`legal_serialization`.

    ``lp_lookup(node)`` must return the exact longest-path row from *node*
    (e.g. ``AnalysisContext.longest_paths_from`` or
    ``ReductionSession.lp_row``).  ``reach_lookup(node)``, when given, must
    return the strict descendant set of *node*; it is used as a cheap screen
    (a reader with no path to the target can never have its arc implied)
    before the longest-path rows are touched.  Pairs with no serialization
    arc at all (no reader, or the only reader is *after* itself) report
    False and are left to :func:`legal_serialization`, which skips them for
    free.
    """

    if before.node == BOTTOM or after.node == BOTTOM:
        return False
    readers = ddg.consumers(before.node, before.rtype)
    target = after.node
    if reach_lookup is not None:
        for reader in readers:
            if reader != target and target not in reach_lookup(reader):
                return False
    found = False
    for reader in readers:
        if reader == target:
            continue
        found = True
        latency = serialization_latency(ddg, reader, target, mode)
        dist = lp_lookup(reader)[target]
        if dist == NEG_INF or dist < latency:
            return False
    return found


def apply_serialization(ddg: DDG, edges: Iterable[Edge]) -> DDG:
    """Return a copy of *ddg* with the serialization arcs added."""

    g = ddg.copy()
    for edge in edges:
        g.add_edge(edge)
    return g


def prune_redundant_serial_arcs(ddg: DDG) -> Tuple[DDG, List[Edge]]:
    """Drop the serial arcs whose constraint is implied by the transitive closure.

    The reduction passes call this before adding new serialization arcs:
    carrying redundant arcs around makes every candidate evaluation (graph
    copy + critical path) more expensive without changing the set of valid
    schedules.  Flow arcs are never dropped (they carry the register-type
    information of the lifetime analysis).

    Arcs are re-verified one by one against the current graph because two
    redundant arcs can be redundant only thanks to each other; removing them
    simultaneously could relax the scheduling constraints.  Removing arcs
    never *creates* redundancy, so a single verified pass suffices.

    Returns ``(pruned copy, removed arcs)``; the result is asserted acyclic.
    """

    g = ddg.copy()
    removed: List[Edge] = []
    for edge in context_for(ddg).redundant_edges():
        if is_redundant_edge(g, edge):
            g.remove_edge(edge)
            removed.append(edge)
    assert g.is_acyclic(), f"pruning {ddg.name!r} must keep the graph a DAG"
    return g, removed


def would_remain_acyclic(ddg: DDG, edges: Sequence[Edge]) -> bool:
    """True when adding *edges* keeps the graph a DAG.

    Delegates to :func:`repro.analysis.graphalgo.would_remain_acyclic`, the
    single implementation also backing the context's incremental check.
    """

    return graphalgo_would_remain_acyclic(ddg, edges)


def has_positive_circuit(ddg: DDG) -> bool:
    """True when the graph contains a circuit of strictly positive total latency.

    Such a circuit makes the graph unschedulable (``sigma(u) < sigma(u)``).
    Circuits of non-positive latency -- which optimal VLIW reduction may
    introduce -- do not prevent scheduling but do break the DAG property.
    The test is a Bellman-Ford-style longest-path relaxation: if distances
    still improve after ``n`` rounds there is a positive circuit.
    """

    nodes = ddg.nodes()
    dist = {v: 0.0 for v in nodes}
    edges = list(ddg.edges())
    for _ in range(len(nodes)):
        changed = False
        for e in edges:
            cand = dist[e.src] + e.latency
            if cand > dist[e.dst]:
                dist[e.dst] = cand
                changed = True
        if not changed:
            return False
    return True


def is_schedulable(ddg: DDG) -> bool:
    """A dependence graph admits a valid schedule iff it has no positive circuit."""

    return not has_positive_circuit(ddg)


def legal_serialization(
    ddg: DDG,
    before: Value,
    after: Value,
    mode: str = SerializationMode.OFFSETS,
    require_dag: bool = True,
) -> Optional[List[Edge]]:
    """The serialization arcs for ``before < after`` if legal, else ``None``.

    A serialization is illegal when it would make the graph cyclic
    (*require_dag*) or, in the relaxed mode used for exploratory purposes,
    unschedulable.  Serializing towards the bottom node is always refused:
    ``⊥`` must stay the last operation.
    """

    if after.node == BOTTOM or before.node == BOTTOM:
        return None
    edges = serialization_edges(ddg, before, after, mode)
    if not edges:
        # Nothing to add: either already implied or the value has no reader.
        return []
    if require_dag:
        if not context_for(ddg).remains_acyclic_with_edges(edges):
            return None
        return edges
    candidate = apply_serialization(ddg, edges)
    if not is_schedulable(candidate):
        return None
    return edges
