"""The value-serialization heuristic for register-saturation reduction.

This is the algorithmic heuristic the paper evaluates against its optimal
intLP in Section 5 (written ``RS*`` / ``ILP*`` there).  The idea, inherited
from the paper's reference [14]:

    while the (approximate) register saturation exceeds the budget:
        look at the current saturating values (a maximum antichain of the
        disjoint-value DAG -- the values that can all be alive together);
        among every ordered pair of saturating values, consider serializing
        one lifetime before the other (the Theorem-4.2 arc construction);
        keep only the legal candidates (the graph must stay a DAG) and apply
        the one that increases the critical path the least, breaking ties by
        the largest drop of the (approximate) saturation;
        recompute the saturation and iterate.

The heuristic adds only the arcs needed to go below ``R_t`` -- contrary to
the minimization baseline of Section 6 which constrains the graph down to
the smallest achievable register need regardless of how many registers the
machine actually has.

Two engines drive the loop:

* ``engine="incremental"`` (default) -- a :class:`~repro.reduction.session.
  ReductionSession` mutates one working DDG in place with undo and keeps
  every analysis (and the Greedy-k saturation state) warm across
  iterations, recomputing only the dirty region around the freshly added
  arcs;
* ``engine="from-scratch"`` -- the historic loop (graph copy + cold
  recomputation per iteration), kept as the reference the incremental
  engine is benchmarked and property-tested against.

Both engines share the candidate enumeration, the reachability pre-filter
(pairs whose ordering the transitive closure already forces are skipped and
counted instead of evaluated) and the tie-breaking, and produce identical
:class:`~repro.reduction.result.ReductionResult` reports up to wall time and
the ``details["engine"]`` tag.

:func:`reduce_saturation_multi_budget` amortises one engine across a whole
budget ladder: the loop's trajectory does not depend on the budget (only
its stopping point does), so the serializations for budget ``R`` are a
prefix of those for any ``R' < R`` and a descending walk reports every
budget for the price of the smallest one.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis import flatbuf, shm
from ..analysis.context import context_for
from ..analysis.store import active_store
from ..core.graph import DDG, Edge
from ..core.machine import ProcessorModel
from ..core.types import RegisterType, Value, canonical_type
from ..errors import SpillRequiredError
from ..saturation.greedy import greedy_saturation
from ..saturation.result import SaturationResult
from .result import ReductionResult
from .session import ReductionSession
from .serialization import (
    SerializationMode,
    apply_serialization,
    legal_serialization,
    prune_redundant_serial_arcs,
    serialization_implied,
)

__all__ = ["reduce_saturation_heuristic", "reduce_saturation_multi_budget"]


def _candidate_pairs(saturating: Sequence[Value]) -> Iterator[Tuple[Value, Value]]:
    """Ordered pairs of saturating values, yielded lazily (both directions).

    A generator rather than a list: the scan's worklist path answers most
    pairs from cached verdicts or skips them outright, so eagerly
    materialising the O(|antichain|^2) pair list every iteration was pure
    allocation churn.
    """

    for u in saturating:
        for v in saturating:
            if u != v:
                yield (u, v)


#: Driver verdict: the pair is already ordered by the transitive closure.
_IMPLIED = object()


class _FromScratchDriver:
    """The historic per-iteration behaviour: copy the graph, recompute everything."""

    def __init__(self, ddg: DDG, rtype: RegisterType, mode: str, prune_redundant: bool) -> None:
        self.rtype = rtype
        self.mode = mode
        current = ddg.copy(name=f"{ddg.name}+reduced")
        self.pruned: List[Edge] = []
        if prune_redundant:
            current, self.pruned = prune_redundant_serial_arcs(current)
        self.current = current

    def critical_path(self) -> int:
        return context_for(self.current).critical_path_length()

    def consider(self, before: Value, after: Value, base_cp: int):
        ctx = context_for(self.current)
        reach = ctx.descendants_map(include_self=False)
        if serialization_implied(
            self.current, before, after, self.mode,
            ctx.longest_paths_from, reach.__getitem__,
        ):
            return _IMPLIED
        edges = legal_serialization(
            self.current, before, after, mode=self.mode, require_dag=True
        )
        if not edges:
            # None (illegal) or [] (already implied by direct arcs: applying
            # it could not change the saturation and would loop forever).
            return None
        cp_after = ctx.critical_path_with_edges(edges)
        return cp_after - base_cp, len(edges), edges

    def apply(self, edges: List[Edge]) -> List[Edge]:
        self.current = apply_serialization(self.current, edges)
        assert self.current.is_acyclic(), (
            f"serializing {self.current.name!r} must keep the DDG acyclic"
        )
        return edges

    def saturation(self) -> SaturationResult:
        return greedy_saturation(self.current, self.rtype, ctx=context_for(self.current))

    def graph(self) -> DDG:
        return self.current

    def bottom_critical_path(self) -> int:
        return context_for(self.current).bottom().critical_path_length()

    def record_scan_time(self, seconds: float) -> None:
        """No-op: the historic loop keeps no stage timers."""

    def engine_details(self) -> Dict[str, object]:
        return {"engine": "from-scratch"}


class _SessionDriver:
    """The incremental engine: one in-place working graph, warm analyses."""

    def __init__(self, ddg: DDG, rtype: RegisterType, mode: str, prune_redundant: bool) -> None:
        self.session = ReductionSession(
            ddg, rtype, mode=mode, prune_redundant=prune_redundant
        )
        self.pruned = self.session.pruned
        # Module-wide counter snapshots: engine_details reports this run's
        # deltas (kernel calls are counted in flatbuf, shm attaches in the
        # worker process that unpickled the instance).
        self._kernel_calls_start = flatbuf.counters["vector_kernel_calls"]
        self._block_patches_start = flatbuf.counters["row_block_patches"]
        self._bulk_seeds_start = flatbuf.counters["mirror_bulk_seeds"]

    def critical_path(self) -> int:
        return self.session.critical_path()

    def consider(self, before: Value, after: Value, base_cp: int):
        result = self.session.consider(before, after, base_cp)
        return _IMPLIED if result is self.session.IMPLIED else result

    def scan(self, saturating: Sequence[Value], base_cp: int):
        """One whole candidate-pair scan inlined in the session (fast path).

        Same verdicts, same winner, same counters as per-pair
        :meth:`consider` calls -- the loop overhead (pair tuples, method
        dispatch, per-pair cp refresh) is hoisted instead.
        """

        return self.session.scan(saturating, base_cp)

    def apply(self, payload) -> List[Edge]:
        return self.session.apply_payload(payload)

    def saturation(self) -> SaturationResult:
        return self.session.saturation()

    def graph(self) -> DDG:
        return self.session.ddg

    def bottom_critical_path(self) -> int:
        return self.session.bottom_critical_path()

    def record_scan_time(self, seconds: float) -> None:
        self.session.record_scan_time(seconds)

    def engine_details(self) -> Dict[str, object]:
        cache = self.session.killing_set_cache
        return {
            "engine": "incremental",
            "engine_stats": {
                **self.session.stats,
                **self.session.saturation_stats,
                "killing_set_hits": cache.hits,
                "killing_set_misses": cache.misses,
                # Vectorized-core observability (execution detail like the
                # stage timings below: never part of compared report bytes).
                "vector_backend": flatbuf.backend(),
                "vector_kernel_calls": (
                    flatbuf.counters["vector_kernel_calls"]
                    - self._kernel_calls_start
                ),
                # Batched-push-path counters (backend-independent: they
                # count the path being taken, not vectorized execution).
                "row_block_patches": (
                    flatbuf.counters["row_block_patches"]
                    - self._block_patches_start
                ),
                "mirror_bulk_seeds": (
                    flatbuf.counters["mirror_bulk_seeds"]
                    - self._bulk_seeds_start
                ),
                "shm_attaches": shm.counters["attaches"],
                "shm_fallbacks": shm.counters["fallbacks"],
                # Monotonic per-stage wall-clock totals (seconds), keyed by
                # engine stage; the benchmark's bottleneck profile and the
                # CI artifact read these instead of caller-attributed
                # profiler output.
                "stage_timings": dict(self.session.stage_timings),
            },
        }


class _HeuristicLoop:
    """The shared iteration engine behind the single- and multi-budget drivers.

    Holds the cumulative trajectory state (iterations, added arcs, implied
    skips, the stuck flag); :meth:`run_to` continues the loop until the
    given budget is met.  The trajectory never reads the budget except in
    the loop condition, so driving to budget ``R`` and then continuing to
    ``R' < R`` walks exactly the iterations a from-scratch run to ``R'``
    would -- which is what makes the multi-budget warm start byte-identical
    per budget.  Once stuck, re-entry is a no-op: a stuck scan found no
    applicable pair, and re-scanning the identical state for a smaller
    budget would find none either (the scan does not depend on the budget).
    """

    def __init__(self, driver, max_iterations: int) -> None:
        self.driver = driver
        self.max_iterations = max_iterations
        self.iterations = 0
        self.stuck = False
        self.skipped_implied = 0
        self.added: List[Edge] = []
        #: Optional ``(SaturationResult) -> None`` observer fired after every
        #: applied serialization's re-saturation.  Purely observational (the
        #: kernel benchmark records DV-row traces through it, so it measures
        #: the real loop instead of a re-implementation); must not mutate.
        self.on_iteration = None

    def run_to(self, current_rs: SaturationResult, registers: int) -> SaturationResult:
        driver = self.driver
        while (
            not self.stuck
            and current_rs.rs > registers
            and self.iterations < self.max_iterations
        ):
            self.iterations += 1
            base_cp = driver.critical_path()
            best: Optional[Tuple[Tuple[int, int], object]] = None
            saturating = list(current_rs.saturating_values)
            scan_start = time.perf_counter()
            scan = getattr(driver, "scan", None)
            if scan is not None:
                # Session engine: the whole quadratic scan runs inside the
                # session with the pair keys and cp refresh hoisted; verdicts
                # and the winning (cp_increase, arc_count) order are the same
                # as the per-pair loop below.
                best, implied = scan(saturating, base_cp)
                self.skipped_implied += implied
            else:
                for before, after in _candidate_pairs(saturating):
                    # Pairs the transitive closure already orders cannot
                    # change the saturation; `consider` skips them before
                    # paying for legality + scoring, and defers arc
                    # construction to the winner.
                    considered = driver.consider(before, after, base_cp)
                    if considered is _IMPLIED:
                        self.skipped_implied += 1
                        continue
                    if considered is None:
                        continue
                    cp_increase, arc_count, payload = considered
                    key = (cp_increase, arc_count)
                    if best is None or key < best[0]:
                        best = (key, payload)
            # One stage-timer sample per iteration (a per-pair timer would
            # out-cost the worklist's reuse fast path).
            driver.record_scan_time(time.perf_counter() - scan_start)
            if best is None:
                self.stuck = True
                break
            self.added.extend(driver.apply(best[1]))
            current_rs = driver.saturation()
            if self.on_iteration is not None:
                self.on_iteration(current_rs)
        return current_rs


def _make_driver(ddg, rtype, mode, prune_redundant, engine):
    if engine == "incremental":
        return _SessionDriver(ddg, rtype, mode, prune_redundant)
    if engine == "from-scratch":
        return _FromScratchDriver(ddg, rtype, mode, prune_redundant)
    raise ValueError(
        f"unknown reduction engine {engine!r}; expected incremental/from-scratch"
    )


def _build_result(
    rtype: RegisterType,
    registers: int,
    initial: SaturationResult,
    current_rs: SaturationResult,
    driver,
    loop: _HeuristicLoop,
    original_cp: int,
    mode: str,
    wall_time: float,
    graph: Optional[DDG] = None,
) -> ReductionResult:
    return ReductionResult(
        rtype=rtype,
        target=registers,
        success=current_rs.rs <= registers,
        original_rs=initial.rs,
        achieved_rs=current_rs.rs,
        extended_ddg=graph if graph is not None else driver.graph(),
        added_edges=tuple(loop.added),
        critical_path_before=original_cp,
        critical_path_after=driver.bottom_critical_path(),
        method="value-serialization",
        optimal=False,
        wall_time=wall_time,
        details={
            "iterations": loop.iterations,
            "stuck": loop.stuck,
            "pruned_redundant_arcs": len(driver.pruned),
            "serialization_mode": mode,
            "initial_saturating_values": [str(v) for v in initial.saturating_values],
            "skipped_implied_pairs": loop.skipped_implied,
            **driver.engine_details(),
        },
    )


def reduce_saturation_heuristic(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    machine: Optional[ProcessorModel] = None,
    mode: Optional[str] = None,
    max_iterations: Optional[int] = None,
    raise_on_failure: bool = False,
    prune_redundant: bool = True,
    engine: str = "incremental",
) -> ReductionResult:
    """Reduce the register saturation of *rtype* below *registers* by value serialization.

    Parameters
    ----------
    ddg:
        The original DDG (left untouched; the result carries an extended copy).
    rtype / registers:
        Register type and budget ``R_t``.
    machine:
        Optional machine description; only used to pick the default
        serialization-latency mode (sequential for superscalar targets,
        read/write offsets otherwise).
    mode:
        Override of the serialization mode (:class:`SerializationMode`).
    max_iterations:
        Safety bound on the number of serializations; defaults to
        ``|V_{R,t}|^2`` which is far more than ever needed.
    raise_on_failure:
        Raise :class:`~repro.errors.SpillRequiredError` instead of returning
        an unsuccessful result when the budget cannot be reached.
    prune_redundant:
        Drop the serial arcs already implied by the transitive closure
        before serializing (they cannot change any schedule but slow every
        candidate evaluation down).
    engine:
        ``"incremental"`` (default, the :class:`ReductionSession`) or
        ``"from-scratch"`` (the historic copy-per-iteration loop).  Both
        return identical reports; the benchmark suite holds them to that.

    Returns
    -------
    ReductionResult
        ``success`` is True when the heuristic drove its saturation estimate
        to at most the budget.  ``achieved_rs`` is the Greedy-k estimate of
        the extended graph (a lower bound of its true saturation; the paper's
        experiments compare it against the exact value).
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    if registers < 1:
        raise ValueError("the register budget must be at least 1")
    if mode is None:
        # The offsets rule is correct for every family under the paper's
        # open-interval lifetime semantics; see SerializationMode.
        mode = SerializationMode.OFFSETS

    def run_reduction() -> ReductionResult:
        # The critical path is measured on the bottom-normalised graph so
        # that it represents a completion time (issue time of ⊥) and is
        # directly comparable with the optimal method's ILP loss.
        ctx = context_for(ddg)
        original_cp = ctx.bottom().critical_path_length()
        initial = greedy_saturation(ddg, rtype, ctx=ctx)
        iterations = max_iterations
        if iterations is None:
            iterations = max(4, len(ddg.values(rtype)) ** 2)

        driver = _make_driver(ddg, rtype, mode, prune_redundant, engine)
        loop = _HeuristicLoop(driver, iterations)
        current_rs = loop.run_to(initial, registers)
        return _build_result(
            rtype, registers, initial, current_rs, driver, loop,
            original_cp, mode, time.perf_counter() - start,
        )

    # Cross-run tier: the whole reduction is a deterministic function of the
    # graph content and these parameters, so a previous run's report can be
    # returned without replaying the loop (``raise_on_failure`` only decides
    # how an unsuccessful outcome is delivered, so it stays out of the key).
    store = active_store()
    if store is None:
        result = run_reduction()
    else:
        result = store.memo(
            context_for(ddg).graph_hash(),
            # .v2: PR 5 added counters + stage timers to engine_stats; the
            # bumped query keeps pre-PR-5 stored results (old shape) from
            # being served as current ones.
            "reduction.heuristic.v2",
            {
                "rtype": rtype.name,
                "registers": registers,
                "mode": mode,
                "max_iterations": max_iterations,
                "prune_redundant": prune_redundant,
                "engine": engine,
            },
            run_reduction,
        )
    if not result.success and raise_on_failure:
        raise SpillRequiredError(
            f"cannot reduce the {rtype.name} register saturation of {ddg.name!r} "
            f"below {registers} (reached {result.achieved_rs}); spill code is "
            f"unavoidable"
        )
    return result


def reduce_saturation_multi_budget(
    ddg: DDG,
    rtype: RegisterType | str,
    budgets,
    machine: Optional[ProcessorModel] = None,
    mode: Optional[str] = None,
    max_iterations: Optional[int] = None,
    prune_redundant: bool = True,
    engine: str = "incremental",
) -> Dict[int, ReductionResult]:
    """Reduce the saturation below several budgets with one warm session.

    A suite driver evaluating the same graph at budgets ``R = 4, 8, 16``
    historically rebuilt the whole reduction per budget, even though the
    serializations applied for budget ``R`` are a *prefix* of those applied
    for any ``R' < R`` (the loop's trajectory does not depend on the budget,
    only its stopping point does).  This driver walks the budgets in
    descending order and lets the engine continue where the previous budget
    stopped, so the total work equals one run to the *smallest* budget plus
    a graph snapshot per budget.

    Returns ``{budget: ReductionResult}``.  Every per-budget result is
    byte-identical (wall time and engine statistics aside) to a standalone
    ``reduce_saturation_heuristic(ddg, rtype, budget, ...)`` run -- the
    equivalence tests pin that.  ``wall_time`` carries the *cumulative* time
    since the ladder started, i.e. what a standalone run to that budget
    would have cost on this warm process (setup + every iteration down to
    the budget); the warm-start saving is the difference between the sum of
    the per-budget wall times and the ladder's actual elapsed time.
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    budget_list = sorted(set(budgets), reverse=True)
    if not budget_list:
        return {}
    if budget_list[-1] < 1:
        raise ValueError("every register budget must be at least 1")
    if mode is None:
        mode = SerializationMode.OFFSETS

    ctx = context_for(ddg)
    original_cp = ctx.bottom().critical_path_length()
    initial = greedy_saturation(ddg, rtype, ctx=ctx)
    if max_iterations is None:
        max_iterations = max(4, len(ddg.values(rtype)) ** 2)

    driver = _make_driver(ddg, rtype, mode, prune_redundant, engine)
    loop = _HeuristicLoop(driver, max_iterations)

    current_rs: SaturationResult = initial
    results: Dict[int, ReductionResult] = {}
    for budget in budget_list:
        current_rs = loop.run_to(current_rs, budget)
        # Snapshot the working graph: the session keeps extending it for the
        # smaller budgets, but each reported result must stand alone.
        results[budget] = _build_result(
            rtype, budget, initial, current_rs, driver, loop,
            original_cp, mode, time.perf_counter() - start,
            graph=driver.graph().copy(),
        )
    return results
