"""The value-serialization heuristic for register-saturation reduction.

This is the algorithmic heuristic the paper evaluates against its optimal
intLP in Section 5 (written ``RS*`` / ``ILP*`` there).  The idea, inherited
from the paper's reference [14]:

    while the (approximate) register saturation exceeds the budget:
        look at the current saturating values (a maximum antichain of the
        disjoint-value DAG -- the values that can all be alive together);
        among every ordered pair of saturating values, consider serializing
        one lifetime before the other (the Theorem-4.2 arc construction);
        keep only the legal candidates (the graph must stay a DAG) and apply
        the one that increases the critical path the least, breaking ties by
        the largest drop of the (approximate) saturation;
        recompute the saturation and iterate.

The heuristic adds only the arcs needed to go below ``R_t`` -- contrary to
the minimization baseline of Section 6 which constrains the graph down to
the smallest achievable register need regardless of how many registers the
machine actually has.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.context import context_for
from ..analysis.graphalgo import critical_path_length
from ..core.graph import DDG, Edge
from ..core.machine import ProcessorModel
from ..core.types import RegisterType, Value, canonical_type
from ..errors import SpillRequiredError
from ..saturation.greedy import greedy_saturation
from ..saturation.result import SaturationResult
from .result import ReductionResult
from .serialization import (
    SerializationMode,
    apply_serialization,
    legal_serialization,
    prune_redundant_serial_arcs,
)

__all__ = ["reduce_saturation_heuristic"]


def _candidate_pairs(saturating: Sequence[Value]) -> List[Tuple[Value, Value]]:
    """All ordered pairs of saturating values (both serialization directions)."""

    pairs: List[Tuple[Value, Value]] = []
    for u in saturating:
        for v in saturating:
            if u != v:
                pairs.append((u, v))
    return pairs


def _evaluate_candidate(
    ddg: DDG,
    before: Value,
    after: Value,
    mode: str,
    base_cp: int,
) -> Optional[Tuple[int, List[Edge]]]:
    """Critical-path increase of a legal serialization, or None when illegal/useless."""

    edges = legal_serialization(ddg, before, after, mode=mode, require_dag=True)
    if edges is None:
        return None
    if not edges:
        # Already implied by the graph: it cannot change the saturation,
        # applying it would loop forever.
        return None
    cp_after = context_for(ddg).critical_path_with_edges(edges)
    return cp_after - base_cp, edges


def reduce_saturation_heuristic(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    machine: Optional[ProcessorModel] = None,
    mode: Optional[str] = None,
    max_iterations: Optional[int] = None,
    raise_on_failure: bool = False,
    prune_redundant: bool = True,
) -> ReductionResult:
    """Reduce the register saturation of *rtype* below *registers* by value serialization.

    Parameters
    ----------
    ddg:
        The original DDG (left untouched; the result carries an extended copy).
    rtype / registers:
        Register type and budget ``R_t``.
    machine:
        Optional machine description; only used to pick the default
        serialization-latency mode (sequential for superscalar targets,
        read/write offsets otherwise).
    mode:
        Override of the serialization mode (:class:`SerializationMode`).
    max_iterations:
        Safety bound on the number of serializations; defaults to
        ``|V_{R,t}|^2`` which is far more than ever needed.
    raise_on_failure:
        Raise :class:`~repro.errors.SpillRequiredError` instead of returning
        an unsuccessful result when the budget cannot be reached.
    prune_redundant:
        Drop the serial arcs already implied by the transitive closure
        before serializing (they cannot change any schedule but slow every
        candidate evaluation down).

    Returns
    -------
    ReductionResult
        ``success`` is True when the heuristic drove its saturation estimate
        to at most the budget.  ``achieved_rs`` is the Greedy-k estimate of
        the extended graph (a lower bound of its true saturation; the paper's
        experiments compare it against the exact value).
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    if registers < 1:
        raise ValueError("the register budget must be at least 1")
    if mode is None:
        # The offsets rule is correct for every family under the paper's
        # open-interval lifetime semantics; see SerializationMode.
        mode = SerializationMode.OFFSETS

    # The critical path is measured on the bottom-normalised graph so that it
    # represents a completion time (issue time of ⊥) and is directly
    # comparable with the optimal method's ILP loss.
    ctx = context_for(ddg)
    original_cp = ctx.bottom().critical_path_length()
    initial = greedy_saturation(ddg, rtype, ctx=ctx)
    current = ddg.copy(name=f"{ddg.name}+reduced")
    pruned: List[Edge] = []
    if prune_redundant:
        current, pruned = prune_redundant_serial_arcs(current)
    current_rs: SaturationResult = initial
    added: List[Edge] = []
    if max_iterations is None:
        max_iterations = max(4, len(ddg.values(rtype)) ** 2)

    iterations = 0
    stuck = False
    while current_rs.rs > registers and iterations < max_iterations:
        iterations += 1
        base_cp = context_for(current).critical_path_length()
        best: Optional[Tuple[Tuple[int, int], List[Edge]]] = None
        saturating = list(current_rs.saturating_values)
        for before, after in _candidate_pairs(saturating):
            evaluated = _evaluate_candidate(current, before, after, mode, base_cp)
            if evaluated is None:
                continue
            cp_increase, edges = evaluated
            key = (cp_increase, len(edges))
            if best is None or key < best[0]:
                best = (key, edges)
        if best is None:
            stuck = True
            break
        current = apply_serialization(current, best[1])
        assert current.is_acyclic(), (
            f"serializing {ddg.name!r} must keep the DDG acyclic"
        )
        added.extend(best[1])
        current_rs = greedy_saturation(current, rtype)

    success = current_rs.rs <= registers
    if not success and raise_on_failure:
        raise SpillRequiredError(
            f"cannot reduce the {rtype.name} register saturation of {ddg.name!r} "
            f"below {registers} (reached {current_rs.rs}); spill code is unavoidable"
        )

    return ReductionResult(
        rtype=rtype,
        target=registers,
        success=success,
        original_rs=initial.rs,
        achieved_rs=current_rs.rs,
        extended_ddg=current,
        added_edges=tuple(added),
        critical_path_before=original_cp,
        critical_path_after=context_for(current).bottom().critical_path_length(),
        method="value-serialization",
        optimal=False,
        wall_time=time.perf_counter() - start,
        details={
            "iterations": iterations,
            "stuck": stuck,
            "pruned_redundant_arcs": len(pruned),
            "serialization_mode": mode,
            "initial_saturating_values": [str(v) for v in initial.saturating_values],
        },
    )
