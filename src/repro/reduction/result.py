"""Result objects of the register-saturation reduction pass."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.graph import DDG, Edge
from ..core.types import RegisterType

__all__ = ["ReductionResult"]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of reducing the register saturation below a register budget.

    Attributes
    ----------
    rtype:
        Register type whose saturation was reduced.
    target:
        The register budget ``R_t``.
    success:
        True when the extended graph's saturation is (believed) at most the
        target.  ``achieved_rs`` carries the value actually measured by the
        method that produced the result.
    original_rs / achieved_rs:
        Saturation (as measured by the producing method) before and after
        adding the serial arcs.
    extended_ddg:
        The extended graph ``G-bar = G + extra arcs``; equal to the input
        graph when nothing had to be done.
    added_edges:
        The serial arcs that were introduced.
    critical_path_before / critical_path_after:
        Critical path (longest accumulated latency) before and after; their
        difference is the *ILP loss* the paper's Section 5 reports.
    method:
        ``"value-serialization"`` for the heuristic, ``"intlp"`` for the
        optimal method, ``"minimization"`` for the Section-6 baseline.
    optimal:
        True when the method proves its solution optimal (the intLP).
    wall_time / details:
        Timing and free-form extras.
    """

    rtype: RegisterType
    target: int
    success: bool
    original_rs: int
    achieved_rs: int
    extended_ddg: DDG
    added_edges: Tuple[Edge, ...] = ()
    critical_path_before: int = 0
    critical_path_after: int = 0
    method: str = "unknown"
    optimal: bool = False
    wall_time: float = 0.0
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "added_edges", tuple(self.added_edges))
        object.__setattr__(self, "details", dict(self.details))

    @property
    def ilp_loss(self) -> int:
        """Increase of the critical path caused by the added serial arcs.

        This is the quantity written ``ILP`` (optimal) / ``ILP*`` (heuristic)
        in the paper's Section 5: the price paid, in instruction-level
        parallelism, for fitting into the register budget.
        """

        return self.critical_path_after - self.critical_path_before

    @property
    def arcs_added(self) -> int:
        return len(self.added_edges)

    @property
    def reduction_needed(self) -> bool:
        """False when the original saturation already fit the budget."""

        return self.original_rs > self.target

    def summary(self) -> Dict[str, object]:
        return {
            "rtype": self.rtype.name,
            "target": self.target,
            "success": self.success,
            "original_rs": self.original_rs,
            "achieved_rs": self.achieved_rs,
            "arcs_added": self.arcs_added,
            "ilp_loss": self.ilp_loss,
            "method": self.method,
            "optimal": self.optimal,
            "wall_time": self.wall_time,
        }
