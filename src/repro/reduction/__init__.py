"""Register-saturation reduction: adding serial arcs to fit a register budget.

Public entry points:

* :func:`reduce_saturation` -- dispatch between the value-serialization
  heuristic and the optimal intLP method of Section 4;
* :func:`reduce_saturation_heuristic` -- the heuristic the paper evaluates
  (``RS*`` / ``ILP*`` in Section 5);
* :func:`reduce_saturation_exact` -- the optimal method (register-
  constrained scheduling + Theorem-4.2 serialization);
* :func:`minimize_register_need` -- the Section-6 minimization baseline;
* :func:`solve_src` -- the underlying "scheduling under register
  constraints" solver;
* the serialization primitives shared by all of them.
"""

from __future__ import annotations

from typing import Optional

from ..core.graph import DDG
from ..core.machine import ProcessorModel
from ..core.types import RegisterType, canonical_type
from .exact_ilp import (
    build_reduction_program,
    reduce_saturation_exact,
    serialize_from_schedule,
    solve_src,
)
from .heuristic import reduce_saturation_heuristic, reduce_saturation_multi_budget
from .minimization import minimize_register_need
from .result import ReductionResult
from .session import ReductionSession
from .serialization import (
    SerializationMode,
    apply_serialization,
    has_positive_circuit,
    is_schedulable,
    legal_serialization,
    prune_redundant_serial_arcs,
    serialization_edges,
    serialization_implied,
    serialization_latency,
    would_remain_acyclic,
)

__all__ = [
    "ReductionResult",
    "ReductionSession",
    "reduce_saturation",
    "reduce_saturation_heuristic",
    "reduce_saturation_multi_budget",
    "reduce_saturation_exact",
    "minimize_register_need",
    "solve_src",
    "serialize_from_schedule",
    "build_reduction_program",
    "SerializationMode",
    "serialization_edges",
    "serialization_implied",
    "serialization_latency",
    "apply_serialization",
    "prune_redundant_serial_arcs",
    "legal_serialization",
    "would_remain_acyclic",
    "is_schedulable",
    "has_positive_circuit",
]


def reduce_saturation(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    method: str = "heuristic",
    machine: Optional[ProcessorModel] = None,
    time_limit: Optional[float] = None,
) -> ReductionResult:
    """Reduce the register saturation of *rtype* below *registers*.

    ``method`` is ``"heuristic"`` (value serialization, default) or
    ``"exact"`` (the Section-4 intLP).  Both return a
    :class:`ReductionResult`; the exact method raises
    :class:`~repro.errors.SpillRequiredError` when the budget is
    unreachable, while the heuristic reports ``success=False``.
    """

    rtype = canonical_type(rtype)
    if method == "heuristic":
        return reduce_saturation_heuristic(ddg, rtype, registers, machine=machine)
    if method == "exact":
        return reduce_saturation_exact(
            ddg, rtype, registers, machine=machine, time_limit=time_limit
        )
    raise ValueError(f"unknown reduction method {method!r}; expected heuristic/exact")
