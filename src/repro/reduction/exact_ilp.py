"""Optimal register-saturation reduction by integer programming (paper Section 4).

The proof of Theorem 4.2 ("ReduceRS is NP-hard") is constructive and gives
the optimal method implemented here, in two steps:

1. **Register-constrained scheduling (SRC).**  Reuse the interference core
   of the Section-3 model (scheduling variables, killing dates, interference
   binaries) and replace the independent-set block by register-assignment
   binaries ``x^i_{u^t}`` (value ``u^t`` lives in register ``i``): every
   value sits in exactly one register and interfering values may not share
   one.  The objective minimises the total schedule time ``sigma_⊥``.  This
   is exactly the paper's intLP; it is also exposed on its own as
   :func:`solve_src` because the SRC problem (find a schedule that fits in
   ``R_t`` registers within a deadline) is useful in its own right.

2. **Lifetime serialization.**  From the optimal schedule ``sigma``, add the
   Theorem-4.2 serial arcs for every ordered pair of values whose lifetimes
   are disjoint under ``sigma`` (``LT(u) < LT(v)``).  The resulting extended
   graph has, for *every* schedule, the same lifetime precedences as
   ``sigma`` had, hence a register saturation of exactly ``RN_sigma <= R_t``
   while its critical path never exceeds ``sigma``'s makespan.

Deviations from the paper, both documented in DESIGN.md:

* the paper suggests decrementing ``R_t`` and re-solving when the intLP is
  infeasible; with this interference model feasibility is monotone in the
  number of registers, so an infeasible budget simply means spilling is
  unavoidable and :class:`~repro.errors.SpillRequiredError` is raised;
* for VLIW/EPIC offsets the paper adds O(n^3) constraints to forbid the
  non-positive circuits that the added arcs could create; this
  implementation instead skips, at arc-insertion time, any arc that would
  close a circuit (the skipped arcs are reported in ``details``) and
  verifies the final saturation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.context import context_for
from ..analysis.graphalgo import critical_path_length
from ..analysis.store import active_store
from ..core.graph import DDG, Edge
from ..core.lifetime import register_need, value_lifetimes
from ..core.machine import ProcessorModel
from ..core.schedule import Schedule
from ..core.types import BOTTOM, RegisterType, Value, canonical_type
from ..errors import SolverError, SpillRequiredError
from ..ilp import IntegerProgram, LinExpr, Solution, SolveStatus, solve
from ..ilp.registry import backend_request_token
from ..saturation.exact_ilp import RSModelInfo, build_interference_core
from ..saturation.greedy import greedy_saturation
from ..saturation.incremental import IncrementalAnalysis
from .result import ReductionResult
from .serialization import (
    SerializationMode,
    apply_serialization,
    prune_redundant_serial_arcs,
    serialization_edges,
    would_remain_acyclic,
)

__all__ = [
    "build_reduction_program",
    "solve_src",
    "serialize_from_schedule",
    "reduce_saturation_exact",
]


def build_reduction_program(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    horizon: Optional[int] = None,
    deadline: Optional[int] = None,
    prune: bool = True,
) -> Tuple[IntegerProgram, RSModelInfo]:
    """Build the Section-4 intLP: schedule within *registers* registers, minimise time.

    ``deadline`` optionally bounds the total schedule time (the ``P`` of the
    SRC problem); without it only the worst-case horizon ``T`` applies.
    """

    rtype = canonical_type(rtype)
    if registers < 1:
        raise ValueError("the register budget must be at least 1")
    program, info = build_interference_core(
        ddg,
        rtype,
        horizon=horizon,
        prune_redundant_arcs=prune,
        prune_noninterfering_pairs=prune,
        name="reduce",
    )
    g = info.ddg  # bottom-normalised copy

    # Register assignment binaries x^i_u : value u is stored in register i.
    assign: Dict[Tuple[Value, int], LinExpr] = {}
    for value in info.values:
        row = []
        for i in range(registers):
            var = program.add_binary(f"reg[{value.node},{i}]")
            assign[(value, i)] = var
            row.append(var)
        program.add_eq(LinExpr.sum(row), 1.0, label=f"one_reg[{value.node}]")

    # Interfering values cannot share a register:  s_{u,v} = 1  =>
    # x^i_u + x^i_v <= 1 for every register i.
    for (u, v), s_name in info.interference_names.items():
        s = LinExpr.term(s_name)
        for i in range(registers):
            program.add_le(
                assign[(u, i)] + assign[(v, i)] + s,
                2.0,
                label=f"conflict[{u.node},{v.node},{i}]",
            )

    sigma_bottom = LinExpr.term(info.sigma(BOTTOM))
    if deadline is not None:
        program.add_le(sigma_bottom, float(deadline), label="deadline")
    program.minimize(sigma_bottom)
    return program, info


def solve_src(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    deadline: Optional[int] = None,
    horizon: Optional[int] = None,
    backend: str = "auto",
    time_limit: Optional[float] = None,
) -> Tuple[Optional[Schedule], Solution, RSModelInfo]:
    """Solve the SRC problem: a schedule needing at most *registers* registers.

    ``backend`` is a registered solver backend or ``"auto"`` (registry
    policy).  Returns ``(schedule, raw solution, model info)``; the schedule
    is ``None`` when the instance is infeasible (no schedule fits the budget
    within the deadline/horizon).
    """

    program, info = build_reduction_program(
        ddg, rtype, registers, horizon=horizon, deadline=deadline
    )
    solution = solve(program, backend=backend, time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        return None, solution, info
    if solution.status is not SolveStatus.OPTIMAL:
        raise SolverError(
            f"SRC intLP for {ddg.name!r} not solved to optimality "
            f"(status={solution.status.value}, backend={solution.backend})"
        )
    return info.schedule_from(solution), solution, info


def serialize_from_schedule(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
    mode: str = SerializationMode.OFFSETS,
    prune_redundant: bool = False,
) -> Tuple[DDG, List[Edge], List[Tuple[Value, Value]]]:
    """Add the Theorem-4.2 arcs that freeze the lifetime precedences of *schedule*.

    For every ordered pair of values with ``LT(u) < LT(v)`` under *schedule*
    (the death of ``u`` happens no later than the birth of ``v``), serial
    arcs from the readers of ``u`` towards ``v`` are inserted.  Arcs that
    would close a circuit are skipped and the corresponding pairs returned,
    so the caller can verify/report; with arcs derived from an actual
    schedule this only happens in exotic offset configurations.

    With *prune_redundant* (off by default for this low-level primitive, on
    in the reduction passes) the serial arcs of *ddg* that are already
    implied by its transitive closure are dropped first; pruning preserves
    the set of valid schedules, so the witness stays a witness.

    Returns ``(extended graph, added arcs, skipped pairs)``.
    """

    rtype = canonical_type(rtype)
    g = ddg.with_bottom() if not ddg.has_bottom else ddg.copy()
    intervals = {iv.value: iv for iv in value_lifetimes(g, schedule, rtype)}
    values = sorted(intervals, key=lambda v: (intervals[v].birth, v.node))

    extended = g.copy(name=f"{ddg.name}+serialized")
    if prune_redundant:
        extended, _ = prune_redundant_serial_arcs(extended)
        extended.name = f"{ddg.name}+serialized"
    # One in-place working graph with warm reachability instead of a copy
    # plus a full-graph cycle walk per applied pair (this O(|values|^2) loop
    # dominated the minimization baseline).
    analysis = IncrementalAnalysis(extended)
    added: List[Edge] = []
    skipped: List[Tuple[Value, Value]] = []
    for u in values:
        for v in values:
            if u == v:
                continue
            # LT(u) < LT(v): u dies no later than v is born.
            if intervals[u].death <= intervals[v].birth:
                edges = serialization_edges(extended, u, v, mode=mode, skip_existing=True)
                if not edges:
                    continue
                if not analysis.remains_acyclic_with_edges(edges):
                    skipped.append((u, v))
                    continue
                analysis.push(edges)
                added.extend(edges)
    assert extended.is_acyclic(), (
        f"serializing {ddg.name!r} must keep the DDG acyclic"
    )
    return extended, added, skipped


def reduce_saturation_exact(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    machine: Optional[ProcessorModel] = None,
    mode: Optional[str] = None,
    deadline: Optional[int] = None,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    verify: bool = False,
    prune_redundant: bool = True,
) -> ReductionResult:
    """Optimal register-saturation reduction (Section 4 of the paper).

    Finds a schedule with register need at most *registers* and minimal total
    time, then freezes its lifetime precedences with serial arcs.  The
    resulting extended graph has register saturation ``RN_sigma <= registers``
    and the smallest critical-path increase achievable for this budget.
    ``backend`` routes the SRC intLP through the solver registry; the chosen
    backend and its solve statistics land in ``details``.  With the ambient
    result store active, a previously computed reduction for the same graph
    content and parameters is returned without re-solving.

    Raises :class:`~repro.errors.SpillRequiredError` when no schedule fits
    the budget (spilling unavoidable).  With ``verify=True`` the saturation
    of the extended graph is recomputed exactly (a second intLP) and reported
    in ``details['verified_rs']``.
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    if mode is None:
        # The offsets rule keeps the witness schedule valid on the extended
        # graph, so the measured ILP loss never exceeds the optimal makespan.
        mode = SerializationMode.OFFSETS

    store = active_store()
    if store is not None:
        # A raising solve (spill required, no proof within the limit)
        # stores nothing.
        return store.memo(
            context_for(ddg).graph_hash(),
            "reduction.exact",
            {
                "rtype": rtype.name,
                "registers": registers,
                "mode": mode,
                "deadline": deadline,
                "backend": backend_request_token(backend),
                "time_limit": time_limit,
                "verify": verify,
                "prune_redundant": prune_redundant,
            },
            lambda: _reduce_saturation_exact_uncached(
                ddg, rtype, registers, mode, deadline, backend, time_limit,
                verify, prune_redundant, start,
            ),
        )
    return _reduce_saturation_exact_uncached(
        ddg, rtype, registers, mode, deadline, backend, time_limit,
        verify, prune_redundant, start,
    )


def _reduce_saturation_exact_uncached(
    ddg: DDG,
    rtype: RegisterType,
    registers: int,
    mode: str,
    deadline: Optional[int],
    backend: str,
    time_limit: Optional[float],
    verify: bool,
    prune_redundant: bool,
    start: float,
) -> ReductionResult:
    # Critical paths are measured on bottom-normalised graphs (completion
    # time), the same convention as the heuristic so ILP losses compare.
    original_cp = context_for(ddg).bottom().critical_path_length()
    baseline = greedy_saturation(ddg, rtype)

    schedule, solution, info = solve_src(
        ddg,
        rtype,
        registers,
        deadline=deadline,
        backend=backend,
        time_limit=time_limit,
    )
    if schedule is None:
        raise SpillRequiredError(
            f"no schedule of {ddg.name!r} fits in {registers} {rtype.name} registers"
            + (f" within deadline {deadline}" if deadline is not None else "")
            + "; spilling is unavoidable"
        )

    achieved_need = register_need(info.ddg, schedule, rtype)
    extended, added, skipped = serialize_from_schedule(
        info.ddg, schedule, rtype, mode=mode, prune_redundant=prune_redundant
    )
    cp_after = critical_path_length(extended)

    details: Dict[str, object] = {
        "model": {"variables": solution.values and len(solution.values) or 0},
        "solver": solution.solver,
        "solver_time": solution.wall_time,
        "backend": solution.backend,
        "solve": solution.stats(),
        "schedule_makespan": schedule.makespan,
        "witness_register_need": achieved_need,
        "skipped_cyclic_pairs": [(str(u), str(v)) for u, v in skipped],
        "serialization_mode": mode,
    }
    if verify:
        from ..saturation.exact_ilp import exact_saturation

        verified = exact_saturation(extended.without_bottom(), rtype, time_limit=time_limit)
        details["verified_rs"] = verified.rs

    success = achieved_need <= registers and not skipped
    return ReductionResult(
        rtype=rtype,
        target=registers,
        success=success,
        original_rs=baseline.rs,
        achieved_rs=achieved_need,
        extended_ddg=extended,
        added_edges=tuple(added),
        critical_path_before=original_cp,
        critical_path_after=cp_after,
        method="intlp",
        optimal=True,
        wall_time=time.perf_counter() - start,
        details=details,
    )
