"""The incremental reduction session: one working DDG, mutated with undo.

``reduce_saturation_heuristic`` historically rebuilt the world on every
iteration: ``ddg.copy()`` per applied serialization, a cold
:class:`~repro.analysis.context.AnalysisContext` per copy, and a from-scratch
``greedy_saturation`` -- even though consecutive iterations differ by the two
or three serial arcs of one value-serialization.  :class:`ReductionSession`
replaces that with a single working graph mutated in place:

* :meth:`push` applies serialization arcs to the working graph *and* its
  bottom-normalised mirror (``DDG.version`` is bumped by the mutation, so
  stale context caches can never leak), recording an undo frame;
* :meth:`pop` restores the exact prior graph and analysis state;
* between pushes, the structural analyses (descendant maps, longest-path
  rows) and the saturation state (potential killers, killing-set choices,
  killers' descendant values) are patched incrementally -- only the dirty
  region around the new arcs' endpoints is recomputed (see
  :mod:`repro.saturation.incremental` for the monotonicity argument);
* candidate serializations are scored without any graph copy through the
  shared mini-DAG helpers of :mod:`repro.analysis.graphalgo`, and a cheap
  reachability pre-filter (:meth:`implied`) rejects pairs whose ordering the
  transitive closure already forces before ``legal_serialization`` is paid.

The session produces results identical to the from-scratch loop (pinned by
``tests/test_reduction_incremental.py`` and asserted with byte-compared
reports by ``benchmarks/bench_reduction_incremental.py``); it is purely a
performance device.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.context import context_for
from ..core.graph import DDG, Edge
from ..core.types import BOTTOM, DependenceKind, RegisterType, Value, canonical_type
from ..errors import ReductionError
from ..saturation.incremental import IncrementalAnalysis, IncrementalSaturation
from ..saturation.result import SaturationResult
from .serialization import (
    SerializationMode,
    prune_redundant_serial_arcs,
    serialization_latency,
)

__all__ = ["ReductionSession"]


class _KillingSetCache(dict):
    """A dict counting its hits/misses (reported in the session stats)."""

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is default:
            self.misses += 1
        else:
            self.hits += 1
        return value


class ReductionSession:
    """Incremental engine behind the value-serialization reduction loop.

    Parameters
    ----------
    ddg:
        The original graph; it is never touched.  The session works on a
        copy named ``<name>+reduced`` exactly like the historic loop did.
    rtype:
        Register type whose saturation is being reduced.
    mode:
        Serialization-latency mode (:class:`SerializationMode`), OFFSETS by
        default.
    prune_redundant:
        Drop closure-implied serial arcs from the working copy up front
        (mirrors the historic behaviour; the dropped arcs are in
        :attr:`pruned`).
    """

    def __init__(
        self,
        ddg: DDG,
        rtype: RegisterType | str,
        mode: str = SerializationMode.OFFSETS,
        prune_redundant: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.rtype = canonical_type(rtype)
        self.mode = mode
        working = ddg.copy(name or f"{ddg.name}+reduced")
        self.pruned: List[Edge] = []
        if prune_redundant:
            working, self.pruned = prune_redundant_serial_arcs(working)
        self._analysis = IncrementalAnalysis(working)
        self._saturation = IncrementalSaturation(self._analysis, self.rtype)
        self._saturation.killing_set_cache = _KillingSetCache()
        # (before, after) -> ((reader, latency), ...): the static part of the
        # Theorem-4.2 serialization.  Readers are flow consumers and the
        # latencies depend only on the operations, neither of which a serial
        # arc can change, so this survives every push/pop.
        self._proto_edges_cache: Dict[Tuple[Value, Value], Tuple[Tuple[str, int], ...]] = {}
        # (before, after) -> last iteration's `consider` verdict.  A verdict
        # depends only on the pair's proto readers, the target's descendant
        # set / issue-time window and the readers' ASAP times; a push dirties
        # exactly {dst} ∪ desc(dst) ∪ anc(src) per applied arc, so verdicts
        # whose nodes avoid that region are re-used verbatim (the critical
        # path itself is re-read fresh -- see `consider`).  The cache is
        # framed copy-on-write per push so `pop` restores it exactly.
        self._pair_verdicts: Dict[Tuple[Value, Value], Tuple] = {}
        self._verdict_frames: List[Dict[Tuple[Value, Value], Tuple]] = []
        self._cp_state_version = -1
        self._asap: Dict[str, int] = {}
        self._to_sinks: Dict[str, float] = {}
        self._cp = 0
        self.stats: Dict[str, int] = {
            "pushes": 0,
            "pops": 0,
            "implied_skipped": 0,
            "evaluated_candidates": 0,
            "pair_verdicts_reused": 0,
        }
        #: Monotonic per-stage accumulator for the candidate-pair scan; the
        #: saturation-side stages live on `IncrementalSaturation.timings`.
        self.timings: Dict[str, float] = {"pair_scan": 0.0}

    # ------------------------------------------------------------------ #
    # Graph access
    # ------------------------------------------------------------------ #
    @property
    def ddg(self) -> DDG:
        """The working graph (original + pruning + pushed serializations)."""

        return self._analysis.ddg

    @property
    def depth(self) -> int:
        """Number of push frames currently undoable."""

        return self._analysis.depth

    def critical_path(self) -> int:
        return context_for(self.ddg).critical_path_length()

    def bottom_critical_path(self) -> int:
        """Critical path of the bottom-normalised working graph."""

        return context_for(self._saturation.mirror_ddg).critical_path_length()

    def lp_row(self, src: str) -> Dict[str, float]:
        """Warm exact longest-path row from *src* in the working graph."""

        return self._analysis.lp_row(src)

    # ------------------------------------------------------------------ #
    # Candidate evaluation (no copies)
    # ------------------------------------------------------------------ #
    def _proto_edges(self, before: Value, after: Value) -> Tuple[Tuple[str, int], ...]:
        """The static (reader, latency) skeleton of the pair's serialization."""

        key = (before, after)
        proto = self._proto_edges_cache.get(key)
        if proto is None:
            if before.rtype != after.rtype:
                raise ReductionError(
                    "cannot serialize lifetimes of different register types"
                )
            target = after.node
            proto = tuple(
                (reader, serialization_latency(self.ddg, reader, target, self.mode))
                for reader in self.ddg.consumers(before.node, before.rtype)
                if reader != target
            )
            self._proto_edges_cache[key] = proto
        return proto

    def _kept_arcs(
        self, proto: Tuple[Tuple[str, int], ...], target: str
    ) -> Optional[List[Tuple[str, int]]]:
        """The pair's arcs after the dominated-arc filter, or None on a cycle.

        Single implementation behind :meth:`legal_serialization` and
        :meth:`consider` so the two can never drift apart: an arc dominated
        by an existing equal-or-stronger arc is dropped (the
        ``skip_existing`` rule of :func:`serialization_edges`), and because
        every arc ends at *target*, a new cycle can only be a base path from
        the target back to a reader -- a membership test on the warm
        descendant set.
        """

        g = self.ddg
        reach_target = self._analysis.descendants_excl()[target]
        kept: List[Tuple[str, int]] = []
        for reader, latency in proto:
            best = g.best_latency_between(reader, target)
            if best is not None and best >= latency:
                continue
            if reader in reach_target:
                return None
            kept.append((reader, latency))
        return kept

    def _refresh_cp_state(self) -> None:
        if self._cp_state_version != self.ddg.version:
            ctx = context_for(self.ddg)
            self._asap = ctx.asap_times()
            self._to_sinks = ctx.longest_path_to_sinks()
            self._cp = ctx.critical_path_length()
            self._cp_state_version = self.ddg.version

    def legal_serialization(self, before: Value, after: Value) -> Optional[List[Edge]]:
        """Same contract as :func:`repro.reduction.serialization.legal_serialization`,
        answered from the warm reachability state (no graph walk per pair).

        Every serialization arc for a pair ends at ``after``'s operation, so
        a new cycle can only be a base path from the target back to one of
        the readers -- a handful of set-membership tests on the warm
        descendant map instead of a mini-graph search.
        """

        if after.node == BOTTOM or before.node == BOTTOM:
            return None
        proto = self._proto_edges(before, after)
        if not proto:
            return []
        kept = self._kept_arcs(proto, after.node)
        if kept is None:
            return None
        return [
            Edge(reader, after.node, latency, DependenceKind.SERIAL, None)
            for reader, latency in kept
        ]

    #: `consider` outcome: the pair's ordering is already forced.
    IMPLIED = object()

    #: Cached-verdict tags (see `_pair_verdicts`).
    _V_IMPLIED = ("implied",)
    _V_NONE = ("none",)

    def consider(
        self, before: Value, after: Value, base_cp: int
    ) -> object:
        """Evaluate one ordered pair in a single pass.

        Returns :data:`IMPLIED` (pair already ordered by the closure), None
        (illegal or nothing to add), or ``(cp_increase, arc_count, payload)``
        where *payload* materialises into the arcs via :meth:`apply_payload`.
        Arcs are not constructed during the scan -- with O(|antichain|^2)
        pairs per iteration and one winner, the allocation churn dominated
        the loop.

        The scan runs off a dirty-pair worklist: verdicts from the previous
        iteration whose endpoints were untouched by the applied
        serialization are returned verbatim (counted in
        ``pair_verdicts_reused``).  A cached candidate verdict stores the
        pair-local quantity ``X = max(asap[target], asap[reader]+latency)
        + to_sinks[target]`` rather than the cp increase, so the global
        critical path -- which any push may move -- is re-read fresh on
        every reuse; the arithmetic is bit-for-bit the fresh path's.

        The ``pair_scan`` stage timer is fed per *iteration* by the loop
        driver (:meth:`record_scan_time`), not here: with O(|antichain|^2)
        calls per iteration a per-call timer would tax the reuse fast path
        with more clock reads than remaining work.
        """

        key = (before, after)
        verdict = self._pair_verdicts.get(key)
        if verdict is not None:
            self.stats["pair_verdicts_reused"] += 1
        else:
            verdict = self._consider_fresh(before, after)
            self._pair_verdicts[key] = verdict
        if verdict is self._V_IMPLIED:
            self.stats["implied_skipped"] += 1
            return self.IMPLIED
        if verdict is self._V_NONE:
            return None
        _, x, arc_count, payload = verdict
        self._refresh_cp_state()
        return int(max(self._cp, x)) - base_cp, arc_count, payload

    def record_scan_time(self, seconds: float) -> None:
        """Accumulate one iteration's candidate-scan wall clock (stage timer)."""

        self.timings["pair_scan"] += seconds

    def _consider_fresh(self, before: Value, after: Value) -> Tuple:
        """Evaluate one pair cold; returns the cacheable verdict tuple.

        Because all of the pair's arcs end at the same target, the extended
        critical path closed-forms to
        ``max(cp, max(asap[target], asap[reader] + latency) + to_sinks[target])``
        -- no longest-path matrix, no graph copy.
        """

        if after.node == BOTTOM or before.node == BOTTOM:
            return self._V_NONE
        proto = self._proto_edges(before, after)
        if not proto:
            return self._V_NONE
        target = after.node
        desc = self._analysis.descendants_excl()
        # The reachability screen + exact longest-path confirmation of the
        # `implied` pre-filter, inlined.
        for reader, _latency in proto:
            if target not in desc[reader]:
                break
        else:
            for reader, latency in proto:
                if self.lp_row(reader)[target] < latency:
                    break
            else:
                return self._V_IMPLIED

        kept = self._kept_arcs(proto, target)
        if not kept:
            # A cycle, or everything dominated by existing arcs.
            return self._V_NONE
        self.stats["evaluated_candidates"] += 1
        self._refresh_cp_state()
        asap = self._asap
        best_target = asap[target]
        for reader, latency in kept:
            cand = asap[reader] + latency
            if cand > best_target:
                best_target = cand
        x = best_target + self._to_sinks[target]
        return ("cand", x, len(kept), (target, kept))

    def apply_payload(self, payload) -> List[Edge]:
        """Materialise and push the arcs of a winning :meth:`consider` payload."""

        target, kept = payload
        edges = [
            Edge(reader, target, latency, DependenceKind.SERIAL, None)
            for reader, latency in kept
        ]
        self.push(edges)
        return edges

    # ------------------------------------------------------------------ #
    # Mutation with undo
    # ------------------------------------------------------------------ #
    def push(self, edges) -> None:
        """Apply serialization arcs in place (undoable via :meth:`pop`).

        The caller is expected to pass arcs vetted by
        :meth:`legal_serialization`; acyclicity is asserted exactly like the
        historic loop asserted it after every ``apply_serialization``.
        """

        edges = list(edges)
        assert self._analysis.remains_acyclic_with_edges(edges), (
            f"serializing {self.ddg.name!r} must keep the DDG acyclic"
        )
        self._saturation.push(edges)
        self.stats["pushes"] += 1
        self._invalidate_verdicts()

    def _invalidate_verdicts(self) -> None:
        """Frame the pair-verdict cache and drop the dirty region.

        Applied arcs (read off the working analysis' undo frame; no-op
        pushes dirty nothing) can move a pair's verdict only through nodes
        in ``{dst} ∪ desc(dst) ∪ anc(src)``: the target's ASAP window and
        descendant set change only below the arc, the readers' ASAP times
        only below it, and path-length / reachability answers involving the
        arc require reaching its source.  Pairs whose target and proto
        readers all avoid that region provably keep last iteration's
        verdict.
        """

        old = self._pair_verdicts
        self._verdict_frames.append(old)
        frame = self._analysis._frames[-1]
        if not frame.records or not old:
            self._pair_verdicts = dict(old)
            return
        dirty: set = set()
        desc = self._analysis.descendants_incl()
        for record in frame.records:
            dirty.add(record.edge.dst)
            dirty |= desc[record.edge.dst]
            dirty |= self._analysis.ancestors_incl(record.edge.src)
        proto_cache = self._proto_edges_cache
        kept: Dict[Tuple[Value, Value], Tuple] = {}
        for key, verdict in old.items():
            if key[1].node in dirty:
                continue
            proto = proto_cache.get(key)
            if proto is None or any(reader in dirty for reader, _ in proto):
                continue
            kept[key] = verdict
        self._pair_verdicts = kept

    def pop(self) -> None:
        """Undo the most recent push, restoring the exact prior state."""

        self._saturation.pop()
        self.stats["pops"] += 1
        self._pair_verdicts = self._verdict_frames.pop()

    def reset_to_depth(self, depth: int) -> None:
        """Pop frames until exactly *depth* pushes remain applied.

        The session for one register budget is a prefix of the session for
        any smaller budget, so a multi-budget driver can rewind to a shared
        prefix (or all the way to the pristine working graph with
        ``reset_to_depth(0)``) instead of rebuilding the session; the
        warm analyses and the candidate DV states are restored exactly,
        frame by frame.
        """

        if depth < 0 or depth > self.depth:
            raise IndexError(
                f"cannot reset to depth {depth}: {self.depth} frames are applied"
            )
        while self.depth > depth:
            self.pop()

    def saturation(self) -> SaturationResult:
        """Greedy-k of the working graph, warm-started from the last iteration."""

        return self._saturation.saturation()

    # ------------------------------------------------------------------ #
    # Introspection (used by the undo-safety tests and the benchmarks)
    # ------------------------------------------------------------------ #
    @property
    def killing_set_cache(self) -> _KillingSetCache:
        return self._saturation.killing_set_cache  # type: ignore[return-value]

    @property
    def saturation_stats(self) -> Dict[str, int]:
        """DV-DAG reuse counters of the warm saturation state."""

        return self._saturation.stats

    @property
    def stage_timings(self) -> Dict[str, float]:
        """Monotonic per-stage wall-clock totals, keyed by engine stage.

        The union of the session's scan timer and the saturation engine's
        stage timers; the benchmark's bottleneck profile reports these so
        time is attributed to the stage that spent it.
        """

        return {**self.timings, **self._saturation.timings}

    def analysis_fingerprint(self) -> Dict[str, object]:
        """A value-level snapshot of the observable analysis state.

        Used to assert that ``push`` followed by ``pop`` restores *exactly*
        the prior state: graph arcs, reachability, longest paths, potential
        killers, and the saturation outcome.
        """

        g = self.ddg
        desc = self._analysis.descendants_incl()
        sat = self.saturation()
        return {
            "edges": sorted(
                (e.src, e.dst, e.latency, e.kind.value, None if e.rtype is None else e.rtype.name)
                for e in g.edges()
            ),
            "descendants": {node: frozenset(desc[node]) for node in g.nodes()},
            "critical_path": self.critical_path(),
            "bottom_critical_path": self.bottom_critical_path(),
            "rs": sat.rs,
            "saturating_values": tuple(sat.saturating_values),
            "killing_function": None
            if sat.killing_function is None
            else tuple(sorted((str(v), k) for v, k in sat.killing_function.items())),
        }
