"""The incremental reduction session: one working DDG, mutated with undo.

``reduce_saturation_heuristic`` historically rebuilt the world on every
iteration: ``ddg.copy()`` per applied serialization, a cold
:class:`~repro.analysis.context.AnalysisContext` per copy, and a from-scratch
``greedy_saturation`` -- even though consecutive iterations differ by the two
or three serial arcs of one value-serialization.  :class:`ReductionSession`
replaces that with a single working graph mutated in place:

* :meth:`push` applies serialization arcs to the working graph *and* its
  bottom-normalised mirror (``DDG.version`` is bumped by the mutation, so
  stale context caches can never leak), recording an undo frame;
* :meth:`pop` restores the exact prior graph and analysis state;
* between pushes, the structural analyses (descendant maps, longest-path
  rows) and the saturation state (potential killers, killing-set choices,
  killers' descendant values) are patched incrementally -- only the dirty
  region around the new arcs' endpoints is recomputed (see
  :mod:`repro.saturation.incremental` for the monotonicity argument);
* candidate serializations are scored without any graph copy through the
  shared mini-DAG helpers of :mod:`repro.analysis.graphalgo`, and a cheap
  reachability pre-filter (:meth:`implied`) rejects pairs whose ordering the
  transitive closure already forces before ``legal_serialization`` is paid.

The session produces results identical to the from-scratch loop (pinned by
``tests/test_reduction_incremental.py`` and asserted with byte-compared
reports by ``benchmarks/bench_reduction_incremental.py``); it is purely a
performance device.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import flatbuf
from ..analysis.context import context_for
from ..core.graph import DDG, Edge
from ..core.types import BOTTOM, DependenceKind, RegisterType, Value, canonical_type
from ..errors import ReductionError
from ..saturation.incremental import IncrementalAnalysis, IncrementalSaturation
from ..saturation.result import SaturationResult
from .serialization import (
    SerializationMode,
    prune_redundant_serial_arcs,
    serialization_latency,
)

__all__ = ["ReductionSession"]

#: Removal sentinel for the verdict-table maintenance (verdict tuples are
#: always truthy, but a dedicated object keeps the intent explicit).
_MISS = object()


class _KillingSetCache(dict):
    """A dict counting its hits/misses (reported in the session stats)."""

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is default:
            self.misses += 1
        else:
            self.hits += 1
        return value


class ReductionSession:
    """Incremental engine behind the value-serialization reduction loop.

    Parameters
    ----------
    ddg:
        The original graph; it is never touched.  The session works on a
        copy named ``<name>+reduced`` exactly like the historic loop did.
    rtype:
        Register type whose saturation is being reduced.
    mode:
        Serialization-latency mode (:class:`SerializationMode`), OFFSETS by
        default.
    prune_redundant:
        Drop closure-implied serial arcs from the working copy up front
        (mirrors the historic behaviour; the dropped arcs are in
        :attr:`pruned`).
    """

    def __init__(
        self,
        ddg: DDG,
        rtype: RegisterType | str,
        mode: str = SerializationMode.OFFSETS,
        prune_redundant: bool = True,
        name: Optional[str] = None,
        frame_mode: str = "block",
    ) -> None:
        self.rtype = canonical_type(rtype)
        self.mode = mode
        working = ddg.copy(name or f"{ddg.name}+reduced")
        self.pruned: List[Edge] = []
        if prune_redundant:
            working, self.pruned = prune_redundant_serial_arcs(working)
        # frame_mode selects the working analysis's undo-frame format:
        # "block" (default) batches the per-push row patching through the
        # `max_merge_rows` kernel; "per-row" keeps the PR-6 copy-on-write
        # reference path (`tests/test_batchpush.py` pins their equality).
        self._analysis = IncrementalAnalysis(working, frame_mode=frame_mode)
        self._saturation = IncrementalSaturation(self._analysis, self.rtype)
        self._saturation.killing_set_cache = _KillingSetCache()
        # Flat pair keying: the saturation state already indexes the mirror's
        # values; an ordered pair becomes the small int `ui * n + vi`, so the
        # per-pair caches below hash machine ints instead of Value tuples on
        # the scan fast path.  Pairs outside the index (BOTTOM endpoints,
        # foreign types) fall back to the (before, after) tuple key -- the
        # two key spaces cannot collide in one dict.
        self._vindex: Dict[str, int] = self._saturation._node_index
        self._values_by_index: Tuple[Value, ...] = self._saturation._values
        self._nvals: int = len(self._values_by_index) or 1
        # pair key -> ((reader, latency), ...): the static part of the
        # Theorem-4.2 serialization.  Readers are flow consumers and the
        # latencies depend only on the operations, neither of which a serial
        # arc can change, so this survives every push/pop.
        self._proto_edges_cache: Dict[object, Tuple[Tuple[str, int], ...]] = {}
        # pair key -> last iteration's `consider` verdict.  A verdict
        # depends only on the pair's proto readers, the target's descendant
        # set / issue-time window and the readers' ASAP times; a push dirties
        # exactly {dst} ∪ desc(dst) per applied arc plus the nodes whose
        # sink distance moved (see `_invalidate_verdicts`), so verdicts
        # whose nodes avoid that region are re-used verbatim (the critical
        # path itself is re-read fresh -- see `consider`).  The cache is
        # framed copy-on-write per push so `pop` restores it exactly.
        self._pair_verdicts: Dict[object, Tuple] = {}
        # Undo frames for the verdict cache: one (dropped entries, added
        # keys) delta per push, applied in reverse by `pop` -- the cache
        # dict itself is never copied.
        self._verdict_frames: List[Tuple[Dict[object, Tuple], List[object]]] = []
        # node -> pair keys whose verdict reads that node (the pair's target
        # or one of its proto readers), registered when a verdict is first
        # stored.  Inverts the invalidation: a push walks dirty-node buckets
        # instead of filtering the whole verdict cache per push.  Entries
        # are never removed -- a stale key just no-ops the pop below.
        self._verdict_node_keys: Dict[str, set] = {}
        # Keys with no proto skeleton (BOTTOM endpoints): no nodes to index
        # them under, so they are conservatively dropped on every push.
        self._volatile_keys: set = set()
        # Flat verdict tables mirroring `_pair_verdicts` for int keys
        # (``xs[key]`` = cached X, ``arcs[key]`` = kind/arc-count code; see
        # :func:`repro.analysis.flatbuf.pair_tables`).  Allocated lazily on
        # the first scan (None until then, False when the backend is off);
        # `_scan_dirty` marks them for a rebuild after a wholesale verdict
        # restore (pop), the only maintenance that is not per-key.
        self._scan_tables = None
        self._scan_dirty = False
        self._cp_state_version = -1
        self._asap: Dict[str, int] = {}
        self._to_sinks: Dict[str, float] = {}
        self._cp = 0
        self.stats: Dict[str, int] = {
            "pushes": 0,
            "pops": 0,
            "implied_skipped": 0,
            "evaluated_candidates": 0,
            "pair_verdicts_reused": 0,
            "verdict_exact_regions": 0,
        }
        #: Monotonic per-stage accumulator for the candidate-pair scan; the
        #: saturation-side stages live on `IncrementalSaturation.timings`.
        self.timings: Dict[str, float] = {"pair_scan": 0.0}

    # ------------------------------------------------------------------ #
    # Graph access
    # ------------------------------------------------------------------ #
    @property
    def ddg(self) -> DDG:
        """The working graph (original + pruning + pushed serializations)."""

        return self._analysis.ddg

    @property
    def depth(self) -> int:
        """Number of push frames currently undoable."""

        return self._analysis.depth

    def critical_path(self) -> int:
        return context_for(self.ddg).critical_path_length()

    def bottom_critical_path(self) -> int:
        """Critical path of the bottom-normalised working graph."""

        return context_for(self._saturation.mirror_ddg).critical_path_length()

    def lp_row(self, src: str) -> Dict[str, float]:
        """Warm exact longest-path row from *src* in the working graph."""

        return self._analysis.lp_row(src)

    # ------------------------------------------------------------------ #
    # Candidate evaluation (no copies)
    # ------------------------------------------------------------------ #
    def _pair_key(self, before: Value, after: Value) -> object:
        """The cache key of an ordered pair: a flat int where possible.

        Pairs of indexed mirror values key as ``ui * n + vi`` -- one machine
        int instead of a tuple of frozen dataclasses, which is what the scan
        fast path hashes millions of times.  Anything outside the index
        (BOTTOM endpoints, foreign register types) keeps the tuple key; int
        and tuple keys cannot collide in one dict.
        """

        vindex = self._vindex
        ui = vindex.get(before.node)
        vi = vindex.get(after.node)
        if ui is None or vi is None:
            return (before, after)
        return ui * self._nvals + vi

    def _proto_edges(
        self, before: Value, after: Value, key: object = None
    ) -> Tuple[Tuple[str, int], ...]:
        """The static (reader, latency) skeleton of the pair's serialization."""

        if key is None:
            key = self._pair_key(before, after)
        proto = self._proto_edges_cache.get(key)
        if proto is None:
            if before.rtype != after.rtype:
                raise ReductionError(
                    "cannot serialize lifetimes of different register types"
                )
            target = after.node
            proto = tuple(
                (reader, serialization_latency(self.ddg, reader, target, self.mode))
                for reader in self.ddg.consumers(before.node, before.rtype)
                if reader != target
            )
            self._proto_edges_cache[key] = proto
        return proto

    def _kept_arcs(
        self, proto: Tuple[Tuple[str, int], ...], target: str
    ) -> Optional[List[Tuple[str, int]]]:
        """The pair's arcs after the dominated-arc filter, or None on a cycle.

        Single implementation behind :meth:`legal_serialization` and
        :meth:`consider` so the two can never drift apart: an arc dominated
        by an existing equal-or-stronger arc is dropped (the
        ``skip_existing`` rule of :func:`serialization_edges`), and because
        every arc ends at *target*, a new cycle can only be a base path from
        the target back to a reader -- a membership test on the warm
        descendant set.
        """

        g = self.ddg
        reach_target = self._analysis.descendants_excl()[target]
        kept: List[Tuple[str, int]] = []
        for reader, latency in proto:
            best = g.best_latency_between(reader, target)
            if best is not None and best >= latency:
                continue
            if reader in reach_target:
                return None
            kept.append((reader, latency))
        return kept

    def _refresh_cp_state(self) -> None:
        if self._cp_state_version != self.ddg.version:
            ctx = context_for(self.ddg)
            # Copies, not the context's cached dicts: `_patch_cp_state`
            # updates these in place after a push.
            self._asap = dict(ctx.asap_times())
            self._to_sinks = dict(ctx.longest_path_to_sinks())
            self._cp = ctx.critical_path_length()
            self._cp_state_version = self.ddg.version

    def _patch_cp_state(self, records) -> set:
        """Relax the warm ASAP/sink-distance maps over freshly added arcs.

        Adding arcs only ever lengthens longest paths, so a monotone
        worklist relaxation from the arc endpoints reproduces the full
        recompute exactly (same integer arithmetic) while touching only the
        affected region.  Returns the set of nodes whose sink distance
        changed -- precisely the upstream dirty region the verdict
        invalidation needs.
        """

        g = self.ddg
        asap = self._asap
        sinks = self._to_sinks
        queue: List[str] = []
        for record in records:
            edge = record.edge
            cand = asap[edge.src] + edge.latency
            if cand > asap[edge.dst]:
                asap[edge.dst] = cand
                queue.append(edge.dst)
        while queue:
            v = queue.pop()
            base = asap[v]
            for edge in g.out_edges(v):
                cand = base + edge.latency
                if cand > asap[edge.dst]:
                    asap[edge.dst] = cand
                    queue.append(edge.dst)
        changed: set = set()
        for record in records:
            edge = record.edge
            cand = edge.latency + sinks[edge.dst]
            if cand > sinks[edge.src]:
                sinks[edge.src] = cand
                changed.add(edge.src)
                queue.append(edge.src)
        while queue:
            v = queue.pop()
            base = sinks[v]
            for edge in g.in_edges(v):
                cand = edge.latency + base
                if cand > sinks[edge.src]:
                    sinks[edge.src] = cand
                    changed.add(edge.src)
                    queue.append(edge.src)
        if changed:
            cp = self._cp
            for v in changed:
                d = sinks[v]
                if d > cp:
                    cp = d
            self._cp = int(cp)
        self._cp_state_version = g.version
        return changed

    def legal_serialization(self, before: Value, after: Value) -> Optional[List[Edge]]:
        """Same contract as :func:`repro.reduction.serialization.legal_serialization`,
        answered from the warm reachability state (no graph walk per pair).

        Every serialization arc for a pair ends at ``after``'s operation, so
        a new cycle can only be a base path from the target back to one of
        the readers -- a handful of set-membership tests on the warm
        descendant map instead of a mini-graph search.
        """

        if after.node == BOTTOM or before.node == BOTTOM:
            return None
        proto = self._proto_edges(before, after)
        if not proto:
            return []
        kept = self._kept_arcs(proto, after.node)
        if kept is None:
            return None
        return [
            Edge(reader, after.node, latency, DependenceKind.SERIAL, None)
            for reader, latency in kept
        ]

    #: `consider` outcome: the pair's ordering is already forced.
    IMPLIED = object()

    #: Cached-verdict tags (see `_pair_verdicts`).
    _V_IMPLIED = ("implied",)
    _V_NONE = ("none",)

    def consider(
        self, before: Value, after: Value, base_cp: int
    ) -> object:
        """Evaluate one ordered pair in a single pass.

        Returns :data:`IMPLIED` (pair already ordered by the closure), None
        (illegal or nothing to add), or ``(cp_increase, arc_count, payload)``
        where *payload* materialises into the arcs via :meth:`apply_payload`.
        Arcs are not constructed during the scan -- with O(|antichain|^2)
        pairs per iteration and one winner, the allocation churn dominated
        the loop.

        The scan runs off a dirty-pair worklist: verdicts from the previous
        iteration whose endpoints were untouched by the applied
        serialization are returned verbatim (counted in
        ``pair_verdicts_reused``).  A cached candidate verdict stores the
        pair-local quantity ``X = max(asap[target], asap[reader]+latency)
        + to_sinks[target]`` rather than the cp increase, so the global
        critical path -- which any push may move -- is re-read fresh on
        every reuse; the arithmetic is bit-for-bit the fresh path's.

        The ``pair_scan`` stage timer is fed per *iteration* by the loop
        driver (:meth:`record_scan_time`), not here: with O(|antichain|^2)
        calls per iteration a per-call timer would tax the reuse fast path
        with more clock reads than remaining work.
        """

        key = self._pair_key(before, after)
        verdict = self._pair_verdicts.get(key)
        if verdict is not None:
            self.stats["pair_verdicts_reused"] += 1
        else:
            verdict = self._consider_fresh(before, after, key)
            self._store_verdict(key, verdict, after)
        if verdict is self._V_IMPLIED:
            self.stats["implied_skipped"] += 1
            return self.IMPLIED
        if verdict is self._V_NONE:
            return None
        _, x, arc_count, payload = verdict
        self._refresh_cp_state()
        return int(max(self._cp, x)) - base_cp, arc_count, payload

    def scan(self, saturating, base_cp: int) -> Tuple[Optional[Tuple], int]:
        """One full candidate-pair scan, inlined (the driver fast path).

        Evaluates every ordered pair of *saturating* values through the
        verdict cache exactly as per-pair :meth:`consider` calls would, but
        with the pair keys, the critical-path refresh, and the stats
        bookkeeping hoisted out of the quadratic loop.  Returns
        ``(best, implied_count)`` where *best* is
        ``((cp_increase, arc_count), payload)`` for the winning pair under
        the same strict lexicographic order the generic driver loop used, or
        None when no pair is applicable.

        When the :mod:`~repro.analysis.flatbuf` backend is active the scan
        runs as one :func:`~repro.analysis.flatbuf.scan_pairs` kernel call
        over the flat verdict tables (numpy: gather + first-minimum
        reduction; stdlib: the same loop over contiguous buffers); values
        outside the mirror index fall back to the dict loop below, which
        stays the ``REPRO_VECTOR=off`` reference.
        """

        tables = self._ensure_scan_tables()
        if tables is not None:
            vindex = self._vindex
            idx: List[int] = []
            for v in saturating:
                vi = vindex.get(v.node)
                if vi is None:
                    break
                idx.append(vi)
            else:
                if len(set(idx)) == len(idx):
                    return self._scan_tables_path(tables, saturating, idx, base_cp)

        verdicts = self._pair_verdicts
        vindex = self._vindex
        n = self._nvals
        implied = self._V_IMPLIED
        none = self._V_NONE
        fresh = self._consider_fresh
        store = self._store_verdict
        reused = 0
        implied_count = 0
        best_key: Optional[Tuple[int, int]] = None
        best: Optional[Tuple] = None
        self._refresh_cp_state()
        cp = self._cp
        indexed = [(v, vindex.get(v.node)) for v in saturating]
        for u, ui in indexed:
            base = ui * n if ui is not None else None
            for v, vi in indexed:
                if u == v:
                    continue
                if base is not None and vi is not None:
                    key: object = base + vi
                else:
                    key = (u, v)
                verdict = verdicts.get(key)
                if verdict is None:
                    verdict = fresh(u, v, key)
                    store(key, verdict, v)
                else:
                    reused += 1
                if verdict is implied:
                    implied_count += 1
                    continue
                if verdict is none:
                    continue
                _, x, arc_count, payload = verdict
                inc = int(x if x > cp else cp) - base_cp
                if best_key is None or (inc, arc_count) < best_key:
                    best_key = (inc, arc_count)
                    best = (best_key, payload)
        self.stats["pair_verdicts_reused"] += reused
        self.stats["implied_skipped"] += implied_count
        return best, implied_count

    def _register_verdict_key(self, key: object, target_node: str) -> None:
        """Index a freshly stored verdict under the nodes it reads."""

        proto = self._proto_edges_cache.get(key)
        if proto is None:
            self._volatile_keys.add(key)
            return
        index = self._verdict_node_keys
        bucket = index.get(target_node)
        if bucket is None:
            bucket = index[target_node] = set()
        bucket.add(key)
        for reader, _latency in proto:
            bucket = index.get(reader)
            if bucket is None:
                bucket = index[reader] = set()
            bucket.add(key)

    def _store_verdict(self, key: object, verdict: Tuple, after: Value) -> None:
        """Store a fresh verdict in the dict, the node index and the tables."""

        self._pair_verdicts[key] = verdict
        frames = self._verdict_frames
        if frames:
            frames[-1][1].append(key)
        self._register_verdict_key(key, after.node)
        tables = self._scan_tables
        if tables and type(key) is int:
            self._encode_verdict(tables, key, verdict)

    def _encode_verdict(self, tables, key: int, verdict: Tuple) -> None:
        """Mirror one verdict into the flat scan tables (see `pair_tables`)."""

        xs, arcs = tables
        if verdict is self._V_IMPLIED:
            arcs[key] = -2
        elif verdict is self._V_NONE:
            arcs[key] = -3
        else:
            xs[key] = verdict[1]
            arcs[key] = verdict[2]

    def _ensure_scan_tables(self):
        """The flat verdict tables, or None when the backend is off.

        Lazily allocated (and refilled from the verdict dict after a
        wholesale restore) so push/pop-only sessions never pay for them.
        """

        tables = self._scan_tables
        if tables is False:
            return None
        if tables is None or self._scan_dirty:
            tables = flatbuf.pair_tables(self._nvals * self._nvals)
            if tables is None:
                self._scan_tables = False
                return None
            self._scan_tables = tables
            encode = self._encode_verdict
            for key, verdict in self._pair_verdicts.items():
                if type(key) is int:
                    encode(tables, key, verdict)
            self._scan_dirty = False
        return tables

    def _scan_tables_path(
        self, tables, saturating, idx: List[int], base_cp: int
    ) -> Tuple[Optional[Tuple], int]:
        """The kernel-backed scan (same verdicts, winner and counters)."""

        self._refresh_cp_state()
        cp = self._cp
        consider_fresh = self._consider_fresh
        store = self._store_verdict

        def fresh(a: int, b: int, key: int) -> None:
            v = saturating[b]
            store(key, consider_fresh(saturating[a], v, key), v)

        xs, arcs = tables
        best, best_key, implied_count, reused = flatbuf.scan_pairs(
            xs, arcs, idx, self._nvals, cp, base_cp, fresh
        )
        self.stats["pair_verdicts_reused"] += reused
        self.stats["implied_skipped"] += implied_count
        if best is None:
            return None, implied_count
        payload = self._pair_verdicts[best_key][3]
        return (best, payload), implied_count

    def record_scan_time(self, seconds: float) -> None:
        """Accumulate one iteration's candidate-scan wall clock (stage timer)."""

        self.timings["pair_scan"] += seconds

    def _consider_fresh(self, before: Value, after: Value, key: object = None) -> Tuple:
        """Evaluate one pair cold; returns the cacheable verdict tuple.

        Because all of the pair's arcs end at the same target, the extended
        critical path closed-forms to
        ``max(cp, max(asap[target], asap[reader] + latency) + to_sinks[target])``
        -- no longest-path matrix, no graph copy.
        """

        if after.node == BOTTOM or before.node == BOTTOM:
            return self._V_NONE
        proto = self._proto_edges(before, after, key)
        if not proto:
            return self._V_NONE
        target = after.node
        desc = self._analysis.descendants_excl()
        # The reachability screen + exact longest-path confirmation of the
        # `implied` pre-filter, inlined.
        for reader, _latency in proto:
            if target not in desc[reader]:
                break
        else:
            analysis = self._analysis
            tid = analysis.op_id(target)
            for reader, latency in proto:
                if analysis.row_by_name(reader)[tid] < latency:
                    break
            else:
                return self._V_IMPLIED

        kept = self._kept_arcs(proto, target)
        if not kept:
            # A cycle, or everything dominated by existing arcs.
            return self._V_NONE
        self.stats["evaluated_candidates"] += 1
        self._refresh_cp_state()
        asap = self._asap
        best_target = asap[target]
        for reader, latency in kept:
            cand = asap[reader] + latency
            if cand > best_target:
                best_target = cand
        x = best_target + self._to_sinks[target]
        return ("cand", x, len(kept), (target, kept))

    def apply_payload(self, payload) -> List[Edge]:
        """Materialise and push the arcs of a winning :meth:`consider` payload."""

        target, kept = payload
        edges = [
            Edge(reader, target, latency, DependenceKind.SERIAL, None)
            for reader, latency in kept
        ]
        self.push(edges)
        return edges

    # ------------------------------------------------------------------ #
    # Mutation with undo
    # ------------------------------------------------------------------ #
    def push(self, edges) -> None:
        """Apply serialization arcs in place (undoable via :meth:`pop`).

        The caller is expected to pass arcs vetted by
        :meth:`legal_serialization`; acyclicity is asserted exactly like the
        historic loop asserted it after every ``apply_serialization``.
        """

        edges = list(edges)
        assert self._analysis.remains_acyclic_with_edges(edges), (
            f"serializing {self.ddg.name!r} must keep the DDG acyclic"
        )
        cp_fresh = self._cp_state_version == self.ddg.version
        self._saturation.push(edges)
        self.stats["pushes"] += 1
        changed_sinks = (
            self._patch_cp_state(self._analysis._frames[-1].records)
            if cp_fresh
            else None
        )
        self._invalidate_verdicts(changed_sinks)

    def _invalidate_verdicts(self, changed_sinks: Optional[set]) -> None:
        """Frame the pair-verdict cache and drop the dirty region.

        Applied arcs (read off the working analysis' undo frame; no-op
        pushes dirty nothing) can move a pair's verdict only through nodes
        in ``{dst} ∪ desc(dst)`` per arc plus the nodes whose longest path
        to the sinks changed: the target's ASAP window, its descendant set,
        and every longest path *into* it change only at-or-below the arc,
        while the only upstream input a verdict reads is
        ``to_sinks[target]``.  When the warm cp state was patched through
        the push, *changed_sinks* is that exact affected set; a cold state
        falls back to the conservative ``anc(src)`` superset.  Pairs whose
        target and proto readers all avoid the region provably keep last
        iteration's verdict.
        """

        verdicts = self._pair_verdicts
        dropped: Dict[object, Tuple] = {}
        added: List[object] = []
        self._verdict_frames.append((dropped, added))
        frame = self._analysis._frames[-1]
        if not frame.records or not verdicts:
            return
        dirty: set = set()
        desc = self._analysis.descendants_incl()
        for record in frame.records:
            dirty.add(record.edge.dst)
            dirty |= desc[record.edge.dst]
        if changed_sinks is None:
            for record in frame.records:
                dirty |= self._analysis.ancestors_incl(record.edge.src)
        else:
            dirty |= changed_sinks
            self.stats["verdict_exact_regions"] += 1
        # Inverted filter: walk the dirty nodes' key buckets instead of
        # testing every cached verdict -- same retention (a key is indexed
        # under exactly its target and proto readers; proto-less keys are
        # volatile), O(|dirty| + dropped) instead of O(|cache|).  Dropped
        # entries land in the undo frame so `pop` can restore them without
        # the dict ever being copied; every key actually dropped is reset
        # in the flat scan tables too, keeping them an exact mirror.
        tables = self._scan_tables or None
        arcs = tables[1] if tables else None
        missing = _MISS
        for key in self._volatile_keys:
            v = verdicts.pop(key, missing)
            if v is not missing:
                dropped[key] = v
                if arcs is not None and type(key) is int:
                    arcs[key] = -1
        index = self._verdict_node_keys
        for node in dirty:
            keys = index.pop(node, None)
            if keys:
                # The bucket is consumed: every key in it is either dropped
                # now or already gone from the dict (dropped through another
                # bucket earlier).  A restore (`pop`) re-registers what it
                # puts back, so nothing is walked twice across pushes.
                for key in keys:
                    v = verdicts.pop(key, missing)
                    if v is not missing:
                        dropped[key] = v
                        if arcs is not None and type(key) is int:
                            arcs[key] = -1

    def pop(self) -> None:
        """Undo the most recent push, restoring the exact prior state."""

        self._saturation.pop()
        self.stats["pops"] += 1
        dropped, added = self._verdict_frames.pop()
        verdicts = self._pair_verdicts
        for key in added:
            verdicts.pop(key, None)
        if dropped:
            verdicts.update(dropped)
            # Restored keys must be findable by future invalidations: the
            # push that dropped them consumed their dirty-node buckets.
            register = self._register_verdict_key
            values = self._values_by_index
            nvals = self._nvals
            for key in dropped:
                if type(key) is int:
                    register(key, values[key % nvals].node)
                else:
                    register(key, key[1].node)
        # Mirror the delta into the flat tables when they exist; otherwise
        # they are refilled lazily on the next scan.
        tables = self._scan_tables or None
        if tables:
            arcs = tables[1]
            for key in added:
                if type(key) is int:
                    arcs[key] = -1
            encode = self._encode_verdict
            for key, verdict in dropped.items():
                if type(key) is int:
                    encode(tables, key, verdict)
        else:
            self._scan_dirty = True

    def reset_to_depth(self, depth: int) -> None:
        """Pop frames until exactly *depth* pushes remain applied.

        The session for one register budget is a prefix of the session for
        any smaller budget, so a multi-budget driver can rewind to a shared
        prefix (or all the way to the pristine working graph with
        ``reset_to_depth(0)``) instead of rebuilding the session; the
        warm analyses and the candidate DV states are restored exactly,
        frame by frame.
        """

        if depth < 0 or depth > self.depth:
            raise IndexError(
                f"cannot reset to depth {depth}: {self.depth} frames are applied"
            )
        while self.depth > depth:
            self.pop()

    def saturation(self) -> SaturationResult:
        """Greedy-k of the working graph, warm-started from the last iteration."""

        return self._saturation.saturation()

    # ------------------------------------------------------------------ #
    # Introspection (used by the undo-safety tests and the benchmarks)
    # ------------------------------------------------------------------ #
    @property
    def killing_set_cache(self) -> _KillingSetCache:
        return self._saturation.killing_set_cache  # type: ignore[return-value]

    @property
    def saturation_stats(self) -> Dict[str, int]:
        """DV-DAG reuse counters of the warm saturation state."""

        return self._saturation.stats

    @property
    def stage_timings(self) -> Dict[str, float]:
        """Monotonic per-stage wall-clock totals, keyed by engine stage.

        The union of the session's scan timer and the saturation engine's
        stage timers; the benchmark's bottleneck profile reports these so
        time is attributed to the stage that spent it.
        """

        return {**self.timings, **self._saturation.timings}

    def analysis_fingerprint(self) -> Dict[str, object]:
        """A value-level snapshot of the observable analysis state.

        Used to assert that ``push`` followed by ``pop`` restores *exactly*
        the prior state: graph arcs, reachability, longest paths, potential
        killers, and the saturation outcome.
        """

        g = self.ddg
        desc = self._analysis.descendants_incl()
        sat = self.saturation()
        return {
            "edges": sorted(
                (e.src, e.dst, e.latency, e.kind.value, None if e.rtype is None else e.rtype.name)
                for e in g.edges()
            ),
            "descendants": {node: frozenset(desc[node]) for node in g.nodes()},
            "critical_path": self.critical_path(),
            "bottom_critical_path": self.bottom_critical_path(),
            "rs": sat.rs,
            "saturating_values": tuple(sat.saturating_values),
            "killing_function": None
            if sat.killing_function is None
            else tuple(sorted((str(v), k) for v, k in sat.killing_function.items())),
        }
