"""The register-need *minimization* baseline discussed in Section 6 of the paper.

The paper argues that pre-scheduling register-pressure management should
*saturate* (only constrain the graph when the worst case exceeds the budget,
and only down to the budget) rather than *minimize* (constrain the graph to
the smallest register need achievable, regardless of how many registers the
machine has).  Figure 2 illustrates the difference on a 5-node DAG.

To make that comparison quantitatively (``benchmarks/bench_saturation_vs_
minimization.py``) this module implements the minimization approach with the
same machinery as the optimal reduction:

1. find the smallest register need achievable by any schedule whose total
   time does not exceed the original critical path (binary search over the
   SRC intLP -- this is the footnote-4 "minimize the register requirement
   under critical path constraints");
2. freeze the lifetime precedences of the witness schedule with the
   Theorem-4.2 serial arcs.

The result is an extended graph whose saturation equals the minimum register
need: maximally constrained, exactly what the saturation approach avoids.
"""

from __future__ import annotations

import time
from typing import Optional

from ..analysis.context import context_for
from ..analysis.graphalgo import critical_path_length
from ..core.graph import DDG
from ..core.lifetime import register_need
from ..core.machine import ProcessorModel
from ..core.schedule import asap_schedule
from ..core.types import RegisterType, canonical_type
from ..errors import ReductionError
from ..saturation.greedy import greedy_saturation
from .exact_ilp import serialize_from_schedule, solve_src
from .result import ReductionResult
from .serialization import SerializationMode

__all__ = ["minimize_register_need"]


def minimize_register_need(
    ddg: DDG,
    rtype: RegisterType | str,
    machine: Optional[ProcessorModel] = None,
    mode: Optional[str] = None,
    backend: str = "auto",
    time_limit: Optional[float] = None,
) -> ReductionResult:
    """Apply the Section-6 minimization baseline to *ddg*.

    Returns a :class:`~repro.reduction.result.ReductionResult` whose
    ``achieved_rs`` is the minimal register need reachable without
    lengthening the critical path, and whose ``extended_ddg`` is constrained
    down to that need -- the behaviour the paper criticises because it
    ignores how many registers are actually available.
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    if mode is None:
        mode = SerializationMode.OFFSETS

    bottom_ctx = context_for(ddg).bottom()
    g = bottom_ctx.ddg
    deadline = bottom_ctx.critical_path_length()
    baseline = greedy_saturation(ddg, rtype)
    asap_need = register_need(g, asap_schedule(g), rtype)
    if asap_need == 0:
        return ReductionResult(
            rtype=rtype,
            target=0,
            success=True,
            original_rs=baseline.rs,
            achieved_rs=0,
            extended_ddg=g.copy(),
            critical_path_before=deadline,
            critical_path_after=deadline,
            method="minimization",
            optimal=True,
            wall_time=time.perf_counter() - start,
        )

    # Binary search for the smallest feasible register count under the
    # critical-path deadline.  The ASAP schedule witnesses feasibility of its
    # own register need, so the search interval is [1, asap_need].
    feasible_schedules = {}
    lo, hi = 1, asap_need
    while lo < hi:
        mid = (lo + hi) // 2
        schedule, _, _ = solve_src(
            ddg, rtype, mid, deadline=deadline, backend=backend, time_limit=time_limit
        )
        if schedule is not None:
            feasible_schedules[mid] = schedule
            hi = mid
        else:
            lo = mid + 1
    minimal = lo
    schedule = feasible_schedules.get(minimal)
    if schedule is None:
        schedule, _, _ = solve_src(
            ddg, rtype, minimal, deadline=deadline, backend=backend, time_limit=time_limit
        )
    if schedule is None:  # pragma: no cover - defensive
        raise ReductionError(
            f"could not find a schedule of {ddg.name!r} within its critical path"
        )

    extended, added, skipped = serialize_from_schedule(
        g, schedule, rtype, mode=mode, prune_redundant=True
    )
    achieved = register_need(g, schedule, rtype)
    return ReductionResult(
        rtype=rtype,
        target=minimal,
        success=not skipped,
        original_rs=baseline.rs,
        achieved_rs=achieved,
        extended_ddg=extended,
        added_edges=tuple(added),
        critical_path_before=deadline,
        critical_path_after=critical_path_length(extended),
        method="minimization",
        optimal=True,
        wall_time=time.perf_counter() - start,
        details={
            "minimal_register_need": minimal,
            "deadline": deadline,
            "skipped_cyclic_pairs": [(str(u), str(v)) for u, v in skipped],
            "serialization_mode": mode,
        },
    )
