"""Section-3 size-complexity study: O(n^2) variables, O(m + n^2) constraints.

The paper's headline formulation claim is that its intLP needs only O(n^2)
integer variables and O(m + n^2) constraints -- "the lowest number ... in
the literature (till now)".  This experiment builds the model over a sweep
of DAG sizes, records the exact variable/constraint counts, and fits the
growth exponent of the counts against ``n`` (and against ``m + n^2``) to
check the claim empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..analysis.context import context_for
from ..analysis.stats import fit_power_law
from ..analysis.store import active_store
from ..codes.generator import layered_random_ddg
from ..core.graph import DDG
from ..core.types import INT
from ..ilp import default_registry
from ..ilp.registry import backend_request_token
from ..saturation.exact_ilp import build_rs_program
from .engine import BatchEngine
from .reporting import format_table
from .supervisor import ItemOutcome

__all__ = ["ModelSizePoint", "ModelSizeReport", "run_ilp_size_study"]


@dataclass(frozen=True)
class ModelSizePoint:
    """Model size for one DAG (plus the backend the auto policy would route it to)."""

    name: str
    nodes: int
    edges: int
    variables: int
    binaries: int
    constraints: int
    backend: str = ""

    @property
    def size_bound(self) -> int:
        """The paper's bound ``m + n^2`` for the constraint count."""

        return self.edges + self.nodes * self.nodes


@dataclass(frozen=True)
class ModelSizeReport:
    """Sweep results plus the fitted growth exponents."""

    points: List[ModelSizePoint] = field(default_factory=list)
    #: Supervised-execution records per sweep point; not part of the table.
    item_outcomes: List[ItemOutcome] = field(default_factory=list)

    def variable_exponent(self) -> float:
        """Exponent alpha of ``variables ~ n^alpha`` (should be <= 2)."""

        alpha, _ = fit_power_law(
            [p.nodes for p in self.points], [p.variables for p in self.points]
        )
        return alpha

    def constraint_exponent(self) -> float:
        alpha, _ = fit_power_law(
            [p.nodes for p in self.points], [p.constraints for p in self.points]
        )
        return alpha

    def constraints_within_bound(self, factor: float = 8.0) -> bool:
        """True when every constraint count is within *factor* of ``m + n^2``."""

        return all(p.constraints <= factor * p.size_bound for p in self.points)

    def variables_within_bound(self, factor: float = 8.0) -> bool:
        return all(p.variables <= factor * p.nodes * p.nodes for p in self.points)

    def to_table(self) -> str:
        rows = [
            (p.name, p.nodes, p.edges, p.variables, p.binaries, p.constraints,
             p.size_bound, p.backend)
            for p in self.points
        ]
        return format_table(
            ["instance", "n", "m", "variables", "binaries", "constraints", "m+n^2",
             "backend"],
            rows,
            title="Register-saturation intLP size (paper claim: O(n^2) vars, O(m+n^2) constraints)",
        )


def _size_instance(task: Tuple[DDG, bool]) -> ModelSizePoint:
    """Module-level batch worker (picklable for the process policy)."""

    ddg, prune = task
    program, info = build_rs_program(
        ddg,
        INT if ddg.values(INT) else ddg.register_types()[0],
        prune_redundant_arcs=prune,
        prune_noninterfering_pairs=prune,
    )
    stats = program.statistics()
    return ModelSizePoint(
        name=ddg.name,
        nodes=info.ddg.n,
        edges=info.ddg.m,
        variables=stats["variables"],
        binaries=stats["binary_variables"],
        constraints=stats["constraints"],
        # What the registry's auto policy would route this model to --
        # the size study doubles as a record of the declared partitioning.
        backend=default_registry().choose(program).name,
    )


def run_ilp_size_study(
    sizes: Sequence[int] = (10, 15, 20, 25, 30, 40, 50, 60),
    seed: int = 7,
    extra_graphs: Optional[Sequence[DDG]] = None,
    prune: bool = False,
    engine: Union[None, str, BatchEngine] = None,
) -> ModelSizeReport:
    """Build the RS intLP over a size sweep and collect the model statistics.

    ``prune=False`` measures the raw formulation (the paper's complexity
    claim); enabling the pruning optimisations only makes the models smaller.
    *engine* fans the sweep out over batch workers with deterministic
    ordering.
    """

    graphs: List[DDG] = [
        layered_random_ddg(
            nodes=n,
            layers=max(3, n // 6),
            edge_probability=0.3,
            seed=seed + n,
            rtype=INT,
            name=f"sweep-n{n}",
        )
        for n in sizes
    ]
    if extra_graphs:
        graphs.extend(extra_graphs)
    points, item_outcomes = BatchEngine.coerce(engine).map_with_outcomes(
        _size_instance,
        [(ddg, prune) for ddg in graphs],
        store=active_store(),
        query="experiment.ilp_size",
        # The cached point embeds the auto policy's backend column, which
        # the REPRO_ILP_BACKEND override changes -- key it in.
        key_fn=lambda task: (
            context_for(task[0]).graph_hash(),
            {"prune": task[1], "backend": backend_request_token("auto")},
        ),
    )
    return ModelSizeReport(list(points), item_outcomes=item_outcomes)
