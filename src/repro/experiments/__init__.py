"""Experiment harness reproducing the paper's evaluation (Section 5) and discussion."""

from .engine import POLICIES, BatchEngine, run_batch
from .supervisor import (
    FaultEvent,
    ItemOutcome,
    ItemTimeout,
    Supervisor,
    SupervisorConfig,
    outcomes_as_dicts,
)
from .ilp_size import ModelSizePoint, ModelSizeReport, run_ilp_size_study
from .optimality_reduction import (
    PAPER_BREAKDOWN,
    ReductionComparison,
    ReductionOptimalityReport,
    run_reduction_optimality,
)
from .optimality_rs import RSComparison, RSOptimalityReport, run_rs_optimality
from .pipeline import PipelineOutcome, PipelineReport, run_pipeline, run_pipeline_experiment
from .reporting import format_breakdown, format_table, section

__all__ = [
    "BatchEngine",
    "run_batch",
    "POLICIES",
    "SupervisorConfig",
    "Supervisor",
    "ItemOutcome",
    "ItemTimeout",
    "FaultEvent",
    "outcomes_as_dicts",
    "run_rs_optimality",
    "RSComparison",
    "RSOptimalityReport",
    "run_reduction_optimality",
    "ReductionComparison",
    "ReductionOptimalityReport",
    "PAPER_BREAKDOWN",
    "run_ilp_size_study",
    "ModelSizePoint",
    "ModelSizeReport",
    "run_pipeline",
    "run_pipeline_experiment",
    "PipelineOutcome",
    "PipelineReport",
    "format_table",
    "format_breakdown",
    "section",
]
