"""Section-5 experiment #2: optimality of the RS-reduction heuristic.

For every DAG whose saturation exceeds a register budget, run both the
value-serialization heuristic and the optimal intLP reduction, then classify
the outcome in the paper's six categories (paper percentages in brackets):

====  =========================  ==========================================
 id    condition                  paper's share of instances
====  =========================  ==========================================
 i.a   RS = RS*  and ILP = ILP*   72.22 %  (optimal RS, optimal ILP loss)
 i.b   RS = RS*  and ILP < ILP*   18.5  %  (optimal RS, sub-optimal ILP loss)
 i.c   RS = RS*  and ILP > ILP*   impossible
 ii.a  RS > RS*  and ILP = ILP*    4.63 %
 ii.b  RS > RS*  and ILP < ILP*   <1    %
 ii.c  RS > RS*  and ILP > ILP*    3.7  %  (extra registers buy back ILP)
 iii   RS < RS*                   impossible (the heuristic is admissible)
====  =========================  ==========================================

Here ``RS`` / ``RS*`` denote the *reduced* saturation achieved by the
optimal method and the heuristic respectively, and ``ILP`` / ``ILP*`` the
corresponding critical-path increases.  Note the orientation of the paper's
inequalities: the heuristic reduces *at least as much* as needed, so a
"sub-optimal RS reduction" means the heuristic ended with a *lower*
saturation than the optimal method needed to reach (``RS > RS*``), wasting
schedule freedom -- which is also why that case can come with a *better*
(super-optimal) ILP loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.context import context_for
from ..analysis.store import active_store
from ..codes.suite import SuiteEntry, benchmark_suite
from ..ilp.registry import backend_request_token
from ..core.machine import ProcessorModel, superscalar
from ..errors import SolverError, SpillRequiredError
from ..reduction import reduce_saturation_exact, reduce_saturation_multi_budget
from ..saturation import greedy_saturation
from .engine import BatchEngine
from .reporting import format_breakdown, format_table
from .supervisor import ItemOutcome

__all__ = [
    "PAPER_BREAKDOWN",
    "ReductionComparison",
    "ReductionOptimalityReport",
    "run_reduction_optimality",
]

#: The paper's reported percentages, used as the reference column in reports.
PAPER_BREAKDOWN: Dict[str, float] = {
    "RS=RS* ILP=ILP*": 72.22,
    "RS=RS* ILP<ILP*": 18.5,
    "RS>RS* ILP=ILP*": 4.63,
    "RS>RS* ILP<ILP*": 0.93,
    "RS>RS* ILP>ILP*": 3.7,
}

_IMPOSSIBLE = ("RS=RS* ILP>ILP*", "RS<RS*")


@dataclass(frozen=True)
class ReductionComparison:
    """Heuristic vs optimal reduction on one (DAG, type, budget) instance."""

    name: str
    rtype: str
    nodes: int
    budget: int
    original_rs: int
    rs_exact: int          # reduced saturation achieved by the optimal method
    rs_heuristic: int      # reduced saturation achieved by the heuristic
    ilp_exact: int         # critical path increase of the optimal method
    ilp_heuristic: int     # critical path increase of the heuristic
    arcs_exact: int
    arcs_heuristic: int
    time_exact: float
    time_heuristic: float
    heuristic_success: bool

    @property
    def category(self) -> str:
        if self.rs_exact < self.rs_heuristic:
            return "RS<RS*"
        if self.rs_exact == self.rs_heuristic:
            if self.ilp_exact == self.ilp_heuristic:
                return "RS=RS* ILP=ILP*"
            if self.ilp_exact < self.ilp_heuristic:
                return "RS=RS* ILP<ILP*"
            return "RS=RS* ILP>ILP*"
        if self.ilp_exact == self.ilp_heuristic:
            return "RS>RS* ILP=ILP*"
        if self.ilp_exact < self.ilp_heuristic:
            return "RS>RS* ILP<ILP*"
        return "RS>RS* ILP>ILP*"


@dataclass(frozen=True)
class ReductionOptimalityReport:
    """Aggregated results of the reduction-optimality experiment."""

    comparisons: List[ReductionComparison] = field(default_factory=list)
    spill_instances: int = 0
    #: Summed warm-engine counters (dv_patches, pair_verdicts_reused,
    #: schedule_repairs, ...) of every heuristic budget ladder, so the
    #: long-running sweeps report how much of their work the incremental
    #: candidate engine answered warm.  Deterministic (counter sums only,
    #: no timings), so stored cold/warm reports stay byte-identical.
    engine_counters: Dict[str, int] = field(default_factory=dict)
    #: Supervised-execution records, one per dispatched DAG task; excluded
    #: from every table so chaos/retry runs keep byte-identical reports.
    item_outcomes: List[ItemOutcome] = field(default_factory=list)

    @property
    def instances(self) -> int:
        return len(self.comparisons)

    def category_counts(self) -> Dict[str, int]:
        counts = {key: 0 for key in PAPER_BREAKDOWN}
        for impossible in _IMPOSSIBLE:
            counts[impossible] = 0
        for c in self.comparisons:
            counts[c.category] = counts.get(c.category, 0) + 1
        return counts

    def category_percentages(self) -> Dict[str, float]:
        counts = self.category_counts()
        total = sum(counts.values())
        if total == 0:
            return {k: 0.0 for k in counts}
        return {k: 100.0 * v / total for k, v in counts.items()}

    @property
    def impossible_cases_observed(self) -> int:
        counts = self.category_counts()
        return sum(counts.get(key, 0) for key in _IMPOSSIBLE)

    @property
    def dominant_category(self) -> str:
        counts = self.category_counts()
        return max(counts, key=lambda k: counts[k]) if counts else ""

    def to_table(self) -> str:
        rows = [
            (
                c.name,
                c.rtype,
                c.budget,
                c.original_rs,
                c.rs_exact,
                c.rs_heuristic,
                c.ilp_exact,
                c.ilp_heuristic,
                c.category,
            )
            for c in self.comparisons
        ]
        return format_table(
            ["benchmark", "type", "R", "RS0", "RS", "RS*", "ILP", "ILP*", "category"],
            rows,
            title="RS reduction: optimal (RS, ILP) vs heuristic (RS*, ILP*)",
        )

    def breakdown_report(self) -> str:
        return format_breakdown(
            self.category_percentages(),
            self.category_counts(),
            title="Optimality categories (paper Section 5)",
            paper_reference=PAPER_BREAKDOWN,
        )

    def engine_summary(self) -> str:
        """One line of warm-engine counters (empty when nothing was summed)."""

        if not self.engine_counters:
            return ""
        return "heuristic engine: " + ", ".join(
            f"{key}={value}" for key, value in sorted(self.engine_counters.items())
        )


def _budgets_for(rs: int, budgets: Optional[Sequence[int]]) -> List[int]:
    """Register budgets to exercise for a DAG whose saturation is *rs*."""

    if budgets is not None:
        return [b for b in budgets if 1 <= b < rs]
    picks = {rs - 1, max(2, (2 * rs) // 3), max(2, rs // 2)}
    return sorted(b for b in picks if 1 <= b < rs)


def _reduction_instance(
    task: Tuple[SuiteEntry, Optional[Sequence[int]], ProcessorModel, Optional[float]]
) -> Tuple[List[ReductionComparison], int, Dict[str, int]]:
    """Batch worker for one DAG: all its register types and budgets, plus spills.

    Module-level so the process policy can pickle it.  One task covers the
    whole DAG because its instances share one analysis context, and the
    cold-cache timing protocol below must not race with another worker
    invalidating that context.  The spill count rides along; the caller
    sums in input order.
    """

    entry, budgets, machine, time_limit = task
    comparisons: List[ReductionComparison] = []
    spills = 0
    engine_counters: Dict[str, int] = {}
    for rtype in entry.ddg.register_types():
        base = greedy_saturation(entry.ddg, rtype)
        budget_list = _budgets_for(base.rs, budgets)
        if not budget_list:
            continue
        # Warm start across budgets: the serializations applied for budget R
        # are a prefix of those applied for any R' < R, so one session
        # serves the whole budget ladder (descending) instead of rebuilding
        # per budget.  Per-budget results are byte-identical to standalone
        # runs, and each result's wall_time is the cumulative cost down to
        # its budget (what a standalone run would have paid), keeping the
        # reported exact-vs-heuristic timings row-comparable.  The ladder is
        # built lazily on the first exact success so instances where the
        # optimal method only spills or times out never pay for it.
        heuristic_results = None
        for budget in budget_list:
            # The exact method starts from a cold cache so its timing keeps
            # the seed semantics (it pays for its own analyses).
            context_for(entry.ddg).invalidate()
            t0 = time.perf_counter()
            try:
                exact = reduce_saturation_exact(
                    entry.ddg, rtype, budget, machine=machine, time_limit=time_limit
                )
            except SpillRequiredError:
                spills += 1
                continue
            except SolverError:
                # The optimal intLP timed out on this instance; the paper
                # faced the same multi-day runs and simply reports on the
                # instances it could prove optimal.
                continue
            t_exact = time.perf_counter() - t0
            if heuristic_results is None:
                context_for(entry.ddg).invalidate()
                heuristic_results = reduce_saturation_multi_budget(
                    entry.ddg, rtype, budget_list, machine=machine
                )
                # The ladder's engine stats are cumulative per session, so
                # the smallest budget's snapshot is the whole ladder's total
                # (counters only: deterministic, unlike the stage timers).
                final = heuristic_results[min(heuristic_results)]
                for key, value in final.details.get("engine_stats", {}).items():
                    if isinstance(value, int):
                        engine_counters[key] = engine_counters.get(key, 0) + value
            heuristic = heuristic_results[budget]
            t_heur = heuristic.wall_time
            comparisons.append(
                ReductionComparison(
                    name=entry.name,
                    rtype=rtype.name,
                    nodes=entry.ddg.n,
                    budget=budget,
                    original_rs=base.rs,
                    rs_exact=exact.achieved_rs,
                    rs_heuristic=heuristic.achieved_rs,
                    ilp_exact=exact.ilp_loss,
                    ilp_heuristic=heuristic.ilp_loss,
                    arcs_exact=exact.arcs_added,
                    arcs_heuristic=heuristic.arcs_added,
                    time_exact=t_exact,
                    time_heuristic=t_heur,
                    heuristic_success=heuristic.success,
                )
            )
    return comparisons, spills, engine_counters


def run_reduction_optimality(
    suite: Optional[Sequence[SuiteEntry]] = None,
    machine: Optional[ProcessorModel] = None,
    budgets: Optional[Sequence[int]] = None,
    max_nodes: int = 22,
    time_limit: Optional[float] = 120.0,
    engine: Union[None, str, BatchEngine] = None,
) -> ReductionOptimalityReport:
    """Run the reduction-optimality experiment.

    For every (DAG, register type) whose Greedy-k saturation exceeds the
    candidate budgets, both reduction methods run and the outcome is
    classified.  Instances where even the optimal method must spill are
    counted separately (both methods agree there is nothing to compare).
    *engine* fans the instances out over batch workers with deterministic
    ordering.
    """

    if suite is None:
        suite = benchmark_suite(max_size=max_nodes)
    machine = machine or superscalar()
    tasks = [
        (entry, budgets, machine, time_limit)
        for entry in suite
        if entry.size <= max_nodes
    ]
    results, item_outcomes = BatchEngine.coerce(engine).map_with_outcomes(
        _reduction_instance,
        tasks,
        store=active_store(),
        # .v2: the worker payload gained the engine-counter sum; the bumped
        # query keeps pre-PR-5 stored 2-tuples from being unpacked here.
        query="experiment.reduction_optimality.v2",
        key_fn=lambda task: (
            context_for(task[0].ddg).graph_hash(),
            {
                "name": task[0].name,
                "budgets": None if task[1] is None else tuple(task[1]),
                "machine": repr(task[2]),
                "time_limit": task[3],
                # The workers solve with backend="auto"; fold the env
                # override in so a forced backend never reads results
                # another backend produced.
                "backend": backend_request_token("auto"),
            },
        ),
    )
    comparisons: List[ReductionComparison] = []
    spills = 0
    counters: Dict[str, int] = {}
    for instance_comparisons, instance_spills, instance_counters in results:
        comparisons.extend(instance_comparisons)
        spills += instance_spills
        for key, value in instance_counters.items():
            counters[key] = counters.get(key, 0) + value
    return ReductionOptimalityReport(
        comparisons,
        spill_instances=spills,
        engine_counters=counters,
        item_outcomes=item_outcomes,
    )
