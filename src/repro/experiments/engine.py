"""Deterministic batch execution for suite-scale experiment runs.

Every experiment of the harness has the same shape: a list of independent
(DAG, register type, ...) instances, one expensive analysis per instance, a
report aggregating the results.  Related work on parallel CSP solving
(Menouer & Le Cun's deterministic partitioning in Bobpp) shows that
partitioning such independent combinatorial instances across workers is the
standard route to throughput -- and that determinism must be designed in,
not hoped for.

:class:`BatchEngine` provides exactly that contract:

* instances are dispatched over :mod:`concurrent.futures` workers
  (``thread`` or ``process`` policy) or run inline (``serial`` policy);
* results always come back **in input order**, whatever order the workers
  finished in, so a report produced by a parallel run is byte-identical to
  the serial one (``tests/test_experiments_engine.py`` pins that down);
* the first worker exception propagates to the caller unchanged, like a
  plain ``for`` loop.

The ``process`` policy requires the task function and its payload to be
picklable -- every experiment worker in this package is a module-level
function over dataclass payloads for that reason.  Thread workers share the
:mod:`repro.analysis.context` caches; process workers each build their own.

Two optional hooks extend the contract without changing it:

* ``plan`` rewrites every item deterministically in the dispatching process
  before any worker sees it -- this is how experiments assign per-instance
  solver backends (a declared, ordered property of the instance, following
  Bobpp's reproducible-partitioning discipline, instead of a choice made
  inside a racing worker);
* ``store``/``query``/``key_fn`` consult the cross-run
  :class:`~repro.analysis.store.ResultStore` *before* dispatching: items
  whose result is already stored never reach a worker, misses are computed
  as usual (same policy, same ordering) and written back.  Results still
  come back in input order, so a warm report is byte-identical to a cold
  one.

Fault tolerance lives one layer up, in
:mod:`repro.experiments.supervisor`: attaching a
:class:`~repro.experiments.supervisor.SupervisorConfig` (or setting
``REPRO_TIMEOUT``/``REPRO_RETRIES``/``REPRO_FAULTS``) routes dispatch
through the supervised path -- per-item timeouts, bounded retry with
deterministic backoff, broken-pool recovery with a
``process -> thread -> serial`` degradation ladder, and straggler
re-dispatch -- while :meth:`BatchEngine.map_with_outcomes` surfaces a
structured :class:`~repro.experiments.supervisor.ItemOutcome` per item.
Without any of that configured, dispatch is exactly the plain pool above.

The ``fleet`` policy goes one step further: :mod:`repro.fleet` leases items
to a broker-supervised fleet of worker processes over local sockets
(heartbeat liveness, lease expiry and reassignment, work stealing,
at-least-once delivery made idempotent through the result store), and
degrades to the local supervised pool when the fleet substrate fails.
Results still come back in input order, so a fleet report is byte-identical
to a serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

from ..analysis import shm
from ..analysis.store import ResultStore
from .supervisor import ItemOutcome, Supervisor, SupervisorConfig

__all__ = ["BatchEngine", "run_batch", "POLICIES"]

T = TypeVar("T")
R = TypeVar("R")

#: Recognised execution policies, in increasing order of isolation.
POLICIES = ("serial", "thread", "process", "fleet")

#: Internal miss marker for store lookups (results may legitimately be falsy).
_MISS = object()


@dataclass(frozen=True)
class BatchEngine:
    """An execution policy for mapping a task over independent instances.

    Parameters
    ----------
    policy:
        ``"serial"`` (run inline, the default), ``"thread"`` or
        ``"process"`` (:mod:`concurrent.futures` pools), or ``"fleet"``
        (broker-supervised worker processes over local sockets, see
        :mod:`repro.fleet`).
    workers:
        Worker count for the parallel policies; defaults to the CPU count.
    supervisor:
        Optional :class:`~repro.experiments.supervisor.SupervisorConfig`
        enabling fault-tolerant dispatch (per-item timeouts, retries with
        deterministic backoff, pool recovery).  ``None`` (the default)
        dispatches unsupervised -- unless the environment asks otherwise
        (``REPRO_TIMEOUT``/``REPRO_RETRIES``, or an active ``REPRO_FAULTS``
        plan), so chaos CI runs need no code changes.
    """

    policy: str = "serial"
    workers: Optional[int] = None
    supervisor: Optional[SupervisorConfig] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown engine policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("the engine needs at least one worker")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def coerce(cls, value: Union[None, str, "BatchEngine"]) -> "BatchEngine":
        """Accept ``None`` (serial), a spec string, or a ready engine."""

        if value is None:
            return cls()
        if isinstance(value, BatchEngine):
            return value
        return cls.from_spec(value)

    @classmethod
    def from_spec(cls, spec: str) -> "BatchEngine":
        """Parse ``"serial"``, ``"thread"``, ``"process"``, ``"fleet"``, or ``"thread:4"``."""

        policy, _, count = spec.strip().partition(":")
        workers = int(count) if count else None
        return cls(policy=policy or "serial", workers=workers)

    @classmethod
    def from_environment(cls, default: str = "serial") -> "BatchEngine":
        """Engine described by ``REPRO_ENGINE`` (e.g. ``process:8``), if set."""

        return cls.from_spec(os.environ.get("REPRO_ENGINE", default))

    def resolved_workers(self, n_items: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, n_items))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        plan: Optional[Callable[[T], T]] = None,
        store: Optional[ResultStore] = None,
        query: str = "",
        key_fn: Optional[Callable[[T], Tuple[str, object]]] = None,
    ) -> List[R]:
        """Apply *fn* to every item, returning results in input order.

        ``Executor.map`` already yields results in submission order, which
        is what makes parallel reports reproduce the serial ones exactly;
        the engine only adds the policy dispatch and the single-item
        fast path.

        ``plan`` (optional) deterministically rewrites each item before
        dispatch -- e.g. resolving a ``backend="auto"`` field to a concrete
        solver backend in the dispatching process.  With ``store`` +
        ``query`` + ``key_fn`` (mapping an item to its ``(graph_hash,
        params)`` store key) the cross-run result store is consulted first:
        stored items are never dispatched, computed ones are written back.
        """

        results, _ = self.map_with_outcomes(
            fn, items, plan=plan, store=store, query=query, key_fn=key_fn
        )
        return results

    def map_with_outcomes(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        plan: Optional[Callable[[T], T]] = None,
        store: Optional[ResultStore] = None,
        query: str = "",
        key_fn: Optional[Callable[[T], Tuple[str, object]]] = None,
    ) -> Tuple[List[R], List[ItemOutcome]]:
        """Like :meth:`map`, also returning one :class:`ItemOutcome` per item.

        Outcomes record how each result was obtained (attempts, policy,
        fault history, or ``"stored"`` for store hits).  They describe this
        run's *execution*, never its *values*: they are not written to the
        store and must stay out of report bytes.
        """

        work: List[T] = list(items)
        if plan is not None:
            work = [plan(item) for item in work]
        supervisor = self.supervisor
        if supervisor is None:
            supervisor = SupervisorConfig.from_environment()
        if store is not None and key_fn is not None:
            keys = [key_fn(item) for item in work]
            results: List[object] = [
                store.get(ghash, query, params, default=_MISS)
                for ghash, params in keys
            ]
            outcomes = [
                ItemOutcome(index=i, status="stored", attempts=0, policy=self.policy)
                for i in range(len(work))
            ]
            miss = [i for i, r in enumerate(results) if r is _MISS]
            computed, miss_outcomes = self._dispatch(
                fn, [work[i] for i in miss], supervisor,
                store=store, query=query, keys=[keys[i] for i in miss],
            )
            for i, value, outcome in zip(miss, computed, miss_outcomes):
                ghash, params = keys[i]
                if self.policy == "fleet":
                    # The fleet broker already rendezvoused each result
                    # through ``put_if_absent`` as it arrived (crash-safe,
                    # first-fully-written wins); this is an idempotent no-op
                    # that only fills genuinely missing entries.
                    value, _ = store.put_if_absent(ghash, query, params, value)
                else:
                    store.put(ghash, query, params, value)
                results[i] = value
                outcome.index = i
                outcomes[i] = outcome
            return results, outcomes  # type: ignore[return-value]
        return self._dispatch(fn, work, supervisor)

    def _dispatch(
        self,
        fn: Callable[[T], R],
        work: Sequence[T],
        supervisor: Optional[SupervisorConfig] = None,
        *,
        store: Optional[ResultStore] = None,
        query: str = "",
        keys: Optional[Sequence[Tuple[str, object]]] = None,
    ) -> Tuple[List[R], List[ItemOutcome]]:
        exporter = None
        if self.policy in ("process", "fleet") and len(work) > 1 and shm.enabled():
            # Cross-process policies pickle every task item; export each
            # distinct graph into shared memory once so the per-item
            # payload shrinks to a segment name.  Segments live until
            # every worker result has been collected.
            exporter = shm.GraphExporter()
            work = [shm.pack_item(exporter, item) for item in work]
        try:
            if self.policy == "fleet":
                from ..fleet import run_fleet  # deferred: avoids an import cycle

                return run_fleet(  # type: ignore[return-value]
                    fn, work,
                    workers=self.resolved_workers(len(work)),
                    supervisor=supervisor,
                    store=store, query=query, keys=keys,
                )
            if supervisor is not None:
                runner = Supervisor(
                    self.policy, self.resolved_workers(len(work)), supervisor
                )
                return runner.run(fn, work)  # type: ignore[return-value]
            outcomes = [
                ItemOutcome(index=i, policy=self.policy) for i in range(len(work))
            ]
            if self.policy == "serial" or len(work) <= 1:
                return [fn(item) for item in work], outcomes
            pool_cls = (
                ThreadPoolExecutor if self.policy == "thread" else ProcessPoolExecutor
            )
            with pool_cls(max_workers=self.resolved_workers(len(work))) as pool:
                futures = [pool.submit(fn, item) for item in work]
                try:
                    return [future.result() for future in futures], outcomes
                except BaseException:
                    # Don't let a failed batch keep burning CPU behind the
                    # caller's back: drop everything not yet running, then
                    # let the ``with`` block reap the in-flight remainder.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        finally:
            if exporter is not None:
                exporter.close()


def run_batch(
    fn: Callable[[T], R],
    items: Iterable[T],
    engine: Union[None, str, BatchEngine] = None,
    **map_kwargs,
) -> List[R]:
    """One-shot convenience wrapper: ``BatchEngine.coerce(engine).map(fn, items)``."""

    return BatchEngine.coerce(engine).map(fn, items, **map_kwargs)
