"""Section-5 experiment #1: optimality of the register-saturation heuristic.

For every DAG of the experiment population and every register type it
defines, compute the Greedy-k approximation ``RS*`` and the exact value
``RS`` (Section-3 intLP), and report the error distribution.  The paper's
finding: "the maximal empirical error is one register (in very few cases)";
``RS* > RS`` is impossible because the heuristic exhibits a valid witness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.context import context_for
from ..analysis.store import active_store
from ..codes.suite import SuiteEntry, benchmark_suite
from ..ilp import default_registry
from ..saturation import exact_saturation, greedy_saturation
from .engine import BatchEngine
from .reporting import format_table
from .supervisor import ItemOutcome

__all__ = ["RSComparison", "RSOptimalityReport", "run_rs_optimality"]


@dataclass(frozen=True)
class RSComparison:
    """Heuristic vs exact saturation on one (DAG, register type) instance."""

    name: str
    category: str
    rtype: str
    nodes: int
    edges: int
    rs_exact: int
    rs_heuristic: int
    time_exact: float
    time_heuristic: float
    backend: str = ""

    @property
    def error(self) -> int:
        """``RS - RS*`` (non-negative when the heuristic is admissible)."""

        return self.rs_exact - self.rs_heuristic

    @property
    def heuristic_is_optimal(self) -> bool:
        return self.error == 0


@dataclass(frozen=True)
class RSOptimalityReport:
    """Aggregated results of the RS-optimality experiment."""

    comparisons: List[RSComparison] = field(default_factory=list)
    #: Supervised-execution records, one per dispatched task (a task bundles
    #: one DAG's register types).  Not part of any table -- report bytes
    #: stay identical whether or not faults or retries occurred.
    item_outcomes: List[ItemOutcome] = field(default_factory=list)

    @property
    def instances(self) -> int:
        return len(self.comparisons)

    @property
    def max_error(self) -> int:
        return max((c.error for c in self.comparisons), default=0)

    @property
    def min_error(self) -> int:
        return min((c.error for c in self.comparisons), default=0)

    @property
    def optimal_count(self) -> int:
        return sum(1 for c in self.comparisons if c.heuristic_is_optimal)

    @property
    def optimal_percentage(self) -> float:
        if not self.comparisons:
            return 100.0
        return 100.0 * self.optimal_count / len(self.comparisons)

    def error_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for c in self.comparisons:
            hist[c.error] = hist.get(c.error, 0) + 1
        return dict(sorted(hist.items()))

    def mean_speedup(self) -> float:
        """Geometric-mean ratio of exact to heuristic wall time."""

        import math

        ratios = [
            c.time_exact / c.time_heuristic
            for c in self.comparisons
            if c.time_heuristic > 0 and c.time_exact > 0
        ]
        if not ratios:
            return float("nan")
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def to_table(self) -> str:
        rows = [
            (
                c.name,
                c.rtype,
                c.nodes,
                c.rs_exact,
                c.rs_heuristic,
                c.error,
                f"{c.time_exact:.3f}",
                f"{c.time_heuristic:.4f}",
                c.backend,
            )
            for c in self.comparisons
        ]
        return format_table(
            ["benchmark", "type", "n", "RS", "RS*", "error", "t_exact(s)",
             "t_heur(s)", "backend"],
            rows,
            title="Register saturation: heuristic (RS*) vs optimal (RS)",
        )

    def summary_lines(self) -> List[str]:
        hist = self.error_histogram()
        return [
            f"instances analysed           : {self.instances}",
            f"heuristic exactly optimal    : {self.optimal_count} ({self.optimal_percentage:.2f}%)",
            f"maximal empirical error      : {self.max_error} register(s)",
            f"error histogram (error=count): {hist}",
            f"geo-mean exact/heuristic time: {self.mean_speedup():.1f}x",
        ]


def _rs_instance(
    task: Tuple[SuiteEntry, Optional[float], str]
) -> List[RSComparison]:
    """Module-level batch worker (picklable for the process policy).

    One task covers *all* register types of one DAG: the instances share the
    DAG's analysis context, and the cold-cache timing protocol below is only
    meaningful when no other worker invalidates that context concurrently.
    The solver backend arrives pre-resolved by the dispatcher's plan hook --
    a worker never makes that choice.
    """

    entry, time_limit, backend = task
    comparisons: List[RSComparison] = []
    for rtype in entry.ddg.register_types():
        # Cold caches per timed section: each method pays for its own
        # analyses, as in the seed, so the timing comparison stays
        # meaningful.
        context_for(entry.ddg).invalidate()
        t0 = time.perf_counter()
        heuristic = greedy_saturation(entry.ddg, rtype)
        t_heur = time.perf_counter() - t0
        context_for(entry.ddg).invalidate()
        t0 = time.perf_counter()
        exact = exact_saturation(entry.ddg, rtype, backend=backend, time_limit=time_limit)
        t_exact = time.perf_counter() - t0
        comparisons.append(
            RSComparison(
                name=entry.name,
                category=entry.category,
                rtype=rtype.name,
                nodes=entry.ddg.n,
                edges=entry.ddg.m,
                rs_exact=exact.rs,
                rs_heuristic=heuristic.rs,
                time_exact=t_exact,
                time_heuristic=t_heur,
                backend=str(exact.details.get("backend", backend)) or backend,
            )
        )
    return comparisons


def _plan_rs_task(
    task: Tuple[SuiteEntry, Optional[float], str]
) -> Tuple[SuiteEntry, Optional[float], str]:
    """Resolve ``backend="auto"`` per instance, in the dispatching process.

    The Section-3 model has O(n^2) integer variables, so the registry's
    size policy is consulted with that estimate; the resolved name becomes
    a declared property of the task (deterministic whatever the engine
    policy or worker timing).
    """

    entry, time_limit, backend = task
    if backend == "auto":
        backend = default_registry().choose_by_size(entry.ddg.n ** 2).name
    return (entry, time_limit, backend)


def run_rs_optimality(
    suite: Optional[Sequence[SuiteEntry]] = None,
    max_nodes: int = 26,
    time_limit: Optional[float] = 120.0,
    engine: Union[None, str, BatchEngine] = None,
    backend: str = "auto",
) -> RSOptimalityReport:
    """Run the RS-optimality experiment over *suite* (the default population).

    ``max_nodes`` keeps the intLP instances tractable; the paper likewise
    notes that reaching optimality "was very time consuming (from many
    seconds to many days)" and restricts itself to loop bodies.  *engine*
    fans the instances out over batch workers with deterministic ordering;
    ``backend`` routes the exact solves ("auto" = per-instance registry
    choice, resolved before dispatch and recorded per comparison).  With
    the ambient result store active, instances solved by a previous run are
    answered from disk without dispatching a worker.
    """

    if suite is None:
        suite = benchmark_suite(max_size=max_nodes)
    tasks = [(entry, time_limit, backend) for entry in suite if entry.size <= max_nodes]
    per_entry, item_outcomes = BatchEngine.coerce(engine).map_with_outcomes(
        _rs_instance,
        tasks,
        plan=_plan_rs_task,
        store=active_store(),
        query="experiment.rs_optimality",
        key_fn=lambda task: (
            context_for(task[0].ddg).graph_hash(),
            {"name": task[0].name, "time_limit": task[1], "backend": task[2]},
        ),
    )
    return RSOptimalityReport(
        [c for chunk in per_entry for c in chunk], item_outcomes=item_outcomes
    )
