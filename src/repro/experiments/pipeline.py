"""The Figure-1 pipeline experiment: early register-pressure management end to end.

The paper's Figure 1 shows the proposed compiler flow::

    DAG -> [RS computation] -> (RS <= R_t ?) -> [RS reduction] -> modified DAG
        -> instruction scheduling -> register allocation

This experiment runs that flow on a benchmark DAG and a machine, and checks
the paper's promise: after the (possibly trivial) reduction pass the
scheduler can ignore registers entirely and the allocator never needs to
spill.  It also runs the baseline the paper argues against -- scheduling
first and iteratively spilling -- so the benefit can be quantified (memory
operations avoided, makespan difference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..allocation import linear_scan_allocate, schedule_with_spilling
from ..analysis.context import context_for
from ..analysis.store import active_store
from ..codes.suite import SuiteEntry, benchmark_suite
from ..core.machine import ProcessorModel, superscalar
from ..core.types import RegisterType
from ..reduction import reduce_saturation_heuristic
from ..saturation import greedy_saturation, trivially_within_budget
from ..scheduling import evaluate_schedule, list_schedule
from .engine import BatchEngine
from .reporting import format_table
from .supervisor import ItemOutcome

__all__ = ["PipelineOutcome", "PipelineReport", "run_pipeline", "run_pipeline_experiment"]


@dataclass(frozen=True)
class PipelineOutcome:
    """End-to-end result of the RS-managed flow on one (DAG, type, machine) instance."""

    name: str
    rtype: str
    registers: int
    rs_before: int
    rs_after: int
    reduction_needed: bool
    reduction_success: bool
    arcs_added: int
    schedule_length: int
    registers_used: int
    spill_free: bool
    baseline_spills: int
    baseline_memory_ops: int
    baseline_schedule_length: int
    wall_time: float


@dataclass(frozen=True)
class PipelineReport:
    outcomes: List[PipelineOutcome] = field(default_factory=list)
    #: Per-item execution records (attempts, policy, fault history) from the
    #: supervised batch layer.  Deliberately excluded from :meth:`to_table`:
    #: a chaos run's table must stay byte-identical to the reference run's.
    item_outcomes: List[ItemOutcome] = field(default_factory=list)

    @property
    def all_spill_free(self) -> bool:
        return all(o.spill_free for o in self.outcomes if o.reduction_success)

    @property
    def spill_free_count(self) -> int:
        return sum(1 for o in self.outcomes if o.spill_free)

    def to_table(self) -> str:
        rows = [
            (
                o.name,
                o.rtype,
                o.registers,
                o.rs_before,
                o.rs_after,
                o.arcs_added,
                o.schedule_length,
                o.registers_used,
                "yes" if o.spill_free else "NO",
                o.baseline_memory_ops,
                o.baseline_schedule_length,
            )
            for o in self.outcomes
        ]
        return format_table(
            [
                "benchmark",
                "type",
                "R",
                "RS0",
                "RS'",
                "arcs",
                "len",
                "regs",
                "no-spill",
                "base-mem",
                "base-len",
            ],
            rows,
            title="Figure-1 pipeline: RS management vs schedule-then-spill baseline",
        )


def run_pipeline(
    entry: SuiteEntry,
    rtype: RegisterType,
    machine: ProcessorModel,
    registers: Optional[int] = None,
    compare_baseline: bool = True,
) -> PipelineOutcome:
    """Run the Figure-1 flow on one DAG/type and compare against the spill baseline.

    The structural analyses (saturation, priorities, critical paths) are
    shared through the graph's :class:`~repro.analysis.context.AnalysisContext`,
    so the four stages query them once.  With ``compare_baseline=False`` the
    schedule-then-spill baseline is skipped (its columns read 0) -- that is
    the pure Figure-1 flow, which ``benchmarks/bench_analysis_cache.py``
    times cached vs. uncached.
    """

    start = time.perf_counter()
    budget = registers if registers is not None else machine.registers(rtype)
    ddg = entry.ddg
    ctx = context_for(ddg)

    # Step 1: register saturation computation (skippable when |V_R,t| <= R_t).
    rs_before = greedy_saturation(ddg, rtype, ctx=ctx).rs
    reduction_needed = not trivially_within_budget(ddg, rtype, budget) and rs_before > budget

    # Step 2: register saturation reduction (only when needed).
    if reduction_needed:
        reduction = reduce_saturation_heuristic(ddg, rtype, budget, machine=machine)
        working = reduction.extended_ddg
        rs_after = reduction.achieved_rs
        arcs_added = reduction.arcs_added
        reduction_success = reduction.success
    else:
        working = ddg
        rs_after = rs_before
        arcs_added = 0
        reduction_success = True

    # Step 3: resource-constrained scheduling, register-blind.
    scheduled_ctx = context_for(working).bottom()
    scheduled = scheduled_ctx.ddg
    schedule = list_schedule(scheduled, machine, ctx=scheduled_ctx)
    metrics = evaluate_schedule(scheduled, schedule)

    # Step 4: register allocation.
    allocation = linear_scan_allocate(scheduled, schedule, rtype, registers=budget)

    # Baseline: combined scheduling with iterative spilling.
    if compare_baseline:
        baseline = schedule_with_spilling(ddg, rtype, budget, machine=machine)
        baseline_metrics = evaluate_schedule(baseline.ddg.with_bottom(), baseline.schedule)
        baseline_spills = len(baseline.spilled_values)
        baseline_memory_ops = baseline.memory_operations_added
        baseline_schedule_length = baseline_metrics.total_time
    else:
        baseline_spills = baseline_memory_ops = baseline_schedule_length = 0

    return PipelineOutcome(
        name=entry.name,
        rtype=rtype.name,
        registers=budget,
        rs_before=rs_before,
        rs_after=rs_after,
        reduction_needed=reduction_needed,
        reduction_success=reduction_success,
        arcs_added=arcs_added,
        schedule_length=metrics.total_time,
        registers_used=allocation.registers_used,
        spill_free=allocation.success,
        baseline_spills=baseline_spills,
        baseline_memory_ops=baseline_memory_ops,
        baseline_schedule_length=baseline_schedule_length,
        wall_time=time.perf_counter() - start,
    )


def _pipeline_instance(
    task: Tuple[SuiteEntry, RegisterType, ProcessorModel, Optional[int], bool]
) -> PipelineOutcome:
    """Module-level batch worker (picklable for the process policy)."""

    entry, rtype, machine, registers, compare_baseline = task
    return run_pipeline(
        entry, rtype, machine, registers=registers, compare_baseline=compare_baseline
    )


def run_pipeline_experiment(
    suite: Optional[Sequence[SuiteEntry]] = None,
    machine: Optional[ProcessorModel] = None,
    registers: Optional[int] = None,
    max_nodes: int = 40,
    engine: Union[None, str, BatchEngine] = None,
    compare_baseline: bool = True,
) -> PipelineReport:
    """Run the pipeline experiment over the benchmark suite.

    *engine* selects the batch execution policy (serial by default;
    ``"thread"``/``"process"`` fan the instances out over workers while
    keeping the report ordering identical to a serial run).
    """

    if suite is None:
        suite = benchmark_suite(max_size=max_nodes)
    machine = machine or superscalar()
    tasks = [
        (entry, rtype, machine, registers, compare_baseline)
        for entry in suite
        if entry.size <= max_nodes
        for rtype in entry.ddg.register_types()
    ]
    outcomes, item_outcomes = BatchEngine.coerce(engine).map_with_outcomes(
        _pipeline_instance,
        tasks,
        store=active_store(),
        query="experiment.pipeline",
        # The machine is a frozen dataclass whose repr covers every field
        # the flow can observe, so it keys the cache alongside the graph
        # content and the instance name the report rows carry.
        key_fn=lambda task: (
            context_for(task[0].ddg).graph_hash(),
            {
                "name": task[0].name,
                "rtype": task[1].name,
                "machine": repr(task[2]),
                "registers": task[3],
                "compare_baseline": task[4],
            },
        ),
    )
    return PipelineReport(list(outcomes), item_outcomes=item_outcomes)
