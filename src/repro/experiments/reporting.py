"""Plain-text report rendering for the experiment harness.

The paper reports its Section-5 results as in-text statistics; the harness
prints them as small aligned tables so the benchmark output can be compared
to the paper at a glance (and archived in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_breakdown", "section"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""

    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_breakdown(
    percentages: Mapping[str, float],
    counts: Mapping[str, int],
    title: str = "",
    paper_reference: Mapping[str, float] | None = None,
) -> str:
    """Render a category percentage breakdown, optionally next to the paper's numbers."""

    headers = ["category", "count", "measured %"]
    if paper_reference:
        headers.append("paper %")
    rows = []
    for key in percentages:
        row = [key, counts.get(key, 0), f"{percentages[key]:.2f}"]
        if paper_reference:
            ref = paper_reference.get(key)
            row.append("-" if ref is None else f"{ref:.2f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def section(title: str) -> str:
    """A visually separated section header for benchmark stdout."""

    bar = "=" * max(30, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"
