"""Supervised batch execution: timeouts, retries, pool recovery, outcomes.

:class:`~repro.experiments.engine.BatchEngine` alone implements the happy
path: every worker answers, no worker hangs, the pool never dies.  The
paper's exact intLP sweeps are multi-day computations, and the ROADMAP's
distributed-fleet direction makes workers *remote* -- at that scale the
unhappy paths are the common case.  This module wraps the engine's dispatch
with a supervisor implementing:

* **per-item wall-clock timeouts** -- an attempt that exceeds
  ``timeout`` seconds is abandoned and re-dispatched (the abandoned
  worker's late answer is still accepted if it lands first);
* **bounded retry with deterministic exponential backoff** --
  ``min(cap, base * factor**(attempt-1))`` seconds between attempts, a
  pure function of the attempt number (no jitter: reproducibility beats
  thundering-herd avoidance at this scale);
* **non-retryable failure classification** -- a
  :class:`~repro.errors.ReproError` whose :meth:`retryable` predicate is
  false (an infeasible intLP, a malformed graph) fails fast instead of
  burning retry budget on a deterministic failure;
* **crashed-pool recovery** -- a :class:`BrokenProcessPool` re-dispatches
  the surviving in-flight work to a fresh pool (budget-neutral for the
  innocent victims), degrading ``process -> thread -> serial`` after
  ``pool_failure_limit`` pool deaths;
* **straggler re-dispatch** -- once nothing is left to submit and workers
  idle, the oldest in-flight item is speculatively duplicated; the first
  answer wins (processed in deterministic input order when several land
  together);
* **structured item outcomes** -- every item yields an
  :class:`ItemOutcome` (attempts, policy, timings, fault history) that the
  experiment reports surface without changing their report bytes.

The supervisor changes *when and where* work runs, never *what* it
computes, so a supervised chaos run produces byte-identical reports to a
serial fault-free one (``tests/test_engine_faults.py`` pins that down).
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ReproError, TransientError
from ..testing.faults import FaultInjector, active_plan, is_corrupt_payload

__all__ = [
    "SupervisorConfig",
    "FaultEvent",
    "ItemOutcome",
    "ItemTimeout",
    "Supervisor",
    "outcomes_as_dicts",
]

#: Policy degradation ladder after repeated pool failures.
_DEGRADE = {"process": "thread", "thread": "serial", "serial": "serial"}


def _env_number(name, raw, convert, *, default, minimum):
    """Parse one numeric environment value, diagnosing the variable by name.

    An unset/empty value yields *default*; anything unparsable or below
    *minimum* raises a :class:`~repro.errors.ConfigurationError` naming the
    variable, so a typo surfaces at configuration time instead of as a bare
    ``ValueError`` somewhere inside the dispatch loop.
    """

    if not raw:
        return default
    try:
        value = convert(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{name}={raw!r} is not a valid {convert.__name__}"
        ) from exc
    if value < minimum:
        raise ConfigurationError(f"{name}={raw!r} must be >= {minimum}")
    return value


class ItemTimeout(TransientError):
    """Every attempt at one batch item exceeded the supervisor timeout."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout/backoff policy for supervised batch execution.

    ``timeout=None`` disables the per-item deadline (retries and pool
    recovery still apply).  Timeouts are enforced for the ``thread`` and
    ``process`` policies; a serial attempt runs inline and cannot be
    preempted (its failure and retry handling is identical otherwise).
    """

    timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    speculate: bool = True
    pool_failure_limit: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("the supervisor needs at least one attempt")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Deterministic delay before re-dispatching after attempt *attempt*."""

        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )

    @classmethod
    def from_environment(cls) -> Optional["SupervisorConfig"]:
        """The config implied by the environment, or ``None`` for "unsupervised".

        ``REPRO_TIMEOUT`` (seconds), ``REPRO_RETRIES`` (max attempts) and
        ``REPRO_SPECULATE`` (0/1) switch supervision on explicitly; an
        active ``REPRO_FAULTS`` plan switches it on implicitly (with a 30s
        default timeout), so a chaos run needs no further knobs and the
        fault-free fast path stays exactly the pre-supervisor dispatch.

        Malformed values raise one :class:`~repro.errors.ConfigurationError`
        naming the variable (``REPRO_TIMEOUT=-5`` is a mistake, not a
        request; ``REPRO_TIMEOUT=0`` explicitly means "no deadline").
        """

        timeout_env = os.environ.get("REPRO_TIMEOUT", "").strip()
        retries_env = os.environ.get("REPRO_RETRIES", "").strip()
        speculate_env = os.environ.get("REPRO_SPECULATE", "").strip()
        if not (timeout_env or retries_env or speculate_env) and active_plan() is None:
            return None
        timeout: Optional[float] = _env_number(
            "REPRO_TIMEOUT", timeout_env, float, default=30.0, minimum=0.0
        )
        if timeout == 0:  # REPRO_TIMEOUT=0 means "no deadline"
            timeout = None
        return cls(
            timeout=timeout,
            max_attempts=_env_number(
                "REPRO_RETRIES", retries_env, int, default=3, minimum=1
            ),
            speculate=speculate_env not in ("0", "no", "off", "false"),
        )


@dataclass
class FaultEvent:
    """One non-final attempt (or the final failure) of one batch item."""

    attempt: int
    kind: str  # "error" | "timeout" | "corrupt" | "pool-broken" | "non-retryable"
    detail: str = ""
    policy: str = "serial"
    elapsed: float = 0.0
    backoff: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
            "policy": self.policy,
            "elapsed": self.elapsed,
            "backoff": self.backoff,
        }


@dataclass
class ItemOutcome:
    """How one batch item reached its result (or failed to).

    ``status`` is ``"ok"`` (computed), ``"stored"`` (answered by the
    result store before dispatch) or ``"failed"``; ``faults`` records every
    unsuccessful attempt in order.  Outcomes ride on the experiment
    reports *next to* the tables -- they never enter the report bytes, so
    a chaos run's tables stay comparable to the reference run's.
    """

    index: int
    status: str = "ok"
    attempts: int = 1
    policy: str = "serial"
    speculative: bool = False
    wall_time: float = 0.0
    faults: List[FaultEvent] = field(default_factory=list)

    @property
    def faulted(self) -> bool:
        return bool(self.faults)

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "policy": self.policy,
            "speculative": self.speculative,
            "wall_time": self.wall_time,
            "faults": [event.as_dict() for event in self.faults],
        }


def outcomes_as_dicts(outcomes: Sequence[ItemOutcome]) -> List[Dict[str, object]]:
    """JSON-ready form of a run's outcomes (the CI fault-history artifact)."""

    return [outcome.as_dict() for outcome in outcomes]


class _AttemptTask:
    """Picklable worker-side wrapper applying the ambient fault plan.

    Process workers inherit ``REPRO_FAULTS`` through the environment and
    rebuild the injector locally; the parent pid distinguishes "really in a
    worker process" (where a planned ``kill`` may ``os._exit``) from
    thread/serial execution (where it must degrade to a crash).
    """

    def __init__(self, fn: Callable) -> None:
        self.fn = fn
        self.parent_pid = os.getpid()

    def __call__(self, packed: Tuple[int, int, object]):
        index, attempt, item = packed
        plan = active_plan()
        if plan is not None:
            injector = FaultInjector(plan)
            marker = injector.perturb(
                index, attempt, in_worker_process=os.getpid() != self.parent_pid
            )
            if marker is not None:
                return marker
        return self.fn(item)


class _Flight:
    """One in-flight attempt: which item, which attempt, and its deadline."""

    __slots__ = ("index", "attempt", "deadline", "timed_out", "speculative")

    def __init__(self, index: int, attempt: int, deadline: Optional[float],
                 speculative: bool) -> None:
        self.index = index
        self.attempt = attempt
        self.deadline = deadline
        self.timed_out = False
        self.speculative = speculative


class _ItemState:
    __slots__ = ("index", "item", "attempts_started", "resolved", "started_at",
                 "speculated_attempt")

    def __init__(self, index: int, item: object) -> None:
        self.index = index
        self.item = item
        self.attempts_started = 0
        self.resolved = False
        self.started_at: Optional[float] = None
        self.speculated_attempt = 0


class Supervisor:
    """Drives one supervised batch over a worker pool.

    One instance per :meth:`BatchEngine.map` call; not reusable.  Results
    come back in input order, exactly like the unsupervised dispatch.
    """

    def __init__(self, policy: str, workers: int, config: SupervisorConfig) -> None:
        self.policy = policy
        self.workers = max(1, workers)
        self.config = config
        self.pool_failures = 0

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, fn: Callable, items: Sequence[object]) -> Tuple[List[object], List[ItemOutcome]]:
        task = _AttemptTask(fn)
        outcomes = [ItemOutcome(index=i, policy=self.policy) for i in range(len(items))]
        if not items:
            return [], outcomes
        if self.policy == "serial" or len(items) == 1:
            results = [
                self._run_item_inline(task, i, item, outcomes[i], start_attempt=0)
                for i, item in enumerate(items)
            ]
            return results, outcomes
        results = self._run_parallel(task, list(items), outcomes)
        return results, outcomes

    # ------------------------------------------------------------------ #
    # Failure classification
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_retryable(exc: BaseException) -> bool:
        if isinstance(exc, ReproError):
            return exc.retryable()
        if isinstance(exc, pickle.PickleError):
            # An unpicklable payload or result is a deterministic property
            # of the item, not of the worker that tried to ship it --
            # retrying burns the whole budget reaching the same exception.
            return False
        if isinstance(exc, (AttributeError, TypeError)) and "pickle" in str(exc).lower():
            # CPython reports some serialization failures as AttributeError
            # ("Can't pickle local object ...") or TypeError ("cannot pickle
            # '...' object") rather than PicklingError; same determinism.
            return False
        return isinstance(exc, Exception)  # KeyboardInterrupt/SystemExit propagate

    # ------------------------------------------------------------------ #
    # Serial / inline execution (also the terminal degradation rung)
    # ------------------------------------------------------------------ #
    def _run_item_inline(self, task: _AttemptTask, index: int, item: object,
                         outcome: ItemOutcome, start_attempt: int) -> object:
        config = self.config
        attempt = start_attempt
        started = time.monotonic()
        while True:
            attempt += 1
            t0 = time.monotonic()
            try:
                value = task((index, attempt, item))
            except Exception as exc:
                elapsed = time.monotonic() - t0
                self._record_failure(outcome, attempt, exc, elapsed, policy="serial")
                time.sleep(config.backoff(attempt))
                continue
            elapsed = time.monotonic() - t0
            if is_corrupt_payload(value):
                self._record_corrupt(outcome, attempt, elapsed, policy="serial")
                time.sleep(config.backoff(attempt))
                continue
            outcome.status = "ok"
            outcome.attempts = attempt
            outcome.policy = "serial"
            outcome.wall_time = time.monotonic() - started
            return value

    def _record_failure(self, outcome: ItemOutcome, attempt: int, exc: BaseException,
                        elapsed: float, policy: str) -> None:
        """Record a failed attempt; raises when the failure is permanent."""

        detail = f"{type(exc).__name__}: {exc}"
        if not self._is_retryable(exc):
            outcome.faults.append(FaultEvent(attempt, "non-retryable", detail,
                                             policy, elapsed))
            outcome.status = "failed"
            outcome.attempts = attempt
            raise exc
        if attempt >= self.config.max_attempts:
            outcome.faults.append(FaultEvent(attempt, "error", detail, policy, elapsed))
            outcome.status = "failed"
            outcome.attempts = attempt
            raise exc
        outcome.faults.append(
            FaultEvent(attempt, "error", detail, policy, elapsed,
                       backoff=self.config.backoff(attempt))
        )

    def _record_corrupt(self, outcome: ItemOutcome, attempt: int, elapsed: float,
                        policy: str) -> None:
        if attempt >= self.config.max_attempts:
            outcome.faults.append(FaultEvent(attempt, "corrupt",
                                             "corrupt worker payload", policy, elapsed))
            outcome.status = "failed"
            outcome.attempts = attempt
            raise TransientError(
                f"item {outcome.index}: corrupt worker payload persisted across "
                f"{attempt} attempts"
            )
        outcome.faults.append(
            FaultEvent(attempt, "corrupt", "corrupt worker payload", policy, elapsed,
                       backoff=self.config.backoff(attempt))
        )

    # ------------------------------------------------------------------ #
    # Pool management
    # ------------------------------------------------------------------ #
    def _new_pool(self):
        pool_cls = ThreadPoolExecutor if self.policy == "thread" else ProcessPoolExecutor
        return pool_cls(max_workers=self.workers)

    @staticmethod
    def _teardown_pool(pool) -> None:
        """Abandon *pool* without waiting: cancel queued work, kill processes.

        A hung or poisoned worker must not keep burning CPU after the batch
        is decided -- process workers are terminated outright (their results
        are no longer wanted), thread workers finish their current task and
        exit (threads cannot be killed; injected hangs are finite).
        """

        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass

    # ------------------------------------------------------------------ #
    # Parallel supervised loop
    # ------------------------------------------------------------------ #
    def _run_parallel(self, task: _AttemptTask, items: List[object],
                      outcomes: List[ItemOutcome]) -> List[object]:
        config = self.config
        n = len(items)
        results: List[object] = [None] * n
        states = [_ItemState(i, item) for i, item in enumerate(items)]
        ready = deque(range(n))                 # item indices awaiting (re)submission
        retries: List[Tuple[float, int]] = []   # heap of (eligible_time, index)
        flight: Dict[object, _Flight] = {}      # future -> flight record
        unresolved = n
        pool = self._new_pool()
        failure: Optional[Tuple[int, BaseException]] = None

        def live_flights(index: int) -> int:
            return sum(
                1 for fl in flight.values()
                if fl.index == index and not fl.timed_out
            )

        def submit(index: int, *, speculative: bool = False) -> bool:
            """Dispatch one attempt; returns False when the pool just died."""

            nonlocal pool
            state = states[index]
            attempt = state.attempts_started if speculative else state.attempts_started + 1
            now = time.monotonic()
            if state.started_at is None:
                state.started_at = now
            deadline = None if config.timeout is None else now + config.timeout
            try:
                future = pool.submit(task, (index, attempt, state.item))
            except (BrokenProcessPool, RuntimeError):
                return False
            flight[future] = _Flight(index, attempt, deadline, speculative)
            if speculative:
                state.speculated_attempt = attempt
            else:
                state.attempts_started = attempt
            return True

        def resolve(fl: _Flight, value: object, now: float) -> None:
            nonlocal unresolved
            state = states[fl.index]
            state.resolved = True
            unresolved -= 1
            results[fl.index] = value
            outcome = outcomes[fl.index]
            outcome.status = "ok"
            outcome.attempts = fl.attempt
            outcome.policy = self.policy
            outcome.speculative = fl.speculative
            outcome.wall_time = now - (state.started_at or now)

        def schedule_retry(index: int, failed_attempt: int, now: float) -> None:
            heapq.heappush(retries, (now + config.backoff(failed_attempt), index))

        def fail(index: int, exc: BaseException) -> None:
            nonlocal failure
            if failure is None or index < failure[0]:
                failure = (index, exc)

        def pool_died(now: float) -> None:
            """A BrokenProcessPool: re-dispatch survivors to a fresh pool."""

            nonlocal pool
            self.pool_failures += 1
            # Victims: every unresolved item not already queued for a retry
            # or (re)submission -- that covers futures still in the flight
            # table *and* the ones just popped with BrokenProcessPool.
            scheduled = set(ready) | {index for _, index in retries}
            victims = [state.index for state in states
                       if not state.resolved and state.index not in scheduled
                       and state.attempts_started > 0]
            for index in victims:
                state = states[index]
                outcomes[index].faults.append(
                    FaultEvent(state.attempts_started, "pool-broken",
                               "process pool died; re-dispatching", self.policy)
                )
                # Budget-neutral for the victims: the culprit cannot be told
                # apart from the innocents, so nobody's attempt count grows;
                # termination is guaranteed by the degradation ladder below.
                state.attempts_started -= 1
                state.speculated_attempt = 0
                ready.append(index)
            flight.clear()
            self._teardown_pool(pool)
            if self.pool_failures > config.pool_failure_limit:
                degraded = _DEGRADE[self.policy]
                if degraded != self.policy:
                    self.policy = degraded
                    self.pool_failures = 0
            pool = None if self.policy == "serial" else self._new_pool()

        try:
            while unresolved and failure is None:
                now = time.monotonic()

                # Degraded all the way down: finish the survivors inline.
                if self.policy == "serial":
                    for state in states:
                        if not state.resolved:
                            value = self._run_item_inline(
                                task, state.index, state.item, outcomes[state.index],
                                start_attempt=state.attempts_started,
                            )
                            resolve(_Flight(state.index,
                                            outcomes[state.index].attempts, None, False),
                                    value, time.monotonic())
                    break

                # Promote due retries, then submit while capacity lasts.
                while retries and retries[0][0] <= now:
                    _, index = heapq.heappop(retries)
                    if not states[index].resolved:
                        ready.append(index)
                while ready and len(flight) < self.workers:
                    index = ready.popleft()
                    if states[index].resolved:
                        continue
                    if not submit(index):
                        ready.appendleft(index)
                        pool_died(now)
                        break
                if self.policy == "serial":
                    continue

                # Every slot is held by a timed-out straggler while work
                # waits: abandon the pool and start fresh (the stragglers'
                # items already have retries scheduled).
                if (ready or retries) and len(flight) >= self.workers and all(
                    fl.timed_out for fl in flight.values()
                ):
                    for future in list(flight):
                        del flight[future]
                    self._teardown_pool(pool)
                    pool = self._new_pool()
                    continue

                # Straggler speculation: pool otherwise idle, duplicate the
                # oldest still-hopeful attempt once.
                if (config.speculate and not ready and not retries
                        and 0 < len(flight) < self.workers):
                    candidates = sorted(
                        (fl.index for fl in flight.values()
                         if not fl.timed_out and not fl.speculative
                         and not states[fl.index].resolved
                         and states[fl.index].speculated_attempt
                         < states[fl.index].attempts_started),
                    )
                    if candidates and not submit(candidates[0], speculative=True):
                        pool_died(now)
                        continue

                if not flight:
                    if retries:
                        time.sleep(max(0.0, retries[0][0] - time.monotonic()))
                        continue
                    if ready:
                        continue
                    break  # nothing in flight, nothing to do

                # Wait for the next completion, retry eligibility or deadline.
                horizon: Optional[float] = None
                deadlines = [fl.deadline for fl in flight.values()
                             if fl.deadline is not None and not fl.timed_out]
                if deadlines:
                    horizon = min(deadlines)
                if retries:
                    horizon = retries[0][0] if horizon is None else min(horizon, retries[0][0])
                wait_timeout = None if horizon is None else max(0.0, horizon - time.monotonic())
                done, _ = wait(set(flight), timeout=wait_timeout,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()

                # Completions in deterministic input order (attempt breaks ties).
                broken = False
                for future in sorted(done, key=lambda f: (flight[f].index, flight[f].attempt)):
                    fl = flight.pop(future)
                    state = states[fl.index]
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:
                        if state.resolved or fl.timed_out:
                            continue  # a duplicate already answered / already retried
                        if live_flights(fl.index) > 0:
                            continue  # the twin attempt is still hopeful
                        try:
                            self._record_failure(outcomes[fl.index], fl.attempt, exc,
                                                 0.0, policy=self.policy)
                        except BaseException as permanent:
                            fail(fl.index, permanent)
                        else:
                            schedule_retry(fl.index, fl.attempt, now)
                        continue
                    if state.resolved:
                        continue
                    if is_corrupt_payload(value):
                        if fl.timed_out or live_flights(fl.index) > 0:
                            continue
                        try:
                            self._record_corrupt(outcomes[fl.index], fl.attempt, 0.0,
                                                 policy=self.policy)
                        except BaseException as permanent:
                            fail(fl.index, permanent)
                        else:
                            schedule_retry(fl.index, fl.attempt, now)
                        continue
                    resolve(fl, value, now)
                if broken:
                    pool_died(now)
                    continue

                # Deadline sweep: an attempt past its deadline is abandoned
                # (but its late answer would still be accepted above); when
                # the last hopeful attempt for an item times out, the item
                # retries -- or fails once its budget is spent.
                for fl in flight.values():
                    if fl.timed_out or fl.deadline is None or now < fl.deadline:
                        continue
                    fl.timed_out = True
                    state = states[fl.index]
                    if state.resolved or live_flights(fl.index) > 0:
                        continue
                    outcome = outcomes[fl.index]
                    attempt = state.attempts_started
                    if attempt >= config.max_attempts:
                        outcome.faults.append(
                            FaultEvent(attempt, "timeout",
                                       f"exceeded {config.timeout}s", self.policy,
                                       elapsed=config.timeout or 0.0)
                        )
                        outcome.status = "failed"
                        outcome.attempts = attempt
                        fail(fl.index, ItemTimeout(
                            f"item {fl.index} timed out on every one of "
                            f"{attempt} attempts ({config.timeout}s each)"
                        ))
                    else:
                        outcome.faults.append(
                            FaultEvent(attempt, "timeout",
                                       f"exceeded {config.timeout}s", self.policy,
                                       elapsed=config.timeout or 0.0,
                                       backoff=config.backoff(attempt))
                        )
                        schedule_retry(fl.index, attempt, now)
        finally:
            self._teardown_pool(pool)

        if failure is not None:
            raise failure[1]
        return results
