"""The fleet broker: leases, heartbeats, reassignment, idempotent merge.

One :class:`Broker` instance drives one batch.  Design points, following
the deterministic-partitioning discipline of Bobpp (Menouer & Le Cun,
PAPERS.md) and the replicated-convergence argument of Boucheneb & Imine
(PAPERS.md):

* **single-threaded state machine** -- every lease, reassignment and merge
  decision happens in one loop (only the connection *acceptor* runs on a
  side thread), so the scheduling policy is inspectable and the merged
  result vector is a pure function of the item values, which workers
  compute as pure functions of the items.  Whatever order results land in,
  the merge is input-ordered and therefore byte-identical to a serial run.
* **leases, not assignments** -- a worker holds an item under a deadline
  that its heartbeats extend (never past the absolute per-attempt
  timeout).  A lease whose deadline passes, or whose worker dies, expires
  and is deterministically requeued (lowest index first) with its fault
  recorded on the item's :class:`~repro.experiments.supervisor.ItemOutcome`.
* **at-least-once, idempotent** -- delivery faults (drops, duplicates,
  partitions) mean a result can arrive zero, one, or two times per
  attempt.  Zero is recovered by lease expiry; extras are verified against
  the first and dropped.  With a :class:`~repro.analysis.store.ResultStore`
  attached, every resolution goes through
  :meth:`~repro.analysis.store.ResultStore.put_if_absent` under the same
  key a local run would use -- the first fully-written value wins and
  becomes canonical for every later duplicate, process, or rerun.
* **work stealing** -- an idle worker with nothing queued duplicates the
  oldest single-lease item (a straggler's twin); first answer wins.
* **degradation ladder** -- a broker that cannot open its socket, or whose
  worker population collapses past the respawn budget, raises
  :class:`FleetError`; :func:`run_fleet` then finishes the unresolved
  remainder on the local supervised pool, which itself degrades
  ``process -> thread -> serial``.  A fleet batch therefore completes (or
  fails for an honest, item-level reason) under every fault in the chaos
  matrix.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import time
from dataclasses import dataclass
from multiprocessing import Process
from multiprocessing.connection import Connection, Listener, wait
from threading import Thread
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.store import ResultStore
from ..errors import ConfigurationError, TransientError
from ..experiments.supervisor import (
    FaultEvent,
    ItemOutcome,
    ItemTimeout,
    Supervisor,
    SupervisorConfig,
    _env_number,
)
from ..testing.faults import FaultInjector, active_plan, is_corrupt_payload
from . import protocol
from .worker import worker_main

__all__ = ["FleetConfig", "FleetError", "Broker", "run_fleet"]


class FleetError(TransientError):
    """The fleet substrate failed (broker socket, worker population).

    Not an item failure: the computation itself is fine, the distribution
    layer is not, so the caller degrades to a local execution policy.
    """


@dataclass(frozen=True)
class FleetConfig:
    """Lease/heartbeat/retry policy of one fleet batch.

    ``lease_seconds`` is how long a silent worker keeps an item;
    heartbeats extend the lease, but never past ``timeout`` (the absolute
    per-attempt cap, ``None`` for unbounded).  ``respawn_limit`` bounds how
    many replacement workers the broker may spawn over the batch before it
    declares the substrate lost and degrades.
    """

    lease_seconds: float = 30.0
    heartbeat_seconds: float = 0.5
    tick_seconds: float = 0.05
    max_attempts: int = 4
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    steal: bool = True
    respawn_limit: int = 4

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be positive")
        if self.max_attempts < 1:
            raise ValueError("the fleet needs at least one attempt per item")

    @property
    def liveness_seconds(self) -> float:
        """Silence after which a worker is declared dead (missed beats)."""

        return max(4.0 * self.heartbeat_seconds, 1.0)

    def backoff(self, attempt: int) -> float:
        """Deterministic delay before requeueing after attempt *attempt*."""

        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )

    @classmethod
    def from_environment(
        cls, supervisor: Optional[SupervisorConfig] = None
    ) -> "FleetConfig":
        """Fleet config from ``REPRO_FLEET_*``, retry policy from *supervisor*.

        ``REPRO_FLEET_LEASE`` / ``REPRO_FLEET_HEARTBEAT`` (seconds) and
        ``REPRO_FLEET_RESPAWN`` (worker respawn budget) tune the fleet;
        timeout/attempt/backoff policy comes from the supervisor config (or
        the supervision environment variables, or their defaults), so a
        chaos run configured for the local pool drives the fleet
        identically.  Malformed values raise a
        :class:`~repro.errors.ConfigurationError` naming the variable.
        """

        supervisor = supervisor or SupervisorConfig.from_environment()
        sup = supervisor or SupervisorConfig()
        lease = _env_number(
            "REPRO_FLEET_LEASE",
            os.environ.get("REPRO_FLEET_LEASE", "").strip(),
            float, default=30.0, minimum=0.0,
        )
        heartbeat = _env_number(
            "REPRO_FLEET_HEARTBEAT",
            os.environ.get("REPRO_FLEET_HEARTBEAT", "").strip(),
            float, default=0.5, minimum=0.0,
        )
        respawn = _env_number(
            "REPRO_FLEET_RESPAWN",
            os.environ.get("REPRO_FLEET_RESPAWN", "").strip(),
            int, default=4, minimum=0,
        )
        if lease <= 0:
            raise ConfigurationError("REPRO_FLEET_LEASE must be positive")
        if heartbeat <= 0:
            raise ConfigurationError("REPRO_FLEET_HEARTBEAT must be positive")
        return cls(
            lease_seconds=lease,
            heartbeat_seconds=min(heartbeat, lease / 2.0),
            max_attempts=sup.max_attempts,
            timeout=sup.timeout,
            backoff_base=sup.backoff_base,
            backoff_factor=sup.backoff_factor,
            backoff_cap=sup.backoff_cap,
            steal=sup.speculate,
            respawn_limit=respawn,
        )

    def to_supervisor_config(self) -> SupervisorConfig:
        """The matching local-pool policy for the degradation ladder."""

        return SupervisorConfig(
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            backoff_cap=self.backoff_cap,
            speculate=self.steal,
        )


class _Lease:
    """One outstanding (item, attempt) held by one worker."""

    __slots__ = ("index", "attempt", "worker_id", "started", "deadline",
                 "absolute_deadline", "speculative")

    def __init__(self, index: int, attempt: int, worker_id: str, started: float,
                 deadline: float, absolute_deadline: Optional[float],
                 speculative: bool) -> None:
        self.index = index
        self.attempt = attempt
        self.worker_id = worker_id
        self.started = started
        self.deadline = deadline
        self.absolute_deadline = absolute_deadline
        self.speculative = speculative


class _WorkerHandle:
    """Broker-side record of one connected worker."""

    __slots__ = ("conn", "worker_id", "pid", "last_seen", "dead")

    def __init__(self, conn: Connection, now: float) -> None:
        self.conn = conn
        self.worker_id: Optional[str] = None
        self.pid: Optional[int] = None
        self.last_seen = now
        self.dead = False


class Broker:
    """Drives one fleet batch; one instance per :func:`run_fleet` call."""

    def __init__(
        self,
        fn,
        items: Sequence[object],
        workers: int,
        config: FleetConfig,
        outcomes: List[ItemOutcome],
        *,
        store: Optional[ResultStore] = None,
        query: str = "",
        keys: Optional[Sequence[Tuple[str, object]]] = None,
    ) -> None:
        self.fn = fn
        self.items = list(items)
        self.target_workers = max(1, min(workers, len(self.items)))
        self.config = config
        self.outcomes = outcomes
        self.store = store
        self.query = query
        self.keys = list(keys) if keys is not None else None
        n = len(self.items)
        self.results: List[object] = [None] * n
        self.resolved = [False] * n
        self.attempts_started = [0] * n
        self.first_started: List[Optional[float]] = [None] * n
        self.unresolved = n
        self.ready: List[int] = list(range(n))
        heapq.heapify(self.ready)
        self.retries: List[Tuple[float, int]] = []
        self.leases: Dict[Tuple[int, int, str], _Lease] = {}
        self.handles: Dict[Connection, _WorkerHandle] = {}
        self.by_worker_id: Dict[str, _WorkerHandle] = {}
        self.idle: List[str] = []
        self.delayed: List[Tuple[float, int, Tuple[int, int, object]]] = []
        self._delay_seq = itertools.count()
        self.failure: Optional[Tuple[int, BaseException]] = None
        self.spawned = 0
        self.processes: List[Process] = []
        plan = active_plan()
        self.injector = FaultInjector(plan) if plan is not None else None
        self.plan = plan
        self.net_applied: set = set()
        self._worker_seq = itertools.count()
        self._listener: Optional[Listener] = None
        self._accept_thread: Optional[Thread] = None
        self._pending_conns: List[Connection] = []
        self._authkey = os.urandom(16)
        self._closing = False

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> Tuple[List[object], List[ItemOutcome]]:
        try:
            self._listener = Listener(("127.0.0.1", 0), authkey=self._authkey)
        except OSError as exc:
            raise FleetError(f"broker socket unavailable: {exc}") from exc
        self._accept_thread = Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        try:
            self._spawn_workers(self.target_workers)
            try:
                self._loop()
            except OSError as exc:
                # The socket substrate itself failed mid-batch.
                raise FleetError(f"broker connection failure: {exc}") from exc
        finally:
            self._shutdown()
        if self.failure is not None:
            raise self.failure[1]
        return self.results, self.outcomes

    # ------------------------------------------------------------------ #
    # Worker population
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):
                return
            except Exception:  # auth failure from a stray client
                continue
            self._pending_conns.append(conn)

    def _spawn_workers(self, count: int) -> None:
        for _ in range(count):
            worker_id = f"w{next(self._worker_seq)}"
            try:
                process = Process(
                    target=worker_main,
                    args=(self._listener.address, self._authkey, worker_id,
                          self.fn, self.config.heartbeat_seconds),
                    daemon=True,
                )
                process.start()
            except (OSError, pickle.PickleError, AttributeError, TypeError) as exc:
                raise FleetError(f"could not spawn fleet worker: {exc}") from exc
            self.processes.append(process)
            self.spawned += 1

    def _ensure_population(self) -> None:
        """Respawn dead workers within budget; collapse when it is spent."""

        alive = sum(1 for p in self.processes if p.is_alive())
        if alive >= min(self.target_workers, self.unresolved or 1):
            return
        budget_left = self.target_workers + self.config.respawn_limit - self.spawned
        if budget_left > 0:
            deficit = min(self.target_workers, max(1, self.unresolved)) - alive
            self._spawn_workers(min(deficit, budget_left))
        elif alive == 0:
            raise FleetError(
                f"fleet collapsed: every worker died and the respawn budget "
                f"({self.config.respawn_limit}) is spent"
            )

    def _mark_worker_dead(self, handle: _WorkerHandle, reason: str,
                          now: float) -> None:
        """Forget a worker and requeue its leases immediately."""

        if handle.dead:
            return
        handle.dead = True
        self.handles.pop(handle.conn, None)
        if handle.worker_id is not None:
            self.by_worker_id.pop(handle.worker_id, None)
            if handle.worker_id in self.idle:
                self.idle.remove(handle.worker_id)
        try:
            handle.conn.close()
        except OSError:
            pass
        for key in [k for k in self.leases if k[2] == handle.worker_id]:
            lease = self.leases.pop(key)
            if self.resolved[lease.index]:
                continue
            if self._live_leases(lease.index):
                continue  # a twin is still hopeful
            self._requeue_or_fail(
                lease.index, lease.attempt, "worker-dead",
                f"worker {handle.worker_id} lost ({reason})",
                TransientError(
                    f"item {lease.index}: worker {handle.worker_id} died "
                    f"({reason})"
                ),
                now,
            )

    # ------------------------------------------------------------------ #
    # Lease bookkeeping
    # ------------------------------------------------------------------ #
    def _live_leases(self, index: int) -> int:
        return sum(1 for lease in self.leases.values() if lease.index == index)

    def _drop_leases_for(self, index: int) -> None:
        for key in [k for k in self.leases if k[0] == index]:
            del self.leases[key]

    def _grant_lease(self, worker_id: str, index: int, *,
                     speculative: bool, now: float) -> bool:
        """Send one lease; returns False when the worker was unusable."""

        handle = self.by_worker_id.get(worker_id)
        if handle is None or handle.dead:
            return False
        config = self.config
        attempt = (self.attempts_started[index] if speculative
                   else self.attempts_started[index] + 1)
        try:
            handle.conn.send(
                (protocol.LEASE, index, attempt, self.items[index],
                 config.lease_seconds)
            )
        except (pickle.PickleError, AttributeError, TypeError) as exc:
            # The *item* refuses to serialize: deterministic, fail fast.
            outcome = self.outcomes[index]
            outcome.faults.append(FaultEvent(
                attempt, "non-retryable",
                f"item is not picklable: {exc}", "fleet"))
            outcome.status = "failed"
            outcome.attempts = attempt
            self._fail(index, pickle.PicklingError(
                f"fleet item {index} is not picklable: {exc}"))
            return True
        except (OSError, BrokenPipeError, EOFError):
            self._mark_worker_dead(handle, "send failed", now)
            return False
        if not speculative:
            self.attempts_started[index] = attempt
        if self.first_started[index] is None:
            self.first_started[index] = now
        absolute = None if config.timeout is None else now + config.timeout
        deadline = now + config.lease_seconds
        if absolute is not None:
            deadline = min(deadline, absolute)
        self.leases[(index, attempt, worker_id)] = _Lease(
            index, attempt, worker_id, now, deadline, absolute, speculative
        )
        if (self.injector is not None
                and self.injector.partition_planned(index, attempt)
                and (index, "partition") not in self.net_applied):
            # Sever the leaseholder's link right after the grant: the worker
            # computes into a void, stops being heard from, and the lease
            # must come back through liveness/expiry reassignment.
            self.net_applied.add((index, "partition"))
            self.outcomes[index].faults.append(FaultEvent(
                attempt, "partition",
                f"connection to {worker_id} severed mid-lease", "fleet"))
            self._mark_worker_dead(handle, "injected partition", now)
        return True

    def _requeue_or_fail(self, index: int, attempt: int, kind: str,
                         detail: str, exc: BaseException, now: float) -> None:
        outcome = self.outcomes[index]
        if self.attempts_started[index] >= self.config.max_attempts:
            outcome.faults.append(FaultEvent(attempt, kind, detail, "fleet"))
            outcome.status = "failed"
            outcome.attempts = self.attempts_started[index]
            self._fail(index, exc)
            return
        outcome.faults.append(FaultEvent(
            attempt, kind, detail, "fleet",
            backoff=self.config.backoff(attempt)))
        heapq.heappush(self.retries, (now + self.config.backoff(attempt), index))

    def _fail(self, index: int, exc: BaseException) -> None:
        if self.failure is None or index < self.failure[0]:
            self.failure = (index, exc)

    # ------------------------------------------------------------------ #
    # Result merge (at-least-once made idempotent)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _values_equal(first: object, second: object) -> bool:
        try:
            if bool(first == second):
                return True
        except Exception:
            pass
        try:
            return pickle.dumps(first) == pickle.dumps(second)
        except Exception:
            return False

    def _handle_result(self, index: int, attempt: int, value: object,
                       now: float) -> None:
        for key in [k for k in self.leases if k[0] == index and k[1] == attempt]:
            del self.leases[key]
        if self.resolved[index]:
            # At-least-once duplicate (steal twin, reassignment race,
            # injected duplicate delivery): verify against the canonical
            # value, then drop.
            verified = self._values_equal(self.results[index], value)
            self.outcomes[index].faults.append(FaultEvent(
                attempt, "duplicate-dropped",
                "verified identical" if verified
                else "MISMATCH against first-written value", "fleet"))
            return
        if is_corrupt_payload(value):
            self._requeue_or_fail(
                index, attempt, "corrupt", "corrupt worker payload",
                TransientError(
                    f"item {index}: corrupt worker payload persisted across "
                    f"{attempt} attempts"),
                now,
            )
            return
        if self.store is not None and self.keys is not None:
            graph_hash, params = self.keys[index]
            value, _stored = self.store.put_if_absent(
                graph_hash, self.query, params, value
            )
        self.results[index] = value
        self.resolved[index] = True
        self.unresolved -= 1
        self._drop_leases_for(index)
        outcome = self.outcomes[index]
        outcome.status = "ok"
        outcome.attempts = max(1, attempt)
        outcome.policy = "fleet"
        outcome.wall_time = now - (self.first_started[index] or now)

    def _handle_error(self, index: int, attempt: int, exc: BaseException,
                      now: float) -> None:
        for key in [k for k in self.leases if k[0] == index and k[1] == attempt]:
            del self.leases[key]
        if self.resolved[index]:
            return
        if self._live_leases(index):
            return  # a twin attempt is still hopeful
        detail = f"{type(exc).__name__}: {exc}"
        if not Supervisor._is_retryable(exc):
            outcome = self.outcomes[index]
            outcome.faults.append(
                FaultEvent(attempt, "non-retryable", detail, "fleet"))
            outcome.status = "failed"
            outcome.attempts = max(attempt, self.attempts_started[index])
            self._fail(index, exc)
            return
        self._requeue_or_fail(index, attempt, "error", detail, exc, now)

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _handle_message(self, handle: _WorkerHandle, message: tuple,
                        now: float) -> None:
        kind = message[0]
        handle.last_seen = now
        if kind == protocol.HELLO:
            _, worker_id, pid = message
            handle.worker_id = worker_id
            handle.pid = pid
            self.by_worker_id[worker_id] = handle
            return
        if kind == protocol.READY:
            worker_id = message[1]
            if worker_id not in self.idle:
                self.idle.append(worker_id)
            return
        if kind == protocol.HEARTBEAT:
            _, worker_id, index, attempt = message
            if index == protocol.IDLE_INDEX:
                return
            lease = self.leases.get((index, attempt, worker_id))
            if lease is not None:
                extended = now + self.config.lease_seconds
                if lease.absolute_deadline is not None:
                    extended = min(extended, lease.absolute_deadline)
                lease.deadline = max(lease.deadline, extended)
            return
        if kind == protocol.RESULT:
            _, worker_id, index, attempt, value = message
            self._deliver_result(index, attempt, value, now)
            return
        if kind == protocol.ERROR:
            _, worker_id, index, attempt, exc = message
            self._handle_error(index, attempt, exc, now)
            return

    def _deliver_result(self, index: int, attempt: int, value: object,
                        now: float) -> None:
        """Apply the planned network fault, then merge the delivery."""

        decision = None
        if self.injector is not None:
            key = (index, attempt)
            if key not in self.net_applied:
                self.net_applied.add(key)
                decision = self.injector.decide_network(index, attempt)
        if decision == "drop":
            # The message vanishes in flight; nothing is merged, no lease
            # is cleared -- recovery is lease expiry + reassignment, which
            # is exactly what at-least-once delivery promises.
            self.outcomes[index].faults.append(FaultEvent(
                attempt, "net-drop", "result message dropped in flight",
                "fleet"))
            return
        if decision == "delay":
            self.outcomes[index].faults.append(FaultEvent(
                attempt, "net-delay",
                f"result message held {self.plan.delay_seconds}s", "fleet"))
            heapq.heappush(self.delayed, (
                now + self.plan.delay_seconds, next(self._delay_seq),
                (index, attempt, value)))
            return
        self._handle_result(index, attempt, value, now)
        if decision == "dup":
            # Broker-side duplicate delivery: the second copy must travel
            # the verified-and-dropped path, proving idempotency.
            self.outcomes[index].faults.append(FaultEvent(
                attempt, "net-dup", "result message delivered twice",
                "fleet"))
            self._handle_result(index, attempt, value, now)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        config = self.config
        while self.unresolved and self.failure is None:
            now = time.monotonic()
            for conn in self._drain_pending():
                self.handles[conn] = _WorkerHandle(conn, now)
            while self.delayed and self.delayed[0][0] <= now:
                _, _, (index, attempt, value) = heapq.heappop(self.delayed)
                self._handle_result(index, attempt, value, now)
            while self.retries and self.retries[0][0] <= now:
                _, index = heapq.heappop(self.retries)
                if not self.resolved[index]:
                    heapq.heappush(self.ready, index)
            self._assign_work(now)
            if self.unresolved == 0 or self.failure is not None:
                break
            self._poll_messages(config.tick_seconds)
            now = time.monotonic()
            self._sweep_leases(now)
            self._sweep_workers(now)
            self._ensure_population()

    def _drain_pending(self) -> List[Connection]:
        drained: List[Connection] = []
        while self._pending_conns:
            drained.append(self._pending_conns.pop(0))
        return drained

    def _assign_work(self, now: float) -> None:
        config = self.config
        while self.idle and self.ready:
            index = heapq.heappop(self.ready)
            if self.resolved[index] or self._live_leases(index):
                continue
            worker_id = self.idle.pop(0)
            if not self._grant_lease(worker_id, index, speculative=False,
                                     now=now):
                heapq.heappush(self.ready, index)
            if self.failure is not None:
                return
        if not config.steal or self.ready or self.retries or not self.idle:
            return
        # Work stealing: nothing queued, workers idle, leases outstanding.
        # Duplicate the oldest single-lease straggler; first answer wins.
        candidates = sorted(
            (lease for lease in self.leases.values()
             if not lease.speculative
             and not self.resolved[lease.index]
             and self._live_leases(lease.index) == 1),
            key=lambda lease: (lease.started, lease.index),
        )
        for lease in candidates:
            if not self.idle:
                break
            worker_id = self.idle.pop(0)
            if worker_id == lease.worker_id:
                # The straggler itself went idle (its result is in flight
                # or was dropped); don't hand its own item back to it.
                self.idle.append(worker_id)
                if len(self.idle) == 1:
                    break
                continue
            self.outcomes[lease.index].faults.append(FaultEvent(
                lease.attempt, "steal",
                f"straggler duplicated onto {worker_id}", "fleet"))
            self._grant_lease(worker_id, lease.index, speculative=True,
                              now=now)

    def _poll_messages(self, tick: float) -> None:
        conns = list(self.handles)
        if not conns:
            time.sleep(tick)
            return
        try:
            ready = wait(conns, timeout=tick)
        except OSError:
            ready = []
        now = time.monotonic()
        for conn in ready:
            handle = self.handles.get(conn)
            if handle is None:
                continue
            while not handle.dead:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._mark_worker_dead(handle, "connection closed", now)
                    break
                self._handle_message(handle, message, now)

    def _sweep_leases(self, now: float) -> None:
        for key, lease in list(self.leases.items()):
            if now < lease.deadline:
                continue
            del self.leases[key]
            if self.resolved[lease.index] or self._live_leases(lease.index):
                continue
            timed_out = (lease.absolute_deadline is not None
                         and now >= lease.absolute_deadline)
            kind = "timeout" if timed_out else "lease-expired"
            self._requeue_or_fail(
                lease.index, lease.attempt, kind,
                f"lease on {lease.worker_id} expired after "
                f"{now - lease.started:.2f}s",
                ItemTimeout(
                    f"item {lease.index} exhausted {self.attempts_started[lease.index]} "
                    f"lease(s) without an answer"),
                now,
            )

    def _sweep_workers(self, now: float) -> None:
        liveness = self.config.liveness_seconds
        for handle in list(self.handles.values()):
            if now - handle.last_seen > liveness:
                self._mark_worker_dead(handle, "missed heartbeats", now)

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def _shutdown(self) -> None:
        self._closing = True
        for handle in list(self.handles.values()):
            try:
                handle.conn.send((protocol.SHUTDOWN,))
            except (OSError, ValueError):
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for handle in list(self.handles.values()):
            try:
                handle.conn.close()
            except OSError:
                pass
        self.handles.clear()
        self.by_worker_id.clear()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        deadline = time.monotonic() + 2.0
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            if process.is_alive():
                process.join(timeout=1.0)


def run_fleet(
    fn,
    items: Sequence[object],
    *,
    workers: int,
    config: Optional[FleetConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
    store: Optional[ResultStore] = None,
    query: str = "",
    keys: Optional[Sequence[Tuple[str, object]]] = None,
) -> Tuple[List[object], List[ItemOutcome]]:
    """Run one batch on the fleet, degrading locally when the fleet dies.

    The degradation ladder: a healthy broker distributes everything; a
    :class:`FleetError` (unopenable socket, collapsed worker population)
    hands the unresolved remainder to the local
    :class:`~repro.experiments.supervisor.Supervisor` on the process
    policy, which itself degrades ``process -> thread -> serial``.  Item
    results already resolved by the fleet are kept; every degraded item
    carries a ``fleet-degraded`` :class:`FaultEvent` so the report's fault
    history shows exactly where the batch ran.
    """

    items = list(items)
    fleet_config = config or FleetConfig.from_environment(supervisor)
    outcomes = [ItemOutcome(index=i, policy="fleet") for i in range(len(items))]
    if not items:
        return [], outcomes
    broker = Broker(
        fn, items, workers, fleet_config, outcomes,
        store=store, query=query, keys=keys,
    )
    try:
        return broker.run()
    except FleetError as exc:
        residual = [i for i in range(len(items)) if not broker.resolved[i]]
        for index in residual:
            outcomes[index].faults.append(FaultEvent(
                max(1, broker.attempts_started[index]), "fleet-degraded",
                f"fleet unavailable, degrading to local pool: {exc}",
                "fleet"))
        runner = Supervisor(
            "process", max(1, workers), fleet_config.to_supervisor_config()
        )
        values, local_outcomes = runner.run(fn, [items[i] for i in residual])
        for local_index, index in enumerate(residual):
            value = values[local_index]
            if store is not None and keys is not None:
                graph_hash, params = keys[index]
                value, _stored = store.put_if_absent(
                    graph_hash, query, params, value
                )
            broker.results[index] = value
            local = local_outcomes[local_index]
            outcome = outcomes[index]
            outcome.status = local.status
            outcome.attempts = broker.attempts_started[index] + local.attempts
            outcome.policy = local.policy
            outcome.speculative = local.speculative
            outcome.wall_time += local.wall_time
            outcome.faults.extend(local.faults)
        return broker.results, outcomes
