"""Fleet worker process: lease, compute, heartbeat, answer, repeat.

One :func:`worker_main` per worker process.  The worker is deliberately
dumb: it pulls a lease, applies the task function, answers, and heartbeats
all the while -- every robustness decision (reassignment, duplicates,
budgets, degradation) lives in the broker, where it can be made
deterministically.  Workers rebuild the ambient
:class:`~repro.testing.faults.FaultPlan` from the inherited environment, so
a chaos run perturbs fleet workers exactly as it perturbs local pool
workers, plus the fleet-only ``leasekill`` fault (hard ``os._exit`` while
holding a lease).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from multiprocessing.connection import Client
from typing import Callable, Optional, Tuple

from ..errors import TransientError
from ..testing.faults import FaultInjector, active_plan
from . import protocol

__all__ = ["worker_main"]


def _heartbeat_loop(send: Callable[[tuple], bool], worker_id: str,
                    lease: Tuple[int, int], stop: threading.Event,
                    interval: float) -> None:
    index, attempt = lease
    while not stop.wait(interval):
        if not send((protocol.HEARTBEAT, worker_id, index, attempt)):
            return


def _shippable_error(exc: BaseException) -> BaseException:
    """*exc* if it survives pickling, else a stand-in carrying its repr."""

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return TransientError(f"worker exception was not picklable: {exc!r}")


def worker_main(address, authkey: bytes, worker_id: str, fn: Callable,
                heartbeat_seconds: float) -> None:
    """Entry point of one fleet worker process.

    Connects to the broker at *address*, then loops: announce readiness,
    wait for a lease (heartbeating while parked), compute ``fn(item)``
    under a heartbeat thread, send the result or the exception.  Every
    connection failure -- the broker died, the socket was severed by an
    injected partition -- is an orderly exit: the broker's liveness
    tracking owns the recovery, the worker has nothing useful to add.
    """

    try:
        conn = Client(address, authkey=authkey)
    except (OSError, EOFError):  # broker already gone; nothing to recover
        return
    send_lock = threading.Lock()

    def send(message: tuple) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, EOFError, BrokenPipeError):
            return False

    if not send((protocol.HELLO, worker_id, os.getpid())):
        return
    try:
        while True:
            if not send((protocol.READY, worker_id)):
                return
            # Park until the broker answers, proving liveness while idle.
            while not conn.poll(heartbeat_seconds):
                if not send((protocol.HEARTBEAT, worker_id,
                             protocol.IDLE_INDEX, 0)):
                    return
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == protocol.SHUTDOWN:
                return
            if message[0] != protocol.LEASE:
                continue  # unknown message: ignore, stay alive
            _, index, attempt, item, _lease_seconds = message
            _run_lease(send, worker_id, fn, index, attempt, item,
                       heartbeat_seconds)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _run_lease(send, worker_id: str, fn: Callable, index: int, attempt: int,
               item, heartbeat_seconds: float) -> None:
    """Compute one lease under a heartbeat thread and answer the broker."""

    plan = active_plan()
    injector = FaultInjector(plan) if plan is not None else None
    if injector is not None and injector.leasekill_planned(index, attempt):
        # The planned mid-lease death: the broker granted the lease, the
        # heartbeats are about to stop, and recovery must come from lease
        # expiry + reassignment, not from any cleanup code here.
        os._exit(13)
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(send, worker_id, (index, attempt), stop, heartbeat_seconds),
        daemon=True,
    )
    beater.start()
    error: Optional[BaseException] = None
    value = None
    try:
        try:
            marker = None
            if injector is not None:
                marker = injector.perturb(index, attempt, in_worker_process=True)
            value = marker if marker is not None else fn(item)
        except Exception as exc:
            error = exc
    finally:
        stop.set()
        beater.join(timeout=max(1.0, 4 * heartbeat_seconds))
    if error is not None:
        send((protocol.ERROR, worker_id, index, attempt, _shippable_error(error)))
        return
    try:
        send((protocol.RESULT, worker_id, index, attempt, value))
    except (pickle.PickleError, AttributeError, TypeError) as exc:
        # The *value* refused to serialize -- deterministic, so report it
        # as an error the broker will classify as non-retryable.
        send((protocol.ERROR, worker_id, index, attempt,
              pickle.PicklingError(f"result for item {index} is not picklable: {exc}")))
