"""Fault-tolerant distributed solver fleet over the result store.

The paper's exact intLP sweeps are multi-day jobs; this package ships the
:class:`~repro.experiments.engine.BatchEngine` contract across process
boundaries: a :class:`~repro.fleet.broker.Broker` leases ``(index, item)``
bundles to a fleet of worker processes over stdlib
:mod:`multiprocessing.connection` sockets, tracks liveness by heartbeat,
expires and deterministically reassigns the leases of dead or silent
workers, steals work for stragglers, and makes at-least-once delivery
idempotent by writing results under the same
:class:`~repro.analysis.store.ResultStore` key a local run would use
(first fully-written value wins; duplicates are verified and dropped).

Robustness is the headline: when the broker socket cannot be opened or the
worker population collapses past its respawn budget, the fleet degrades to
the local supervised pool (which itself degrades ``process -> thread ->
serial``), so a batch always completes with results byte-identical to a
serial fault-free run.  Activated as ``BatchEngine(policy="fleet")``.
"""

from .broker import Broker, FleetConfig, FleetError, run_fleet
from .worker import worker_main

__all__ = [
    "Broker",
    "FleetConfig",
    "FleetError",
    "run_fleet",
    "worker_main",
]
