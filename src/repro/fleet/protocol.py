"""Wire protocol between the fleet broker and its workers.

Messages are plain tuples shipped over :mod:`multiprocessing.connection`
(pickled by the connection itself), first element the message kind:

worker -> broker
    ``(HELLO, worker_id, pid)``
        First message after connecting; registers the worker.
    ``(READY, worker_id)``
        The worker is idle and wants a lease.  The broker answers with a
        ``LEASE`` (possibly much later) or ``SHUTDOWN`` -- never with a
        busy-wait "try again" message; the worker heartbeats while parked.
    ``(HEARTBEAT, worker_id, index, attempt)``
        Liveness beacon, sent every ``heartbeat_seconds`` -- with the lease
        being worked on, or ``(-1, 0)`` while idle.  Extends the matching
        lease's deadline (never past the absolute per-attempt timeout).
    ``(RESULT, worker_id, index, attempt, value)``
        The computed value for a lease.  At-least-once: the broker may see
        the same ``(index, attempt)`` twice (injected duplicates, steal
        twins, reassignment races) and must verify-and-drop extras.
    ``(ERROR, worker_id, index, attempt, exception)``
        The computation raised.  The exception object travels when it is
        picklable; otherwise a :class:`~repro.errors.TransientError`
        carrying its ``repr`` stands in.

broker -> worker
    ``(LEASE, index, attempt, item, lease_seconds)``
        Work: apply the task function to *item*.  The worker holds the
        lease until it answers or the broker gives up on it.
    ``(SHUTDOWN,)``
        The batch is decided; exit the main loop.

The protocol is deliberately request-driven (workers pull leases; the
broker never pushes unsolicited work), which is what makes deterministic
reassignment possible: every lease decision happens in one place, the
broker's single-threaded state machine.
"""

from __future__ import annotations

__all__ = [
    "HELLO",
    "READY",
    "HEARTBEAT",
    "RESULT",
    "ERROR",
    "LEASE",
    "SHUTDOWN",
    "IDLE_INDEX",
]

HELLO = "hello"
READY = "ready"
HEARTBEAT = "heartbeat"
RESULT = "result"
ERROR = "error"
LEASE = "lease"
SHUTDOWN = "shutdown"

#: The ``index`` a heartbeat carries while the worker holds no lease.
IDLE_INDEX = -1
