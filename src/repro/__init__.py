"""repro -- a reproduction of "On the Optimality of Register Saturation" (Touati, ICPP 2004).

The library implements the paper's register-saturation framework for acyclic
data dependence graphs (DAGs/DDGs):

* :mod:`repro.core` -- the DAG and processor model (operations, flow/serial
  arcs, latencies, register types, read/write offsets, schedules, lifetimes,
  register need);
* :mod:`repro.saturation` -- computing the register saturation ``RS_t(G)``,
  the maximal register need over **all** valid schedules: the Greedy-k
  heuristic and the exact integer linear program of Section 3;
* :mod:`repro.reduction` -- reducing the saturation below a register budget
  by adding serial arcs: the value-serialization heuristic, the optimal
  intLP method of Section 4, and the register-minimization baseline of
  Section 6;
* :mod:`repro.scheduling` / :mod:`repro.allocation` -- the downstream
  instruction scheduler and register allocator of Figure 1, plus the
  schedule-then-spill baseline;
* :mod:`repro.ilp` -- the integer-programming substrate (modelling layer,
  logical-operator linearization, and a pluggable backend registry with
  HiGHS and branch-and-bound built in);
* :mod:`repro.codes` -- a small IR, dependence analysis, hand-written
  benchmark kernels and random DDG generators;
* :mod:`repro.experiments` -- the harness regenerating every quantitative
  claim of the paper's evaluation.

Quickstart::

    from repro import DDGBuilder, compute_saturation, reduce_saturation

    g = (DDGBuilder("example").default_type("int")
         .value("a", latency=2).value("b", latency=2).value("c", latency=2)
         .op("sum")
         .flow("a", "sum").flow("b", "sum").flow("c", "sum")
         .build())
    rs = compute_saturation(g, "int", method="exact")
    print(rs.rs)                       # 3: all three values can be alive at once
    reduced = reduce_saturation(g, "int", registers=2)
    print(reduced.success, reduced.ilp_loss)
"""

from ._version import __version__
from .core import (
    BOTTOM,
    DDG,
    DDGBuilder,
    Edge,
    FLOAT,
    INT,
    LifetimeInterval,
    Operation,
    ProcessorModel,
    RegisterType,
    Schedule,
    Value,
    asap_schedule,
    epic,
    register_need,
    superscalar,
    value_lifetimes,
    vliw,
)
from .errors import (
    AllocationError,
    ConfigurationError,
    CyclicGraphError,
    GraphError,
    InfeasibleError,
    KillingFunctionError,
    ModelError,
    ReductionError,
    ReproError,
    ScheduleError,
    SolverError,
    SpillRequiredError,
    UnboundedError,
)
from .reduction import (
    ReductionResult,
    minimize_register_need,
    reduce_saturation,
    reduce_saturation_exact,
    reduce_saturation_heuristic,
    solve_src,
)
from .saturation import (
    SaturationResult,
    compute_saturation,
    exact_saturation,
    greedy_saturation,
    saturation_bounds,
)

__all__ = [
    "__version__",
    # core
    "DDG",
    "DDGBuilder",
    "Edge",
    "Operation",
    "Schedule",
    "Value",
    "RegisterType",
    "LifetimeInterval",
    "ProcessorModel",
    "INT",
    "FLOAT",
    "BOTTOM",
    "superscalar",
    "vliw",
    "epic",
    "asap_schedule",
    "register_need",
    "value_lifetimes",
    # saturation
    "SaturationResult",
    "compute_saturation",
    "greedy_saturation",
    "exact_saturation",
    "saturation_bounds",
    # reduction
    "ReductionResult",
    "reduce_saturation",
    "reduce_saturation_heuristic",
    "reduce_saturation_exact",
    "minimize_register_need",
    "solve_src",
    # errors
    "ReproError",
    "ConfigurationError",
    "GraphError",
    "CyclicGraphError",
    "ScheduleError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "KillingFunctionError",
    "ReductionError",
    "SpillRequiredError",
    "AllocationError",
]
