"""Integer linear programming substrate (modelling layer + solvers).

The paper expresses both the register-saturation computation (Section 3) and
its reduction (Section 4) as integer linear programs whose logical operators
are linearized with extra binary variables.  This package provides the
modelling objects those formulations are written against and a pluggable
:class:`~repro.ilp.registry.BackendRegistry` of exact backends:

* ``"scipy"`` (aliases ``"highs"``, ``"scipy-highs"``) -- HiGHS through
  :func:`scipy.optimize.milp` (standing in for the paper's CPLEX);
* ``"branch-bound"`` -- a small pure-Python branch-and-bound used for
  cross-checks and ablations;
* ``backend="auto"`` (the default) -- a deterministic policy picking by
  model size and declared capabilities, overridable with the
  ``REPRO_ILP_BACKEND`` environment variable; plug-ins join with
  :func:`repro.ilp.registry.register_backend`.

:func:`solve` routes exclusively through the default registry.
"""

from __future__ import annotations

from typing import Optional

from .expressions import LinExpr, as_expr
from .logical import (
    add_disjunction_ge,
    add_equivalence_conjunction,
    add_implication_ge,
    add_implication_le,
    add_max_equality,
    expression_bounds,
)
from .model import Constraint, IntegerProgram, VariableDef, VariableKind
from .registry import (
    Backend,
    BackendCapabilities,
    BackendRegistry,
    default_registry,
    register_backend,
)
from .solution import Solution, SolveStatus

# The concrete solver modules pull in numpy/scipy at import time; exporting
# them lazily (PEP 562) keeps ``import repro.ilp`` -- and with it the whole
# modelling layer -- usable on interpreters without the numeric stack.
_LAZY_EXPORTS = {
    "solve_with_scipy": "scipy_backend",
    "solve_with_branch_and_bound": "branch_bound",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)

__all__ = [
    "LinExpr",
    "as_expr",
    "IntegerProgram",
    "Constraint",
    "VariableDef",
    "VariableKind",
    "Solution",
    "SolveStatus",
    "Backend",
    "BackendCapabilities",
    "BackendRegistry",
    "default_registry",
    "register_backend",
    "solve",
    "solve_with_scipy",
    "solve_with_branch_and_bound",
    "add_disjunction_ge",
    "add_equivalence_conjunction",
    "add_implication_ge",
    "add_implication_le",
    "add_max_equality",
    "expression_bounds",
]


def solve(
    program: IntegerProgram,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
    require_feasible: bool = False,
) -> Solution:
    """Solve an integer program through the default backend registry.

    ``backend`` is a registered name or ``"auto"`` (deterministic choice by
    model size/capability, overridable via ``REPRO_ILP_BACKEND``).  When
    ``require_feasible`` is set an infeasible or unbounded outcome raises
    :class:`~repro.errors.InfeasibleError` /
    :class:`~repro.errors.UnboundedError` instead of returning a status-only
    solution, which keeps the call sites of the saturation code short.
    """

    return default_registry().solve(
        program,
        backend=backend,
        time_limit=time_limit,
        mip_rel_gap=mip_rel_gap,
        require_feasible=require_feasible,
    )
