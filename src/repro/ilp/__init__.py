"""Integer linear programming substrate (modelling layer + solvers).

The paper expresses both the register-saturation computation (Section 3) and
its reduction (Section 4) as integer linear programs whose logical operators
are linearized with extra binary variables.  This package provides the
modelling objects those formulations are written against and two exact
backends:

* :func:`solve` / :func:`repro.ilp.scipy_backend.solve_with_scipy` -- the
  default backend, HiGHS through :func:`scipy.optimize.milp` (standing in
  for the paper's CPLEX);
* :func:`repro.ilp.branch_bound.solve_with_branch_and_bound` -- a small
  pure-Python branch-and-bound used for cross-checks and ablations.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InfeasibleError, SolverError, UnboundedError
from .branch_bound import solve_with_branch_and_bound
from .expressions import LinExpr, as_expr
from .logical import (
    add_disjunction_ge,
    add_equivalence_conjunction,
    add_implication_ge,
    add_implication_le,
    add_max_equality,
    expression_bounds,
)
from .model import Constraint, IntegerProgram, VariableDef, VariableKind
from .scipy_backend import solve_with_scipy
from .solution import Solution, SolveStatus

__all__ = [
    "LinExpr",
    "as_expr",
    "IntegerProgram",
    "Constraint",
    "VariableDef",
    "VariableKind",
    "Solution",
    "SolveStatus",
    "solve",
    "solve_with_scipy",
    "solve_with_branch_and_bound",
    "add_disjunction_ge",
    "add_equivalence_conjunction",
    "add_implication_ge",
    "add_implication_le",
    "add_max_equality",
    "expression_bounds",
]

#: Registry of available exact backends.
BACKENDS = {
    "scipy": solve_with_scipy,
    "highs": solve_with_scipy,
    "branch-bound": solve_with_branch_and_bound,
}


def solve(
    program: IntegerProgram,
    backend: str = "scipy",
    time_limit: Optional[float] = None,
    require_feasible: bool = False,
) -> Solution:
    """Solve an integer program with the named backend.

    When ``require_feasible`` is set an infeasible or unbounded outcome
    raises :class:`~repro.errors.InfeasibleError` /
    :class:`~repro.errors.UnboundedError` instead of returning a status-only
    solution, which keeps the call sites of the saturation code short.
    """

    try:
        solver = BACKENDS[backend]
    except KeyError as exc:
        raise SolverError(
            f"unknown intLP backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from exc
    solution = solver(program, time_limit=time_limit)
    if require_feasible:
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"model {program.name!r} is infeasible")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"model {program.name!r} is unbounded")
    return solution
