"""Solver results for the integer-programming substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(enum.Enum):
    """Outcome of an intLP solve.

    ``TIME_LIMIT`` and ``ITERATION_LIMIT`` are distinct on purpose: HiGHS
    reports both under one scipy status code, but the experiments treat a
    wall-clock budget running out (the paper's multi-day CPLEX runs)
    differently from a node/iteration cap, so the backends must not conflate
    them.  Every registered backend maps its termination reasons onto this
    one vocabulary (the parity tests pin that).
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


@dataclass(frozen=True)
class Solution:
    """An intLP solution (or the reason there is none).

    ``values`` maps variable names to their (rounded) values; integer
    variables are reported as Python ints so the downstream graph code never
    sees floating point noise.

    ``backend`` is the registry name the solve was routed through (filled in
    by :class:`~repro.ilp.registry.BackendRegistry`), ``termination`` the
    backend's verbatim stop reason, and ``mip_gap`` the achieved relative
    gap when the backend reports one -- so a TIME_LIMIT report says honestly
    how far from proven optimality it stopped.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Mapping[str, float] = field(default_factory=dict)
    solver: str = "unknown"
    wall_time: float = 0.0
    nodes_explored: int = 0
    message: str = ""
    backend: str = ""
    termination: str = ""
    mip_gap: Optional[float] = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        return self.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.TIME_LIMIT,
            SolveStatus.ITERATION_LIMIT,
        ) and bool(self.values)

    def stats(self) -> Dict[str, object]:
        """Solve statistics for experiment reports (backend, time, gap...)."""

        return {
            "backend": self.backend or self.solver,
            "status": self.status.value,
            "objective": self.objective,
            "wall_time": self.wall_time,
            "nodes_explored": self.nodes_explored,
            "mip_gap": self.mip_gap,
            "termination": self.termination,
        }

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def int_value(self, name: str, default: int = 0) -> int:
        return int(round(self.values.get(name, default)))

    def subset(self, prefix: str) -> Dict[str, float]:
        """All variable values whose name starts with *prefix* (e.g. ``sigma_``)."""

        return {k: v for k, v in self.values.items() if k.startswith(prefix)}
