"""Solver results for the integer-programming substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(enum.Enum):
    """Outcome of an intLP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


@dataclass(frozen=True)
class Solution:
    """An intLP solution (or the reason there is none).

    ``values`` maps variable names to their (rounded) values; integer
    variables are reported as Python ints so the downstream graph code never
    sees floating point noise.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Mapping[str, float] = field(default_factory=dict)
    solver: str = "unknown"
    wall_time: float = 0.0
    nodes_explored: int = 0
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT) and bool(
            self.values
        )

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def int_value(self, name: str, default: int = 0) -> int:
        return int(round(self.values.get(name, default)))

    def subset(self, prefix: str) -> Dict[str, float]:
        """All variable values whose name starts with *prefix* (e.g. ``sigma_``)."""

        return {k: v for k, v in self.values.items() if k.startswith(prefix)}
