"""Linear expressions for the integer-programming substrate.

The intLP formulations of the paper are written in terms of integer schedule
variables, killing dates and binary interference/independent-set variables.
:class:`LinExpr` gives those formulations a readable algebraic notation::

    sigma_v - sigma_u >= delta        ->   model.add_ge(sv - su, delta)
    k_u <= sigma_v + dr + M*(1 - b)   ->   model.add_le(ku - sv - M*(1 - b), dr)

An expression is an affine combination ``sum_i c_i * x_i + constant`` stored
as a ``{variable name: coefficient}`` mapping.  Expressions are immutable
from the caller's point of view: every operator returns a fresh object.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

__all__ = ["LinExpr", "as_expr"]

Number = Union[int, float]


class LinExpr:
    """An affine expression over named variables."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[str, float] | None = None, constant: Number = 0.0):
        self.terms: Dict[str, float] = {
            k: float(v) for k, v in (terms or {}).items() if v != 0
        }
        self.constant: float = float(constant)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def term(cls, name: str, coefficient: Number = 1.0) -> "LinExpr":
        """The expression ``coefficient * name``."""

        return cls({name: float(coefficient)})

    @classmethod
    def constant_expr(cls, value: Number) -> "LinExpr":
        return cls({}, value)

    @classmethod
    def sum(cls, exprs: Iterable["LinExpr | Number"]) -> "LinExpr":
        acc = cls()
        for e in exprs:
            acc = acc + e
        return acc

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _combine(self, other: "LinExpr | Number", sign: float) -> "LinExpr":
        other = as_expr(other)
        terms = dict(self.terms)
        for name, coeff in other.terms.items():
            terms[name] = terms.get(name, 0.0) + sign * coeff
        return LinExpr(terms, self.constant + sign * other.constant)

    def __add__(self, other: "LinExpr | Number") -> "LinExpr":
        return self._combine(other, 1.0)

    def __radd__(self, other: "LinExpr | Number") -> "LinExpr":
        return self._combine(other, 1.0)

    def __sub__(self, other: "LinExpr | Number") -> "LinExpr":
        return self._combine(other, -1.0)

    def __rsub__(self, other: "LinExpr | Number") -> "LinExpr":
        return as_expr(other)._combine(self, -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if isinstance(factor, LinExpr):
            raise TypeError("LinExpr supports multiplication by scalars only")
        return LinExpr(
            {k: v * float(factor) for k, v in self.terms.items()},
            self.constant * float(factor),
        )

    def __rmul__(self, factor: Number) -> "LinExpr":
        return self.__mul__(factor)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def variables(self) -> Tuple[str, ...]:
        return tuple(self.terms.keys())

    def coefficient(self, name: str) -> float:
        return self.terms.get(name, 0.0)

    def is_constant(self) -> bool:
        return not self.terms

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Value of the expression under a variable assignment."""

        return self.constant + sum(
            coeff * assignment[name] for name, coeff in self.terms.items()
        )

    def bounds(
        self, variable_bounds: Mapping[str, Tuple[float, float]]
    ) -> Tuple[float, float]:
        """Interval containing the expression's value given variable bounds.

        Used to derive finite big-M constants for the logical linearizations,
        as the paper requires ("that linear writing ... requires to bound the
        domain set of the integer variables").
        """

        lo = hi = self.constant
        for name, coeff in self.terms.items():
            vlo, vhi = variable_bounds[name]
            if coeff >= 0:
                lo += coeff * vlo
                hi += coeff * vhi
            else:
                lo += coeff * vhi
                hi += coeff * vlo
        return lo, hi

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c:+g}*{v}" for v, c in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.terms == other.terms and self.constant == other.constant

    def __hash__(self) -> int:
        return hash((frozenset(self.terms.items()), self.constant))


def as_expr(value: "LinExpr | Number | str") -> LinExpr:
    """Coerce a number, variable name or expression into a :class:`LinExpr`."""

    if isinstance(value, LinExpr):
        return value
    if isinstance(value, str):
        return LinExpr.term(value)
    if isinstance(value, (int, float)):
        return LinExpr.constant_expr(value)
    raise TypeError(f"cannot convert {type(value).__name__} to LinExpr")
