"""Linearization of logical operators and of ``max`` for integer programs.

The paper (Section 3) writes its register-need constraints with logical
connectives (``=>``, ``<=>``, ``or``) and the ``max`` operator, and then
relies on the classical big-M linearizations of [15], which require every
integer variable to live in a *bounded* domain.  This module implements
those linearizations against :class:`~repro.ilp.model.IntegerProgram`:

* :func:`add_max_equality` -- ``r = max(t_1, ..., t_k)`` with ``k`` extra
  binary variables (one per term);
* :func:`add_implication_ge` / :func:`add_implication_le` -- ``b = 1  =>
  expr >= rhs`` (resp. ``<=``) with no extra variable;
* :func:`add_disjunction_ge` -- ``expr_1 >= rhs_1  or ... or expr_k >= rhs_k``
  with ``k`` extra binaries;
* :func:`add_equivalence_conjunction` -- ``s = 1  <=>  (expr_1 >= rhs_1 and
  ... and expr_k >= rhs_k)``, the workhorse of the lifetime-interference
  constraints.

All big-M constants are derived from the variable bounds recorded in the
model (never a magic 1e6), following the paper's insistence on finite
domains.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import ModelError
from .expressions import LinExpr, as_expr
from .model import IntegerProgram

__all__ = [
    "expression_bounds",
    "add_max_equality",
    "add_implication_ge",
    "add_implication_le",
    "add_disjunction_ge",
    "add_equivalence_conjunction",
]

#: Integrality gap used to express the strict inequalities that appear when a
#: logical condition is negated (all schedule quantities are integers).
INTEGER_EPS = 1.0


def expression_bounds(model: IntegerProgram, expr: LinExpr) -> Tuple[float, float]:
    """Finite lower/upper bounds of *expr* induced by the model's variable bounds."""

    return expr.bounds(model.variable_bounds())


def add_max_equality(
    model: IntegerProgram,
    result: LinExpr,
    terms: Sequence[LinExpr],
    prefix: str,
) -> List[LinExpr]:
    """Constrain ``result == max(terms)``.

    *result* must be a single-variable expression previously added to the
    model.  For each term ``t_i`` two families of constraints are added::

        result >= t_i                              (max dominates every term)
        result <= t_i + M_i * (1 - b_i)            (some term attains the max)
        sum_i b_i = 1

    where ``b_i`` are fresh binary variables and ``M_i`` is the tightest
    big-M derived from the bounds of ``result - t_i``.

    Returns the list of selector binaries (useful for debugging/tests).
    """

    if not terms:
        raise ModelError("max() over an empty term list")
    result = as_expr(result)
    selectors: List[LinExpr] = []
    for i, term in enumerate(terms):
        term = as_expr(term)
        model.add_ge(result - term, 0.0, label=f"{prefix}_ge_{i}")
    if len(terms) == 1:
        # max of a single term is that term; close the equality without a binary.
        model.add_le(result - as_expr(terms[0]), 0.0, label=f"{prefix}_le_0")
        return selectors
    for i, term in enumerate(terms):
        term = as_expr(term)
        b = model.add_binary(f"{prefix}_sel_{i}")
        selectors.append(b)
        diff = result - term
        _, diff_hi = expression_bounds(model, diff)
        big_m = max(diff_hi, 0.0)
        # result - t_i <= M * (1 - b_i)
        model.add_le(diff + big_m * b, big_m, label=f"{prefix}_le_{i}")
    model.add_eq(LinExpr.sum(selectors), 1.0, label=f"{prefix}_one_selector")
    return selectors


def add_implication_ge(
    model: IntegerProgram,
    binary: LinExpr,
    expr: LinExpr,
    rhs: float,
    label: str = "",
) -> None:
    """Add ``binary = 1  =>  expr >= rhs`` using the expression's finite lower bound."""

    expr = as_expr(expr)
    binary = as_expr(binary)
    lo, _ = expression_bounds(model, expr)
    if lo >= rhs:
        return  # the implication holds unconditionally
    big_m = rhs - lo
    # expr >= rhs - M * (1 - b)   <=>   expr - M*b >= rhs - M
    model.add_ge(expr - big_m * binary, rhs - big_m, label=label)


def add_implication_le(
    model: IntegerProgram,
    binary: LinExpr,
    expr: LinExpr,
    rhs: float,
    label: str = "",
) -> None:
    """Add ``binary = 1  =>  expr <= rhs`` using the expression's finite upper bound."""

    expr = as_expr(expr)
    binary = as_expr(binary)
    _, hi = expression_bounds(model, expr)
    if hi <= rhs:
        return
    big_m = hi - rhs
    # expr <= rhs + M * (1 - b)   <=>   expr + M*b <= rhs + M
    model.add_le(expr + big_m * binary, rhs + big_m, label=label)


def add_disjunction_ge(
    model: IntegerProgram,
    alternatives: Sequence[Tuple[LinExpr, float]],
    prefix: str,
) -> List[LinExpr]:
    """Add ``OR_i (expr_i >= rhs_i)`` with one selector binary per alternative."""

    if not alternatives:
        raise ModelError("disjunction over an empty alternative list")
    selectors: List[LinExpr] = []
    for i, (expr, rhs) in enumerate(alternatives):
        y = model.add_binary(f"{prefix}_alt_{i}")
        selectors.append(y)
        add_implication_ge(model, y, as_expr(expr), rhs, label=f"{prefix}_impl_{i}")
    model.add_ge(LinExpr.sum(selectors), 1.0, label=f"{prefix}_at_least_one")
    return selectors


def add_equivalence_conjunction(
    model: IntegerProgram,
    indicator: LinExpr,
    conjuncts: Sequence[Tuple[LinExpr, float]],
    prefix: str,
) -> None:
    """Add ``indicator = 1  <=>  AND_i (expr_i >= rhs_i)`` for integer expressions.

    Forward direction (``=>``): each conjunct is forced when the indicator is
    set, via :func:`add_implication_ge`.

    Backward direction: if every conjunct holds the indicator must be 1.  Its
    contrapositive "indicator = 0 implies some conjunct is violated" is
    encoded with one extra binary per conjunct: ``sum_i y_i >= 1 - s`` and
    ``y_i = 1 => expr_i <= rhs_i - 1`` (strict violation, the expressions
    being integral).
    """

    indicator = as_expr(indicator)
    for i, (expr, rhs) in enumerate(conjuncts):
        add_implication_ge(model, indicator, as_expr(expr), rhs, label=f"{prefix}_fw_{i}")
    violations: List[LinExpr] = []
    for i, (expr, rhs) in enumerate(conjuncts):
        y = model.add_binary(f"{prefix}_viol_{i}")
        violations.append(y)
        add_implication_le(
            model, y, as_expr(expr), rhs - INTEGER_EPS, label=f"{prefix}_bw_{i}"
        )
    # sum_i y_i + indicator >= 1
    model.add_ge(LinExpr.sum(violations) + indicator, 1.0, label=f"{prefix}_bw_cover")
