"""An integer-linear-program container with named variables and constraints.

The paper's contribution is the *formulation* (which variables, which
constraints, how logical operators are linearized), not the solver.  This
module provides the neutral model object those formulations are written
against; backends (:mod:`repro.ilp.scipy_backend`, the pure-Python branch and
bound of :mod:`repro.ilp.branch_bound`) consume it.

Constraints are stored in the normal form ``lo <= expr <= hi`` where either
bound may be ``None``.  Convenience methods (:meth:`IntegerProgram.add_le`,
``add_ge``, ``add_eq``) accept :class:`~repro.ilp.expressions.LinExpr`
objects and scalars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ModelError
from .expressions import LinExpr, as_expr

__all__ = ["VariableKind", "VariableDef", "Constraint", "IntegerProgram"]


class VariableKind:
    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass(frozen=True)
class VariableDef:
    """Definition of a decision variable."""

    name: str
    lower: float
    upper: float
    kind: str = VariableKind.INTEGER

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ModelError(
                f"variable {self.name!r}: lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def is_integer(self) -> bool:
        return self.kind in (VariableKind.INTEGER, VariableKind.BINARY)


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``lo <= expr <= hi`` (either bound may be None)."""

    expr: LinExpr
    lower: Optional[float]
    upper: Optional[float]
    label: str = ""

    def satisfied_by(self, assignment: Mapping[str, float], tol: float = 1e-6) -> bool:
        value = self.expr.evaluate(assignment)
        if self.lower is not None and value < self.lower - tol:
            return False
        if self.upper is not None and value > self.upper + tol:
            return False
        return True


class IntegerProgram:
    """A named collection of variables, linear constraints and one objective."""

    def __init__(self, name: str = "intlp") -> None:
        self.name = name
        self._vars: Dict[str, VariableDef] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: str = "min"

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    def add_variable(
        self,
        name: str,
        lower: float,
        upper: float,
        kind: str = VariableKind.INTEGER,
    ) -> LinExpr:
        """Declare a variable and return it as a :class:`LinExpr` term."""

        if name in self._vars:
            raise ModelError(f"duplicate variable {name!r} in model {self.name!r}")
        self._vars[name] = VariableDef(name, float(lower), float(upper), kind)
        return LinExpr.term(name)

    def add_integer(self, name: str, lower: float, upper: float) -> LinExpr:
        return self.add_variable(name, lower, upper, VariableKind.INTEGER)

    def add_binary(self, name: str) -> LinExpr:
        return self.add_variable(name, 0, 1, VariableKind.BINARY)

    def add_continuous(self, name: str, lower: float, upper: float) -> LinExpr:
        return self.add_variable(name, lower, upper, VariableKind.CONTINUOUS)

    def has_variable(self, name: str) -> bool:
        return name in self._vars

    def variable(self, name: str) -> VariableDef:
        try:
            return self._vars[name]
        except KeyError as exc:
            raise ModelError(f"unknown variable {name!r}") from exc

    def variables(self) -> Sequence[VariableDef]:
        return tuple(self._vars.values())

    def variable_bounds(self) -> Dict[str, Tuple[float, float]]:
        return {v.name: (v.lower, v.upper) for v in self._vars.values()}

    @property
    def num_variables(self) -> int:
        return len(self._vars)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._vars.values() if v.is_integer)

    @property
    def num_binary_variables(self) -> int:
        return sum(1 for v in self._vars.values() if v.kind == VariableKind.BINARY)

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    def _check_expr(self, expr: LinExpr) -> None:
        for name in expr.terms:
            if name not in self._vars:
                raise ModelError(
                    f"constraint references unknown variable {name!r} in model {self.name!r}"
                )

    def add_constraint(
        self,
        expr: "LinExpr | str | float",
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        label: str = "",
    ) -> Constraint:
        expr = as_expr(expr)
        self._check_expr(expr)
        if lower is None and upper is None:
            raise ModelError("a constraint needs at least one bound")
        constraint = Constraint(expr, lower, upper, label)
        self._constraints.append(constraint)
        return constraint

    def add_le(self, expr, rhs: float, label: str = "") -> Constraint:
        """Add ``expr <= rhs``."""

        return self.add_constraint(as_expr(expr), None, float(rhs), label)

    def add_ge(self, expr, rhs: float, label: str = "") -> Constraint:
        """Add ``expr >= rhs``."""

        return self.add_constraint(as_expr(expr), float(rhs), None, label)

    def add_eq(self, expr, rhs: float, label: str = "") -> Constraint:
        """Add ``expr == rhs``."""

        return self.add_constraint(as_expr(expr), float(rhs), float(rhs), label)

    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #
    def maximize(self, expr) -> None:
        expr = as_expr(expr)
        self._check_expr(expr)
        self._objective = expr
        self._sense = "max"

    def minimize(self, expr) -> None:
        expr = as_expr(expr)
        self._check_expr(expr)
        self._objective = expr
        self._sense = "min"

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    # ------------------------------------------------------------------ #
    # Matrix export (consumed by the backends)
    # ------------------------------------------------------------------ #
    def to_arrays(self):
        """Export as dense arrays ``(names, c, A, cl, cu, lb, ub, integrality)``.

        The objective is always returned in *minimization* form (negated when
        the model maximizes); ``cl``/``cu`` are the per-row constraint bounds
        with +/-inf for missing ones.  Model sizes in this library are a few
        thousand cells at most, so a dense matrix is simpler and fast enough;
        the scipy backend converts to sparse for HiGHS.
        """

        # Deferred: the modelling layer itself is numpy-free; only this
        # dense export (used by the numeric solver backends) needs it.
        import numpy as np

        names = list(self._vars.keys())
        index = {n: i for i, n in enumerate(names)}
        nvar = len(names)
        ncon = len(self._constraints)

        c = np.zeros(nvar)
        for name, coeff in self._objective.terms.items():
            c[index[name]] = coeff
        if self._sense == "max":
            c = -c

        A = np.zeros((ncon, nvar))
        cl = np.full(ncon, -np.inf)
        cu = np.full(ncon, np.inf)
        for row, con in enumerate(self._constraints):
            for name, coeff in con.expr.terms.items():
                A[row, index[name]] = coeff
            offset = con.expr.constant
            if con.lower is not None:
                cl[row] = con.lower - offset
            if con.upper is not None:
                cu[row] = con.upper - offset

        lb = np.array([v.lower for v in self._vars.values()])
        ub = np.array([v.upper for v in self._vars.values()])
        integrality = np.array(
            [1 if v.is_integer else 0 for v in self._vars.values()]
        )
        return names, c, A, cl, cu, lb, ub, integrality

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def check_assignment(self, assignment: Mapping[str, float], tol: float = 1e-6) -> List[str]:
        """List of constraint labels violated by *assignment* (bounds included)."""

        problems: List[str] = []
        for var in self._vars.values():
            value = assignment.get(var.name)
            if value is None:
                problems.append(f"variable {var.name!r} not assigned")
                continue
            if value < var.lower - tol or value > var.upper + tol:
                problems.append(
                    f"variable {var.name!r}={value} outside [{var.lower}, {var.upper}]"
                )
        for i, con in enumerate(self._constraints):
            if not con.satisfied_by(assignment, tol):
                problems.append(con.label or f"constraint #{i}")
        return problems

    def statistics(self) -> Dict[str, int]:
        """Model size summary used by the intLP-size experiment."""

        return {
            "variables": self.num_variables,
            "integer_variables": self.num_integer_variables,
            "binary_variables": self.num_binary_variables,
            "constraints": self.num_constraints,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntegerProgram({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints}, sense={self._sense})"
        )
