"""A pure-Python LP-based branch-and-bound solver.

This is a deliberately simple fallback/cross-check backend: it solves the
continuous relaxation with :func:`scipy.optimize.linprog` (HiGHS simplex)
and branches on the most fractional integer variable.  It exists for three
reasons:

* it removes any doubt that the reproduction depends on a particular MIP
  implementation -- the tests cross-check it against ``scipy.optimize.milp``
  on small models;
* it gives the ablation benchmarks a second, slower exact solver, mirroring
  the paper's remark that reaching proven optima "was very time consuming";
* it documents, in ~150 lines, exactly what "solving the intLP" means.

It is only intended for small models (tens of integer variables).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import SolverError
from .model import IntegerProgram
from .solution import Solution, SolveStatus

__all__ = ["solve_with_branch_and_bound"]

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


def _solve_relaxation(c, A, cl, cu, lower, upper):
    """Solve the LP relaxation with row bounds cl <= A x <= cu."""

    a_ub, b_ub = [], []
    a_eq, b_eq = [], []
    for row, lo, hi in zip(A, cl, cu):
        if lo == hi:
            a_eq.append(row)
            b_eq.append(lo)
            continue
        if np.isfinite(hi):
            a_ub.append(row)
            b_ub.append(hi)
        if np.isfinite(lo):
            a_ub.append(-row)
            b_ub.append(-lo)
    res = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    return res


def solve_with_branch_and_bound(
    program: IntegerProgram,
    time_limit: Optional[float] = 60.0,
    mip_rel_gap: float = 0.0,
    max_nodes: int = 50_000,
) -> Solution:
    """Solve *program* exactly by LP-based branch and bound.

    Best-bound search; branching variable = most fractional integer variable.
    Returns the same :class:`~repro.ilp.solution.Solution` structure -- and
    the same :class:`~repro.ilp.solution.SolveStatus` vocabulary -- as the
    SciPy backend: TIME_LIMIT means wall clock ran out, ITERATION_LIMIT
    means the node cap was hit, and ``mip_gap`` carries the achieved
    relative gap against the best open bound either way.  ``mip_rel_gap``
    prunes, like HiGHS, any subtree that cannot improve the incumbent by
    more than the requested relative gap (0 = prove optimality).
    """

    names, c, A, cl, cu, lb, ub, integrality = program.to_arrays()
    if not names:
        raise SolverError(f"model {program.name!r} has no variables")
    integer_indices = [i for i, flag in enumerate(integrality) if flag]

    start = time.perf_counter()
    counter = itertools.count()
    incumbent: Optional[np.ndarray] = None
    incumbent_value = math.inf
    explored = 0

    def cutoff() -> float:
        # Subtrees bounded above this value cannot beat the incumbent by
        # more than the requested relative gap.
        return incumbent_value - max(1e-9, mip_rel_gap * abs(incumbent_value))

    root = _solve_relaxation(c, A, cl, cu, lb, ub)
    if root.status == 2:
        return Solution(SolveStatus.INFEASIBLE, solver="branch-bound",
                        wall_time=time.perf_counter() - start, termination="infeasible")
    if root.status == 3:
        return Solution(SolveStatus.UNBOUNDED, solver="branch-bound",
                        wall_time=time.perf_counter() - start, termination="unbounded")
    if root.status != 0:
        raise SolverError(f"LP relaxation failed: {root.message}")

    heap: List[_Node] = [_Node(root.fun, next(counter), lb.copy(), ub.copy(), 0)]
    #: Tightest bound among subtrees pruned by the gap rule; together with
    #: the still-open nodes it proves the final gap.
    pruned_bound = math.inf
    stop_reason = ""

    while heap:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            stop_reason = "time limit reached"
            break
        if explored >= max_nodes:
            stop_reason = "node limit reached"
            break
        node = heapq.heappop(heap)
        if node.bound >= cutoff():
            pruned_bound = min(pruned_bound, node.bound)
            continue
        res = _solve_relaxation(c, A, cl, cu, node.lower, node.upper)
        explored += 1
        if res.status != 0:
            continue  # infeasible or failed subproblem: prune
        if res.fun >= cutoff():
            pruned_bound = min(pruned_bound, res.fun)
            continue
        x = res.x
        # Find the most fractional integer variable.
        frac_idx, frac_amount = -1, 0.0
        for i in integer_indices:
            frac = abs(x[i] - round(x[i]))
            if frac > _INT_TOL and frac > frac_amount:
                frac_idx, frac_amount = i, frac
        if frac_idx < 0:
            # Integral solution.
            if res.fun < incumbent_value:
                incumbent_value = res.fun
                incumbent = x.copy()
            continue
        floor_val = math.floor(x[frac_idx])
        # Down branch.
        lo_d, up_d = node.lower.copy(), node.upper.copy()
        up_d[frac_idx] = floor_val
        if lo_d[frac_idx] <= up_d[frac_idx]:
            heapq.heappush(heap, _Node(res.fun, next(counter), lo_d, up_d, node.depth + 1))
        # Up branch.
        lo_u, up_u = node.lower.copy(), node.upper.copy()
        lo_u[frac_idx] = floor_val + 1
        if lo_u[frac_idx] <= up_u[frac_idx]:
            heapq.heappush(heap, _Node(res.fun, next(counter), lo_u, up_u, node.depth + 1))

    elapsed = time.perf_counter() - start
    limit_status = (
        SolveStatus.ITERATION_LIMIT
        if stop_reason == "node limit reached"
        else SolveStatus.TIME_LIMIT
    )
    if incumbent is None:
        status = limit_status if stop_reason else SolveStatus.INFEASIBLE
        return Solution(status, solver="branch-bound", wall_time=elapsed,
                        nodes_explored=explored,
                        termination=stop_reason or "infeasible")

    # Proven lower bound (internal minimization sense): anything still open
    # plus anything the gap rule pruned; the achieved gap is measured on it.
    lower = min([n.bound for n in heap] + [pruned_bound, incumbent_value])
    gap = max(0.0, (incumbent_value - lower) / max(1e-10, abs(incumbent_value)))

    values: Dict[str, float] = {}
    for name, value, is_int in zip(names, incumbent, integrality):
        values[name] = float(round(value)) if is_int else float(value)
    objective = program.objective.evaluate(values)
    status = limit_status if stop_reason else SolveStatus.OPTIMAL
    if not stop_reason:
        stop_reason = (
            "optimal" if mip_rel_gap <= 0.0
            else f"optimal within mip_rel_gap={mip_rel_gap:g}"
        )
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solver="branch-bound",
        wall_time=elapsed,
        nodes_explored=explored,
        termination=stop_reason,
        mip_gap=gap,
    )
