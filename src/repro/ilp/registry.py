"""Pluggable intLP solver backends behind one declared, ordered interface.

The paper ran its Section-5 experiments on CPLEX; this reproduction started
with HiGHS-through-scipy hardwired plus a pure-Python branch-and-bound for
cross-checks.  The registry turns "which solver" into data: a backend is a
name, a :class:`BackendCapabilities` declaration, and a solve callable, and
every solve in the code base routes through :meth:`BackendRegistry.solve`.
Following Menouer & Le Cun's Bobpp framework (PAPERS.md), reproducibility
across heterogeneous solvers is preserved by making the backend choice a
*declared, ordered property* of each instance rather than a race: the
``auto`` policy is a deterministic function of the model's size and the
registration order, it is resolved in the dispatching process (never in a
worker), and the resolved name travels with the
:class:`~repro.ilp.solution.Solution` so reports can record it.

Resolution order of ``backend="auto"``:

1. the ``REPRO_ILP_BACKEND`` environment variable, when set (CI and the
   benchmarks use it to force a backend fleet-wide);
2. the first registered backend, in registration order, that proves
   optimality and whose declared size ceiling fits the model.

Capabilities are enforced at the call boundary: asking a backend for a
``time_limit`` or ``mip_rel_gap`` it declared absent raises
:class:`~repro.errors.SolverError` instead of silently ignoring the knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import InfeasibleError, SolverError, UnboundedError
from .model import IntegerProgram
from .solution import Solution, SolveStatus

__all__ = [
    "BackendCapabilities",
    "Backend",
    "BackendRegistry",
    "default_registry",
    "register_backend",
    "backend_request_token",
]

#: Environment variable overriding the ``auto`` backend choice.
BACKEND_ENV = "REPRO_ILP_BACKEND"


@dataclass(frozen=True)
class BackendCapabilities:
    """What a solver backend declares it can do.

    Attributes
    ----------
    time_limit:
        The backend honours a wall-clock limit in seconds.
    mip_rel_gap:
        The backend honours a relative MIP gap target.
    proves_optimality:
        An OPTIMAL status from this backend is a proof (the Section-5
        experiments only compare heuristics against proven optima).
    max_integer_variables:
        Declared size ceiling for the ``auto`` policy; ``None`` means
        unbounded.  Models above the ceiling are never auto-routed to this
        backend (an explicit ``backend=name`` still is).
    """

    time_limit: bool = True
    mip_rel_gap: bool = True
    proves_optimality: bool = True
    max_integer_variables: Optional[int] = None


@dataclass(frozen=True)
class Backend:
    """A registered solver backend: name + capabilities + solve callable.

    ``fn(program, time_limit=..., mip_rel_gap=...)`` must return a
    :class:`~repro.ilp.solution.Solution` using the shared
    :class:`~repro.ilp.solution.SolveStatus` vocabulary; unsupported
    keywords are simply not passed (the registry filters by capabilities).
    """

    name: str
    caps: BackendCapabilities
    fn: Callable[..., Solution]


class BackendRegistry:
    """Ordered registry of intLP backends with a deterministic auto policy."""

    def __init__(self) -> None:
        self._backends: Dict[str, Backend] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration / lookup
    # ------------------------------------------------------------------ #
    def register_backend(
        self,
        name: str,
        caps: BackendCapabilities,
        fn: Callable[..., Solution],
        aliases: Sequence[str] = (),
        replace_existing: bool = False,
    ) -> Backend:
        """Register *fn* as backend *name*; earlier registrations rank higher
        in the ``auto`` policy."""

        if name == "auto" or "auto" in aliases:
            raise SolverError("'auto' is reserved for the selection policy")
        if not replace_existing and (name in self._backends or name in self._aliases):
            raise SolverError(f"backend {name!r} is already registered")
        if not replace_existing:
            for alias in aliases:
                if alias in self._backends or alias in self._aliases:
                    raise SolverError(f"alias {alias!r} shadows a registered backend")
        backend = Backend(name=name, caps=caps, fn=fn)
        self._backends[name] = backend
        for alias in aliases:
            self._aliases[alias] = name
        return backend

    def names(self) -> List[str]:
        """Registered backend names, in registration (= auto priority) order."""

        return list(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends or name in self._aliases

    def get(self, name: str) -> Backend:
        canonical = self._aliases.get(name, name)
        try:
            return self._backends[canonical]
        except KeyError as exc:
            raise SolverError(
                f"unknown intLP backend {name!r}; available: "
                f"{sorted(set(self._backends) | set(self._aliases))}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Auto policy
    # ------------------------------------------------------------------ #
    def choose(self, program: IntegerProgram) -> Backend:
        """Deterministically pick a backend for *program* (the ``auto`` policy)."""

        return self.choose_by_size(program.num_integer_variables)

    def choose_by_size(self, integer_variables: int) -> Backend:
        """The ``auto`` policy on a bare size: first registered backend that
        proves optimality and whose declared ceiling fits the model.

        Exposed separately so batch planners can assign per-instance
        backends in the dispatching process, before any model is built
        (the Bobpp-style "declared, ordered property" contract).
        """

        env = os.environ.get(BACKEND_ENV, "").strip()
        if env:
            return self.get(env)
        fallback: Optional[Backend] = None
        for backend in self._backends.values():
            ceiling = backend.caps.max_integer_variables
            if ceiling is not None and integer_variables > ceiling:
                continue
            if backend.caps.proves_optimality:
                return backend
            fallback = fallback or backend
        if fallback is not None:
            return fallback
        raise SolverError(
            f"no registered backend accepts a model with {integer_variables} "
            f"integer variables; available: {self.names()}"
        )

    def resolve(self, program: IntegerProgram, backend: str = "auto") -> Backend:
        """Resolve a backend request (``"auto"`` or a name) to a backend."""

        if backend == "auto":
            return self.choose(program)
        return self.get(backend)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        program: IntegerProgram,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        mip_rel_gap: float = 0.0,
        require_feasible: bool = False,
    ) -> Solution:
        """Solve *program* with the named (or auto-chosen) backend.

        The returned :class:`Solution` carries the resolved registry name in
        ``Solution.backend``.  When ``require_feasible`` is set an
        infeasible or unbounded outcome raises
        :class:`~repro.errors.InfeasibleError` /
        :class:`~repro.errors.UnboundedError` instead of returning a
        status-only solution.
        """

        chosen = self.resolve(program, backend)
        kwargs = {}
        if time_limit is not None:
            if not chosen.caps.time_limit:
                raise SolverError(
                    f"backend {chosen.name!r} declares no time-limit support"
                )
            kwargs["time_limit"] = float(time_limit)
        if mip_rel_gap:
            if not chosen.caps.mip_rel_gap:
                raise SolverError(
                    f"backend {chosen.name!r} declares no MIP-gap support"
                )
            kwargs["mip_rel_gap"] = float(mip_rel_gap)
        solution = chosen.fn(program, **kwargs)
        solution = replace(solution, backend=chosen.name)
        if require_feasible:
            if solution.status is SolveStatus.INFEASIBLE:
                raise InfeasibleError(f"model {program.name!r} is infeasible")
            if solution.status is SolveStatus.UNBOUNDED:
                raise UnboundedError(f"model {program.name!r} is unbounded")
        return solution


def backend_request_token(backend: str = "auto") -> str:
    """Stable cache-key token for a backend request.

    ``"auto"`` folds in the ``REPRO_ILP_BACKEND`` override (a forced backend
    must not share cached results with the unforced policy) without having
    to build the model the policy would size against.
    """

    if backend == "auto":
        env = os.environ.get(BACKEND_ENV, "").strip()
        return f"auto->{env}" if env else "auto"
    return backend


def _build_default_registry() -> BackendRegistry:
    # Imported lazily so the registry module stays importable without scipy
    # (a stubbed backend can then be registered in its place).  A backend
    # whose numeric dependencies are missing is simply not registered;
    # asking for it by name then raises the registry's usual unknown-backend
    # error, while the modelling layer keeps working.
    registry = BackendRegistry()
    try:
        from .scipy_backend import solve_with_scipy
    except ImportError:
        pass
    else:
        registry.register_backend(
            "scipy",
            BackendCapabilities(
                time_limit=True, mip_rel_gap=True, proves_optimality=True
            ),
            solve_with_scipy,
            aliases=("highs", "scipy-highs"),
        )
    try:
        from .branch_bound import solve_with_branch_and_bound
    except ImportError:
        pass
    else:
        registry.register_backend(
            "branch-bound",
            BackendCapabilities(
                time_limit=True,
                mip_rel_gap=True,
                proves_optimality=True,
                # The pure-Python solver is only meant for tens of integer
                # variables; auto never routes bigger models to it.
                max_integer_variables=60,
            ),
            solve_with_branch_and_bound,
            aliases=("branch_bound", "bb"),
        )
    return registry


_DEFAULT: Optional[BackendRegistry] = None


def default_registry() -> BackendRegistry:
    """The process-wide registry used by :func:`repro.ilp.solve`."""

    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _build_default_registry()
    return _DEFAULT


def register_backend(
    name: str,
    caps: BackendCapabilities,
    fn: Callable[..., Solution],
    aliases: Sequence[str] = (),
    replace_existing: bool = False,
) -> Backend:
    """Register a backend on the default registry (plug-in entry point)."""

    return default_registry().register_backend(
        name, caps, fn, aliases=aliases, replace_existing=replace_existing
    )
