"""Solve :class:`~repro.ilp.model.IntegerProgram` instances with SciPy/HiGHS.

The paper used CPLEX; this reproduction uses the HiGHS mixed-integer solver
shipped with :func:`scipy.optimize.milp`, which returns proven optima for the
model sizes produced by the register-saturation formulations (a few hundred
integer variables).  The backend is intentionally thin: model -> matrices ->
``milp`` -> :class:`~repro.ilp.solution.Solution`.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import SolverError
from .model import IntegerProgram
from .solution import Solution, SolveStatus

__all__ = ["solve_with_scipy"]


_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def _limit_status(message: str) -> SolveStatus:
    """Disambiguate scipy's status 1 ("iteration or time limit reached").

    scipy folds every HiGHS resource-limit termination into one code, but
    the message carries the actual model status ("Time limit reached",
    "Iteration limit reached", "Solution limit reached", ...).  A TIME_LIMIT
    report must mean wall clock ran out, nothing else.
    """

    lowered = message.lower()
    if "time limit" in lowered:
        return SolveStatus.TIME_LIMIT
    if "iteration limit" in lowered or "node limit" in lowered:
        return SolveStatus.ITERATION_LIMIT
    # Unknown resource limit: keep the historic reading but the verbatim
    # reason travels in Solution.termination so reports stay honest.
    return SolveStatus.TIME_LIMIT


def solve_with_scipy(
    program: IntegerProgram,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
) -> Solution:
    """Solve *program* with HiGHS and return a :class:`Solution`.

    Parameters
    ----------
    program:
        The integer program to solve.
    time_limit:
        Wall-clock limit in seconds passed to HiGHS (None = no limit).
    mip_rel_gap:
        Relative MIP gap; the experiments use 0 (prove optimality) because
        the whole point of Section 5 is to compare heuristics against proven
        optima.
    """

    names, c, A, cl, cu, lb, ub, integrality = program.to_arrays()
    if not names:
        raise SolverError(f"model {program.name!r} has no variables")

    constraints = []
    if A.shape[0] > 0:
        constraints.append(LinearConstraint(sparse.csr_matrix(A), cl, cu))

    options = {"mip_rel_gap": float(mip_rel_gap)}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    start = time.perf_counter()
    try:
        result = milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lb, ub),
            options=options,
        )
    except Exception as exc:  # pragma: no cover - defensive
        raise SolverError(f"scipy.milp failed on model {program.name!r}: {exc}") from exc
    elapsed = time.perf_counter() - start

    message = str(getattr(result, "message", ""))
    if result.status == 1:
        status = _limit_status(message)
    else:
        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    values = {}
    objective = None
    if result.x is not None:
        raw = np.asarray(result.x, dtype=float)
        for name, value, is_int in zip(names, raw, integrality):
            values[name] = float(round(value)) if is_int else float(value)
        # Recompute the objective from the (rounded) assignment so the sign
        # convention of a maximization model is restored exactly.
        objective = program.objective.evaluate(values)
    gap = getattr(result, "mip_gap", None)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solver="scipy-highs",
        wall_time=elapsed,
        message=message,
        termination=message,
        mip_gap=None if gap is None else float(gap),
    )
