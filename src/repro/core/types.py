"""Fundamental value and dependence types of the DAG model (paper Section 2).

The paper models a data dependence graph ``G = (V, E, delta)`` over a RISC
style architecture with multiple *register types* ``T`` (for instance
``{int, float}``).  A statement writes into at most one register of a given
type; the pair ``(operation, register type)`` therefore identifies a value.
This module defines:

* :class:`RegisterType` -- a named register class (int, float, branch, ...);
* :class:`Value` -- a value ``u^t`` produced by operation ``u`` into a
  register of type ``t``;
* :class:`DependenceKind` -- flow (through a register) versus serial
  (ordering only) dependence arcs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "RegisterType",
    "INT",
    "FLOAT",
    "BRANCH",
    "Value",
    "DependenceKind",
    "BOTTOM",
    "canonical_type",
]


#: Name of the virtual bottom node ``⊥`` added by :meth:`repro.core.graph.DDG.with_bottom`.
BOTTOM = "__bottom__"


@dataclass(frozen=True, order=True)
class RegisterType:
    """A register type ``t`` of the target architecture.

    The paper's model is parameterised by a set of register types ``T``.
    Register types are value objects identified by their name; two
    ``RegisterType`` instances with the same name are interchangeable.

    Parameters
    ----------
    name:
        A short identifier, e.g. ``"int"``, ``"float"`` or ``"fp"``.
    """

    name: str

    def __post_init__(self) -> None:
        # Register types and values are hashed millions of times by the
        # antichain/interference machinery; the generated dataclass hash
        # rebuilds a field tuple per call, so cache it once.
        object.__setattr__(self, "_hash", hash((RegisterType, self.name)))

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:  # unpickled instance: recompute in-process
            h = hash((RegisterType, self.name))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        # The cached hash mixes an id-based class hash and the randomized
        # str hash, both process-local; shipping it to a spawn/forkserver
        # worker would silently break dict/set lookups there.
        state = self.__dict__.copy()
        state.pop("_hash", None)
        return state

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: The general purpose (integer) register type used throughout the examples.
INT = RegisterType("int")
#: The floating point register type.
FLOAT = RegisterType("float")
#: A branch/predicate register type (EPIC/IA64 style); rarely used but
#: exercises the multi-type code paths.
BRANCH = RegisterType("branch")

_WELL_KNOWN = {t.name: t for t in (INT, FLOAT, BRANCH)}


def canonical_type(rtype: "RegisterType | str") -> RegisterType:
    """Return a :class:`RegisterType` for *rtype*, accepting plain strings.

    The public API accepts either a :class:`RegisterType` or its name.  This
    helper normalises both spellings; well known names reuse the module level
    singletons so identity comparisons keep working in user code.
    """

    if isinstance(rtype, RegisterType):
        return rtype
    if isinstance(rtype, str):
        return _WELL_KNOWN.get(rtype, RegisterType(rtype))
    raise TypeError(f"expected RegisterType or str, got {type(rtype).__name__}")


@dataclass(frozen=True, order=True)
class Value:
    """A value ``u^t`` of register type ``t`` produced by operation ``u``.

    The paper writes ``u^t`` for the value of type ``t`` defined by statement
    ``u``; because a statement defines at most one value per type, the pair
    ``(node, rtype)`` is a unique identifier.
    """

    node: str
    rtype: RegisterType

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((Value, self.node, self.rtype.name)))

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:  # unpickled instance: recompute in-process
            h = hash((Value, self.node, self.rtype.name))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_hash", None)
        return state

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.node}^{self.rtype.name}"


class DependenceKind(enum.Enum):
    """Kind of a dependence arc in the DDG.

    ``FLOW`` arcs carry a value through a register of a given type (the set
    ``E_{R,t}`` of the paper); ``SERIAL`` arcs only impose an ordering --
    they model anti/output/memory dependences, control constraints and the
    serial arcs introduced by register saturation reduction.
    """

    FLOW = "flow"
    SERIAL = "serial"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def sorted_types(types: Iterable[RegisterType]) -> list[RegisterType]:
    """Return *types* sorted by name (deterministic iteration helper)."""

    return sorted(set(types), key=lambda t: t.name)
