"""The data dependence graph (DDG) of the paper's Section 2.

A DDG ``G = (V, E, delta)`` records the data dependences between the
operations of a basic block together with any other serial constraint.  Arcs
are either *flow* arcs -- they carry a value of some register type ``t`` and
belong to ``E_{R,t}`` -- or *serial* arcs that only constrain the schedule.
Each arc ``e`` has a latency ``delta(e)`` in clock cycles; a schedule
``sigma`` is valid iff ``sigma(v) - sigma(u) >= delta(e)`` for every arc
``e = (u, v)``.

The class :class:`DDG` is the central data structure of the library.  It is
a light-weight adjacency structure (not a :mod:`networkx` graph) because the
register-saturation algorithms need multi-arcs with typed attributes, cheap
copies, and deterministic iteration order; a :meth:`DDG.to_networkx` bridge
is provided for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import CyclicGraphError, GraphError
from .operation import Operation
from .types import BOTTOM, DependenceKind, RegisterType, Value, canonical_type

__all__ = ["Edge", "DDG"]


@dataclass(frozen=True)
class Edge:
    """A dependence arc ``e = (src, dst)`` with latency ``delta(e)``.

    ``kind`` distinguishes flow arcs (through a register of type ``rtype``)
    from purely serial arcs (``rtype is None``).
    """

    src: str
    dst: str
    latency: int
    kind: DependenceKind = DependenceKind.FLOW
    rtype: Optional[RegisterType] = None

    def __post_init__(self) -> None:
        if self.kind is DependenceKind.FLOW and self.rtype is None:
            raise GraphError(f"flow edge {self.src}->{self.dst} needs a register type")
        if self.kind is DependenceKind.SERIAL and self.rtype is not None:
            raise GraphError(
                f"serial edge {self.src}->{self.dst} must not carry a register type"
            )

    @property
    def is_flow(self) -> bool:
        return self.kind is DependenceKind.FLOW

    @property
    def is_serial(self) -> bool:
        return self.kind is DependenceKind.SERIAL

    def with_latency(self, latency: int) -> "Edge":
        return replace(self, latency=latency)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"flow[{self.rtype}]" if self.is_flow else "serial"
        return f"{self.src} -({self.latency},{tag})-> {self.dst}"


class DDG:
    """A directed acyclic data dependence graph.

    The graph stores :class:`~repro.core.operation.Operation` nodes keyed by
    name and :class:`Edge` arcs.  Parallel arcs between the same pair of
    nodes are allowed (e.g. a flow arc of type ``float`` plus a serial arc);
    exact duplicates are collapsed keeping the largest latency, which is the
    only one that matters for scheduling.

    The class deliberately exposes a small, explicit API -- everything the
    algorithms of the paper need and nothing more.
    """

    def __init__(self, name: str = "ddg") -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._succ: Dict[str, Dict[str, List[Edge]]] = {}
        self._pred: Dict[str, Dict[str, List[Edge]]] = {}
        self._version = 0
        self._topo_cache: Optional[Tuple[int, List[str]]] = None

    @property
    def version(self) -> int:
        """Monotonic structural revision; bumped by every mutation.

        :class:`~repro.analysis.context.AnalysisContext` compares this
        counter against the revision it cached its analyses for, so stale
        results are discarded automatically after in-place mutations.
        """

        return self._version

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_operation(self, op: Operation | str, **kwargs) -> Operation:
        """Add an operation to the graph and return it.

        ``op`` may be an :class:`Operation` instance or a bare name, in which
        case the remaining keyword arguments are forwarded to the
        :class:`Operation` constructor.
        """

        if isinstance(op, str):
            op = Operation(name=op, **kwargs)
        elif kwargs:
            raise GraphError("keyword arguments are only accepted with a bare name")
        if op.name in self._ops:
            raise GraphError(f"duplicate operation name {op.name!r}")
        self._ops[op.name] = op
        self._succ[op.name] = {}
        self._pred[op.name] = {}
        self._version += 1
        return op

    def _check_node(self, name: str) -> None:
        if name not in self._ops:
            raise GraphError(f"unknown operation {name!r} in DDG {self.name!r}")

    def _insert_edge(self, edge: Edge) -> Edge:
        self._check_node(edge.src)
        self._check_node(edge.dst)
        if edge.src == edge.dst:
            raise GraphError(f"self loop on {edge.src!r} is not allowed in a DDG")
        if edge.latency < 0:
            # Negative latencies appear only on the serialization arcs that
            # RS reduction may introduce for VLIW/EPIC targets; they are
            # accepted on serial arcs only.
            if edge.is_flow:
                raise GraphError("flow edges must have a non-negative latency")
        bucket = self._succ[edge.src].setdefault(edge.dst, [])
        for i, existing in enumerate(bucket):
            if existing.kind is edge.kind and existing.rtype == edge.rtype:
                # Keep the most constraining (largest latency) duplicate.
                if edge.latency > existing.latency:
                    bucket[i] = edge
                    self._pred[edge.dst][edge.src][i] = edge
                    self._version += 1
                return bucket[i]
        bucket.append(edge)
        self._pred[edge.dst].setdefault(edge.src, []).append(edge)
        self._version += 1
        return edge

    def add_flow_edge(
        self,
        src: str,
        dst: str,
        rtype: RegisterType | str,
        latency: Optional[int] = None,
    ) -> Edge:
        """Add a flow dependence ``src -> dst`` through a register of type *rtype*.

        When *latency* is omitted the latency of the producing operation is
        used, which matches the usual construction of DDGs from code.
        """

        rtype = canonical_type(rtype)
        self._check_node(src)
        if not self._ops[src].defines(rtype):
            raise GraphError(
                f"operation {src!r} does not define a value of type {rtype.name!r}"
            )
        if latency is None:
            latency = self._ops[src].latency
        return self._insert_edge(
            Edge(src, dst, latency, DependenceKind.FLOW, rtype)
        )

    def add_serial_edge(self, src: str, dst: str, latency: int = 0) -> Edge:
        """Add a serial (ordering only) arc ``src -> dst``."""

        return self._insert_edge(Edge(src, dst, latency, DependenceKind.SERIAL, None))

    def add_edge(self, edge: Edge) -> Edge:
        """Add a pre-built :class:`Edge` (used by graph transformations)."""

        return self._insert_edge(edge)

    def remove_edge(self, edge: Edge) -> None:
        """Remove an arc previously returned by an ``add_*_edge`` call."""

        try:
            self._succ[edge.src][edge.dst].remove(edge)
            self._pred[edge.dst][edge.src].remove(edge)
        except (KeyError, ValueError) as exc:  # pragma: no cover - defensive
            raise GraphError(f"edge {edge} is not part of the graph") from exc
        if not self._succ[edge.src][edge.dst]:
            del self._succ[edge.src][edge.dst]
            del self._pred[edge.dst][edge.src]
        self._version += 1

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def n(self) -> int:
        """Number of operations (the paper's ``n``)."""

        return len(self._ops)

    @property
    def m(self) -> int:
        """Number of arcs (the paper's ``m``)."""

        return sum(len(b) for succ in self._succ.values() for b in succ.values())

    def operation(self, name: str) -> Operation:
        self._check_node(name)
        return self._ops[name]

    def operations(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def nodes(self) -> List[str]:
        return list(self._ops.keys())

    def edges(self) -> Iterator[Edge]:
        for succ in self._succ.values():
            for bucket in succ.values():
                yield from bucket

    def edges_between(self, src: str, dst: str) -> Sequence[Edge]:
        return tuple(self._succ.get(src, {}).get(dst, ()))

    def best_latency_between(self, src: str, dst: str) -> Optional[int]:
        """Largest latency among the arcs ``src -> dst``, or None when absent.

        The reduction session's candidate filter asks this for every
        (reader, target) pair of every iteration; answering it without
        materialising the :meth:`edges_between` tuple keeps that loop cheap.
        """

        bucket = self._succ.get(src, {}).get(dst)
        if not bucket:
            return None
        return max(e.latency for e in bucket)

    def successors(self, name: str) -> List[str]:
        self._check_node(name)
        return list(self._succ[name].keys())

    def predecessors(self, name: str) -> List[str]:
        self._check_node(name)
        return list(self._pred[name].keys())

    def out_edges(self, name: str) -> Iterator[Edge]:
        self._check_node(name)
        for bucket in self._succ[name].values():
            yield from bucket

    def in_edges(self, name: str) -> Iterator[Edge]:
        self._check_node(name)
        for bucket in self._pred[name].values():
            yield from bucket

    def in_degree(self, name: str) -> int:
        return sum(len(b) for b in self._pred[name].values())

    def out_degree(self, name: str) -> int:
        return sum(len(b) for b in self._succ[name].values())

    def sources(self) -> List[str]:
        """Operations without predecessors."""

        return [v for v in self._ops if not self._pred[v]]

    def sinks(self) -> List[str]:
        """Operations without successors."""

        return [v for v in self._ops if not self._succ[v]]

    # ------------------------------------------------------------------ #
    # Register-model queries (paper Section 2)
    # ------------------------------------------------------------------ #
    def register_types(self) -> List[RegisterType]:
        """All register types defined by at least one operation, sorted by name."""

        types = {t for op in self._ops.values() for t in op.defs}
        return sorted(types, key=lambda t: t.name)

    def values(self, rtype: RegisterType | str) -> List[Value]:
        """The set ``V_{R,t}`` of values of type *rtype* (excluding ``⊥``)."""

        rtype = canonical_type(rtype)
        return [
            Value(op.name, rtype)
            for op in self._ops.values()
            if op.defines(rtype) and op.name != BOTTOM
        ]

    def flow_edges(self, rtype: RegisterType | str | None = None) -> Iterator[Edge]:
        """Flow arcs, optionally restricted to one register type (``E_{R,t}``)."""

        rtype = canonical_type(rtype) if rtype is not None else None
        for edge in self.edges():
            if edge.is_flow and (rtype is None or edge.rtype == rtype):
                yield edge

    def consumers(self, node: str, rtype: RegisterType | str) -> List[str]:
        """``Cons(u^t)``: operations reading the value of type *rtype* defined by *node*."""

        rtype = canonical_type(rtype)
        self._check_node(node)
        out: List[str] = []
        for dst, bucket in self._succ[node].items():
            if any(e.is_flow and e.rtype == rtype for e in bucket):
                out.append(dst)
        return out

    def exit_values(self, rtype: RegisterType | str) -> List[Value]:
        """Values of type *rtype* without any consumer in the DDG."""

        rtype = canonical_type(rtype)
        return [v for v in self.values(rtype) if not self.consumers(v.node, rtype)]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[str]:
        """A topological order of the operations (Kahn's algorithm).

        Raises :class:`~repro.errors.CyclicGraphError` when the graph has a
        cycle, which can only happen after external transformations added
        serial arcs carelessly.
        """

        cached = self._topo_cache
        if cached is not None and cached[0] == self._version:
            return list(cached[1])
        indeg = {v: 0 for v in self._ops}
        for edge in self.edges():
            indeg[edge.dst] += 1
        ready = [v for v in self._ops if indeg[v] == 0]
        order: List[str] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= len(self._succ[v][w])
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != len(self._ops):
            raise CyclicGraphError(
                f"DDG {self.name!r} contains a dependence cycle"
            )
        # Memoized per structural revision (callers like the analysis
        # context request the order several times between mutations); the
        # cached list is copied out so callers may mutate their view.
        self._topo_cache = (self._version, order)
        return list(order)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except CyclicGraphError:
            return False
        return True

    @property
    def has_bottom(self) -> bool:
        return BOTTOM in self._ops

    def with_bottom(self) -> "DDG":
        """Return a copy of the graph extended with the virtual bottom node ``⊥``.

        Following the paper: ``⊥`` is the sink of the flow dependences of the
        exit values (so that every value has at least one consumer and its
        killing date is well defined) and every other node has a serial arc
        towards ``⊥`` whose latency equals the latency of the source
        operation.  ``⊥`` is therefore always the last scheduled node.
        """

        if self.has_bottom:
            return self.copy()
        g = self.copy()
        g.add_operation(Operation(BOTTOM, latency=0, opcode="bottom", fu_class="none"))
        for rtype in g.register_types():
            for value in list(g.exit_values(rtype)):
                if value.node == BOTTOM:
                    continue
                g.add_flow_edge(value.node, BOTTOM, rtype)
        for node, op in list(g._ops.items()):
            if node == BOTTOM:
                continue
            if BOTTOM not in g._succ[node]:
                g.add_serial_edge(node, BOTTOM, latency=op.latency)
        return g

    def without_bottom(self) -> "DDG":
        """Return a copy of the graph with the virtual bottom node removed."""

        if not self.has_bottom:
            return self.copy()
        g = DDG(self.name)
        for op in self._ops.values():
            if op.name != BOTTOM:
                g.add_operation(op)
        for edge in self.edges():
            if BOTTOM not in (edge.src, edge.dst):
                g.add_edge(edge)
        return g

    def copy(self, name: Optional[str] = None) -> "DDG":
        g = DDG(name or self.name)
        for op in self._ops.values():
            g.add_operation(op)
        for edge in self.edges():
            g.add_edge(edge)
        return g

    def replace_operation(self, op: Operation) -> None:
        """Replace the stored operation carrying ``op.name`` (keeps the arcs)."""

        self._check_node(op.name)
        self._ops[op.name] = op
        self._version += 1

    # ------------------------------------------------------------------ #
    # Interoperability / debugging
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` (for plotting/analysis)."""

        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for op in self._ops.values():
            g.add_node(op.name, operation=op)
        for edge in self.edges():
            g.add_edge(
                edge.src,
                edge.dst,
                latency=edge.latency,
                kind=edge.kind.value,
                rtype=None if edge.rtype is None else edge.rtype.name,
            )
        return g

    def summary(self) -> Mapping[str, object]:
        """A small dictionary describing the graph (used by the reports)."""

        return {
            "name": self.name,
            "operations": self.n,
            "edges": self.m,
            "flow_edges": sum(1 for e in self.edges() if e.is_flow),
            "register_types": [t.name for t in self.register_types()],
            "values": {
                t.name: len(self.values(t)) for t in self.register_types()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DDG({self.name!r}, n={self.n}, m={self.m})"
