"""Core DDG / processor model of the paper (Section 2)."""

from .builder import DDGBuilder, chain_ddg, fork_join_ddg, independent_chains_ddg
from .graph import DDG, Edge
from .lifetime import (
    LifetimeInterval,
    interference_graph,
    intervals_interfere,
    killing_date,
    max_simultaneously_alive,
    register_need,
    register_need_all_types,
    simultaneously_alive_at,
    value_lifetimes,
)
from .machine import (
    ArchitectureFamily,
    FunctionalUnitSpec,
    ProcessorModel,
    epic,
    generic_machine,
    retarget,
    superscalar,
    vliw,
)
from .operation import Operation
from .schedule import (
    Schedule,
    alap_schedule,
    asap_schedule,
    enumerate_schedules,
    list_schedule_priority,
    sequential_schedule,
)
from .types import BOTTOM, BRANCH, FLOAT, INT, DependenceKind, RegisterType, Value, canonical_type
from .validation import check_ddg, validate_ddg

__all__ = [
    "DDG",
    "Edge",
    "Operation",
    "DDGBuilder",
    "chain_ddg",
    "fork_join_ddg",
    "independent_chains_ddg",
    "LifetimeInterval",
    "interference_graph",
    "intervals_interfere",
    "killing_date",
    "max_simultaneously_alive",
    "register_need",
    "register_need_all_types",
    "simultaneously_alive_at",
    "value_lifetimes",
    "ArchitectureFamily",
    "FunctionalUnitSpec",
    "ProcessorModel",
    "epic",
    "generic_machine",
    "retarget",
    "superscalar",
    "vliw",
    "Schedule",
    "alap_schedule",
    "asap_schedule",
    "enumerate_schedules",
    "list_schedule_priority",
    "sequential_schedule",
    "BOTTOM",
    "BRANCH",
    "FLOAT",
    "INT",
    "DependenceKind",
    "RegisterType",
    "Value",
    "canonical_type",
    "check_ddg",
    "validate_ddg",
]
