"""Value lifetimes, register need (MAXLIVE) and interference graphs.

Given a schedule ``sigma``, the lifetime interval of a value ``u^t`` is
(paper Section 3)::

    LT_sigma(u^t) = ] sigma_u + delta_w(u),  max_{v in Cons(u^t)} (sigma_v + delta_r(v)) ]

i.e. it is *left-open*: a value written at cycle ``c`` is available one step
later, so an operation reading a register at the very cycle another
operation writes it still sees the previous value.

The *register need* (register requirement) ``RN_sigma^t(G)`` of a register
type is the maximal number of values of that type simultaneously alive --
the maximal clique of the interference graph, which for intervals equals the
maximal overlap count at any instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from .graph import DDG
from .schedule import Schedule
from .types import BOTTOM, RegisterType, Value, canonical_type

__all__ = [
    "LifetimeInterval",
    "value_lifetimes",
    "intervals_interfere",
    "register_need",
    "simultaneously_alive_at",
    "max_simultaneously_alive",
    "interference_graph",
    "register_need_all_types",
    "killing_date",
]


@dataclass(frozen=True)
class LifetimeInterval:
    """The half-open lifetime interval ``]birth, death]`` of a value."""

    value: Value
    birth: int
    death: int

    @property
    def is_empty(self) -> bool:
        """True when the value dies no later than it is born (never occupies a register)."""

        return self.death <= self.birth

    @property
    def length(self) -> int:
        return max(0, self.death - self.birth)

    def contains(self, instant: int) -> bool:
        """True when the value is alive at *instant* (birth excluded, death included)."""

        return self.birth < instant <= self.death

    def interferes(self, other: "LifetimeInterval") -> bool:
        """True when the two lifetimes share at least one instant."""

        if self.is_empty or other.is_empty:
            return False
        return self.death > other.birth and other.death > self.birth

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value}: ]{self.birth}, {self.death}]"


def killing_date(
    ddg: DDG, schedule: Schedule, value: Value
) -> int:
    """The killing date ``k_{u^t}`` of *value*: the last cycle at which it is read.

    Following the paper, exit values are considered to be consumed by the
    bottom node; when the DDG has not been normalised with ``with_bottom``
    and the value has no consumer at all, the value dies as soon as it is
    written (empty lifetime).
    """

    consumers = ddg.consumers(value.node, value.rtype)
    producer = ddg.operation(value.node)
    birth = schedule[value.node] + producer.delta_w
    if not consumers:
        return birth
    return max(
        schedule[c] + ddg.operation(c).delta_r for c in consumers
    )


def value_lifetimes(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
) -> List[LifetimeInterval]:
    """Lifetime intervals of every value of type *rtype* under *schedule*."""

    rtype = canonical_type(rtype)
    out: List[LifetimeInterval] = []
    for value in ddg.values(rtype):
        producer = ddg.operation(value.node)
        birth = schedule[value.node] + producer.delta_w
        death = killing_date(ddg, schedule, value)
        out.append(LifetimeInterval(value, birth, death))
    return out


def intervals_interfere(a: LifetimeInterval, b: LifetimeInterval) -> bool:
    """Symmetric interference predicate on two lifetime intervals."""

    return a.interferes(b)


def simultaneously_alive_at(
    intervals: Sequence[LifetimeInterval], instant: int
) -> List[LifetimeInterval]:
    """Intervals alive at *instant*."""

    return [iv for iv in intervals if iv.contains(instant)]


def max_simultaneously_alive(
    intervals: Sequence[LifetimeInterval],
) -> Tuple[int, List[LifetimeInterval]]:
    """Maximal number of overlapping intervals and one witness set.

    Because the intervals are left-open/right-closed the maximum overlap is
    always attained at some interval's death instant, so only those candidate
    instants need to be inspected.
    """

    best = 0
    witness: List[LifetimeInterval] = []
    candidates = sorted({iv.death for iv in intervals if not iv.is_empty})
    for instant in candidates:
        alive = simultaneously_alive_at(intervals, instant)
        if len(alive) > best:
            best = len(alive)
            witness = alive
    return best, witness


def register_need(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
) -> int:
    """The register requirement ``RN_sigma^t(G)`` of type *rtype* under *schedule*."""

    intervals = value_lifetimes(ddg, schedule, rtype)
    best, _ = max_simultaneously_alive(intervals)
    return best


def register_need_all_types(
    ddg: DDG, schedule: Schedule
) -> Dict[RegisterType, int]:
    """Register requirement of every register type present in the DDG."""

    return {t: register_need(ddg, schedule, t) for t in ddg.register_types()}


def interference_graph(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
) -> Dict[Value, Set[Value]]:
    """The undirected interference graph ``H_t`` of the paper as an adjacency map.

    Two values are adjacent iff their lifetime intervals interfere; the
    register requirement is the clique number of this graph, which for
    interval graphs equals the maximal overlap returned by
    :func:`register_need`.
    """

    intervals = value_lifetimes(ddg, schedule, rtype)
    adjacency: Dict[Value, Set[Value]] = {iv.value: set() for iv in intervals}
    for i, a in enumerate(intervals):
        for b in intervals[i + 1:]:
            if a.interferes(b):
                adjacency[a.value].add(b.value)
                adjacency[b.value].add(a.value)
    return adjacency
