"""Target processor models (paper Section 2).

The paper's analysis is parameterised by:

* the set of register types and, for reduction, the number of available
  registers ``R_t`` of each type;
* the architecturally visible reading/writing offsets ``delta_r`` and
  ``delta_w`` -- zero for superscalar and EPIC/IA64 targets, possibly
  positive for VLIW machines that expose their pipeline;
* (for the scheduling substrate only) the functional units and issue width.

:class:`ProcessorModel` bundles those parameters.  Three presets mirror the
architecture families discussed by the paper: :func:`superscalar`,
:func:`vliw` and :func:`epic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from .graph import DDG
from .operation import Operation
from .types import FLOAT, INT, RegisterType, canonical_type

__all__ = [
    "ArchitectureFamily",
    "FunctionalUnitSpec",
    "ProcessorModel",
    "superscalar",
    "vliw",
    "epic",
    "generic_machine",
    "retarget",
]


class ArchitectureFamily:
    """String constants for the three ILP architecture families of the paper."""

    SUPERSCALAR = "superscalar"
    VLIW = "vliw"
    EPIC = "epic"


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """A functional-unit class available on the machine.

    ``count`` units of this class exist; an operation whose ``fu_class``
    matches occupies one unit for ``occupancy`` cycles from its issue cycle
    (a simple, fully pipelined reservation model).
    """

    name: str
    count: int = 1
    occupancy: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"functional unit {self.name!r} needs count >= 1")
        if self.occupancy < 1:
            raise ValueError(f"functional unit {self.name!r} needs occupancy >= 1")


@dataclass(frozen=True)
class ProcessorModel:
    """A target machine description.

    Parameters
    ----------
    name:
        Display name of the machine.
    family:
        One of :class:`ArchitectureFamily`; decides the default latency of
        the serial arcs introduced by RS reduction (see
        :mod:`repro.reduction.serialization`).
    register_files:
        Number of architectural registers available per register type
        (``R_t`` in the paper).
    read_offsets / write_offsets:
        Default ``delta_r`` / ``delta_w`` per functional-unit class, applied
        by :func:`retarget`.  Superscalar and EPIC machines use zero.
    issue_width:
        Maximal number of operations issued per cycle (scheduling substrate).
    functional_units:
        Resource classes for the list scheduler.
    """

    name: str
    family: str = ArchitectureFamily.SUPERSCALAR
    register_files: Mapping[RegisterType, int] = field(
        default_factory=lambda: {INT: 32, FLOAT: 32}
    )
    read_offsets: Mapping[str, int] = field(default_factory=dict)
    write_offsets: Mapping[str, int] = field(default_factory=dict)
    issue_width: int = 4
    functional_units: Tuple[FunctionalUnitSpec, ...] = (
        FunctionalUnitSpec("alu", count=2),
        FunctionalUnitSpec("fpu", count=2),
        FunctionalUnitSpec("mem", count=2),
        FunctionalUnitSpec("none", count=64),
    )

    def __post_init__(self) -> None:
        normalized = {canonical_type(t): int(r) for t, r in self.register_files.items()}
        object.__setattr__(self, "register_files", normalized)
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")

    # ------------------------------------------------------------------ #
    def registers(self, rtype: RegisterType | str) -> int:
        """Number of architectural registers of type *rtype* (``R_t``)."""

        rtype = canonical_type(rtype)
        try:
            return self.register_files[rtype]
        except KeyError as exc:
            raise KeyError(
                f"machine {self.name!r} has no register file of type {rtype.name!r}"
            ) from exc

    def with_registers(self, rtype: RegisterType | str, count: int) -> "ProcessorModel":
        """Return a copy of the machine with ``R_t`` set to *count*."""

        files = dict(self.register_files)
        files[canonical_type(rtype)] = int(count)
        return replace(self, register_files=files)

    @property
    def has_offsets(self) -> bool:
        """True when some functional-unit class uses non-zero read/write offsets."""

        return any(self.read_offsets.values()) or any(self.write_offsets.values())

    @property
    def sequential_semantics(self) -> bool:
        """True for superscalar targets whose object code is sequential."""

        return self.family == ArchitectureFamily.SUPERSCALAR

    def fu_spec(self, fu_class: str) -> FunctionalUnitSpec:
        for spec in self.functional_units:
            if spec.name == fu_class:
                return spec
        # Unknown classes fall back to a single generic unit so that the
        # scheduler never crashes on exotic opcodes.
        return FunctionalUnitSpec(fu_class, count=1)

    def default_read_offset(self, fu_class: str) -> int:
        return int(self.read_offsets.get(fu_class, 0))

    def default_write_offset(self, fu_class: str) -> int:
        return int(self.write_offsets.get(fu_class, 0))


# --------------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------------- #
def superscalar(
    int_registers: int = 32,
    float_registers: int = 32,
    issue_width: int = 4,
    name: str = "superscalar-4",
) -> ProcessorModel:
    """A dynamically scheduled superscalar target: zero read/write offsets."""

    return ProcessorModel(
        name=name,
        family=ArchitectureFamily.SUPERSCALAR,
        register_files={INT: int_registers, FLOAT: float_registers},
        issue_width=issue_width,
    )


def vliw(
    int_registers: int = 32,
    float_registers: int = 32,
    issue_width: int = 6,
    read_offset: int = 0,
    write_offsets: Optional[Mapping[str, int]] = None,
    name: str = "vliw-6",
) -> ProcessorModel:
    """A statically scheduled VLIW target with architecturally visible offsets.

    By default results are written at the end of the operation's pipeline
    (write offset = latency - 1 style exposure is workload dependent, so the
    preset uses a modest per-class table that exercises the non-zero-offset
    code paths: memory and floating point writes land 2 cycles after issue).
    """

    if write_offsets is None:
        write_offsets = {"mem": 2, "fpu": 2, "alu": 1}
    return ProcessorModel(
        name=name,
        family=ArchitectureFamily.VLIW,
        register_files={INT: int_registers, FLOAT: float_registers},
        read_offsets={"alu": read_offset, "fpu": read_offset, "mem": read_offset},
        write_offsets=dict(write_offsets),
        issue_width=issue_width,
        functional_units=(
            FunctionalUnitSpec("alu", count=4),
            FunctionalUnitSpec("fpu", count=2),
            FunctionalUnitSpec("mem", count=2),
            FunctionalUnitSpec("none", count=64),
        ),
    )


def epic(
    int_registers: int = 128,
    float_registers: int = 128,
    issue_width: int = 6,
    name: str = "epic-ia64",
) -> ProcessorModel:
    """An EPIC/IA64-style target: large register files, zero offsets."""

    return ProcessorModel(
        name=name,
        family=ArchitectureFamily.EPIC,
        register_files={INT: int_registers, FLOAT: float_registers},
        issue_width=issue_width,
        functional_units=(
            FunctionalUnitSpec("alu", count=4),
            FunctionalUnitSpec("fpu", count=2),
            FunctionalUnitSpec("mem", count=2),
            FunctionalUnitSpec("none", count=64),
        ),
    )


def generic_machine(registers: int, rtype: RegisterType | str = INT) -> ProcessorModel:
    """A minimal single-register-file machine used in examples and tests."""

    return ProcessorModel(
        name=f"generic-{registers}r",
        family=ArchitectureFamily.SUPERSCALAR,
        register_files={canonical_type(rtype): registers},
    )


def retarget(ddg: DDG, machine: ProcessorModel) -> DDG:
    """Return a copy of *ddg* whose operations carry the machine's read/write offsets.

    DDGs produced by the IR front end default to zero offsets; retargeting to
    a VLIW machine stamps the per-functional-unit-class offsets onto every
    operation so that the lifetime analysis sees the exposed pipeline.
    """

    g = ddg.copy()
    for op in list(g.operations()):
        new_op = op.with_offsets(
            machine.default_read_offset(op.fu_class),
            machine.default_write_offset(op.fu_class),
        )
        g.replace_operation(new_op)
    return g
