"""Schedules of a DDG (paper Section 2).

A schedule ``sigma`` maps every operation to an integer issue cycle; it is
valid iff ``sigma(v) - sigma(u) >= delta(e)`` for every arc ``e = (u, v)``.
The set of all valid acyclic schedules of ``G`` is ``Sigma(G)``.

Besides the :class:`Schedule` value object this module provides the
reference schedulers used by the analyses:

* :func:`asap_schedule` / :func:`alap_schedule` -- the canonical extreme
  schedules;
* :func:`sequential_schedule` -- the zero-ILP schedule used to reason about
  the worst total time ``T``;
* :func:`list_schedule_priority` -- an unconstrained (infinite resource)
  list scheduler parameterised by a priority function, used by the greedy
  register-saturation heuristics to exhibit witness schedules;
* :func:`enumerate_schedules` -- exhaustive enumeration for tiny DDGs, the
  brute-force ground truth of the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from ..analysis.context import context_for
from ..errors import ScheduleError
from .graph import DDG
from .types import BOTTOM

__all__ = [
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "sequential_schedule",
    "list_schedule_priority",
    "enumerate_schedules",
]


@dataclass(frozen=True)
class Schedule:
    """An issue-time assignment ``sigma`` for the operations of a DDG."""

    times: Mapping[str, int]
    ddg_name: str = "ddg"

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", dict(self.times))

    def __getitem__(self, node: str) -> int:
        return self.times[node]

    def __contains__(self, node: str) -> bool:
        return node in self.times

    def __len__(self) -> int:
        return len(self.times)

    @property
    def makespan(self) -> int:
        """Largest issue time (the paper's ``sigma_{⊥}`` when ``⊥`` is present)."""

        return max(self.times.values(), default=0)

    def total_time(self, ddg: DDG) -> int:
        """Completion time: issue time plus latency of the last finishing operation."""

        return max(
            (self.times[op.name] + op.latency for op in ddg.operations()),
            default=0,
        )

    def violations(self, ddg: DDG) -> List[str]:
        """Human readable list of violated precedence constraints (empty if valid)."""

        problems: List[str] = []
        for node in ddg.nodes():
            if node not in self.times:
                problems.append(f"operation {node!r} is not scheduled")
        for edge in ddg.edges():
            if edge.src not in self.times or edge.dst not in self.times:
                continue
            slack = self.times[edge.dst] - self.times[edge.src] - edge.latency
            if slack < 0:
                problems.append(
                    f"edge {edge.src}->{edge.dst} (latency {edge.latency}) violated by {-slack}"
                )
        return problems

    def is_valid(self, ddg: DDG) -> bool:
        """True when the schedule satisfies every precedence constraint of *ddg*."""

        return not self.violations(ddg)

    def check(self, ddg: DDG) -> "Schedule":
        """Raise :class:`~repro.errors.ScheduleError` if the schedule is invalid."""

        problems = self.violations(ddg)
        if problems:
            raise ScheduleError(
                f"invalid schedule for {ddg.name!r}: " + "; ".join(problems[:5])
            )
        return self

    def shifted(self, delta: int) -> "Schedule":
        """Return a copy of the schedule with every issue time shifted by *delta*."""

        return Schedule({v: t + delta for v, t in self.times.items()}, self.ddg_name)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule({self.ddg_name!r}, makespan={self.makespan})"


# --------------------------------------------------------------------------- #
# Reference schedulers
# --------------------------------------------------------------------------- #
def asap_schedule(ddg: DDG) -> Schedule:
    """The as-soon-as-possible schedule (issue every operation at its ASAP time)."""

    return Schedule(context_for(ddg).asap_times(), ddg.name)


def alap_schedule(ddg: DDG, total_time: Optional[int] = None) -> Schedule:
    """The as-late-as-possible schedule for a given total time (critical path by default)."""

    return Schedule(context_for(ddg).alap_times(total_time), ddg.name)


def sequential_schedule(ddg: DDG) -> Schedule:
    """A fully sequential schedule (no ILP): operations issue one after the other.

    Consecutive operations are separated by the latency of every arc between
    them (at least one cycle), following a topological order.  This witnesses
    the paper's claim that ``T = sum(delta(e))`` is a valid worst-case
    horizon.
    """

    order = ddg.topological_order()
    times: Dict[str, int] = {}
    clock = 0
    scheduled: List[str] = []
    for node in order:
        earliest = clock
        for edge in ddg.in_edges(node):
            if edge.src in times:
                earliest = max(earliest, times[edge.src] + edge.latency)
        times[node] = earliest
        clock = earliest + max(
            [edge.latency for edge in ddg.out_edges(node)] + [1]
        )
        scheduled.append(node)
    return Schedule(times, ddg.name)


def list_schedule_priority(
    ddg: DDG,
    priority: Callable[[str], float],
    tie_break: Optional[Callable[[str], float]] = None,
) -> Schedule:
    """Greedy list scheduling with unlimited resources and a custom priority.

    At each step the ready operation (all predecessors scheduled) with the
    highest priority is issued at its earliest feasible cycle.  With infinite
    resources this always produces a valid schedule; the priority function
    only changes *which* valid schedule is produced, which is exactly what
    the saturation heuristics need when they look for schedules that keep
    many values alive.
    """

    remaining_preds = {v: len(ddg.predecessors(v)) for v in ddg.nodes()}
    ready = [v for v, k in remaining_preds.items() if k == 0]
    times: Dict[str, int] = {}
    while ready:
        ready.sort(key=lambda v: (priority(v), tie_break(v) if tie_break else 0, v))
        node = ready.pop()  # highest priority last after ascending sort
        earliest = 0
        for edge in ddg.in_edges(node):
            earliest = max(earliest, times[edge.src] + edge.latency)
        times[node] = earliest
        for succ in ddg.successors(node):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    if len(times) != ddg.n:
        raise ScheduleError(f"list scheduling failed on {ddg.name!r} (cyclic graph?)")
    return Schedule(times, ddg.name)


def enumerate_schedules(
    ddg: DDG,
    horizon: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Schedule]:
    """Exhaustively enumerate valid schedules with issue times in ``[ASAP, horizon-bounded ALAP]``.

    This is exponential and only meant for tiny DDGs inside the test-suite
    and the brute-force register-saturation oracle.  *horizon* defaults to
    the critical path plus two idle cycles, which is enough slack to expose
    every register-need pattern on the graphs it is used for.  *limit* stops
    the enumeration after that many schedules.
    """

    ctx = context_for(ddg)
    if horizon is None:
        horizon = ctx.critical_path_length() + 2
    order = ctx.topological_order()
    asap = ctx.asap_times()
    alap = ctx.alap_times(horizon)
    count = 0

    def backtrack(index: int, partial: Dict[str, int]) -> Iterator[Schedule]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if index == len(order):
            count += 1
            yield Schedule(dict(partial), ddg.name)
            return
        node = order[index]
        earliest = asap[node]
        for edge in ddg.in_edges(node):
            if edge.src in partial:
                earliest = max(earliest, partial[edge.src] + edge.latency)
        for t in range(int(earliest), int(alap[node]) + 1):
            partial[node] = t
            yield from backtrack(index + 1, partial)
            if limit is not None and count >= limit:
                break
        partial.pop(node, None)

    yield from backtrack(0, {})
