"""A small fluent builder for data dependence graphs.

Building DDGs by hand with :class:`~repro.core.graph.DDG` is verbose (add
every operation, then every edge).  :class:`DDGBuilder` provides the compact
spelling used by the kernel library, the examples and the tests::

    g = (DDGBuilder("example")
         .value("a", "int", latency=2)
         .value("b", "int", latency=2)
         .op("store", latency=1, fu_class="mem")
         .flow("a", "store")
         .flow("b", "store")
         .serial("a", "b", latency=0)
         .build())

Values default to a single definition of the given register type; ``flow``
edges default to the producer's latency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .graph import DDG
from .operation import Operation
from .types import RegisterType, canonical_type

__all__ = ["DDGBuilder", "chain_ddg", "fork_join_ddg", "independent_chains_ddg"]


class DDGBuilder:
    """Fluent construction helper for :class:`~repro.core.graph.DDG`."""

    def __init__(self, name: str = "ddg") -> None:
        self._ddg = DDG(name)
        self._default_type: Optional[RegisterType] = None

    # ------------------------------------------------------------------ #
    def default_type(self, rtype: RegisterType | str) -> "DDGBuilder":
        """Set the register type used by :meth:`value` calls that omit one."""

        self._default_type = canonical_type(rtype)
        return self

    def value(
        self,
        name: str,
        rtype: RegisterType | str | None = None,
        latency: int = 1,
        opcode: str = "op",
        fu_class: str = "alu",
        delta_r: int = 0,
        delta_w: int = 0,
    ) -> "DDGBuilder":
        """Add an operation producing one value of the given register type."""

        if rtype is None:
            if self._default_type is None:
                raise GraphError(
                    "value() without a register type requires default_type() first"
                )
            rtype = self._default_type
        self._ddg.add_operation(
            Operation(
                name,
                defs=frozenset({canonical_type(rtype)}),
                latency=latency,
                opcode=opcode,
                fu_class=fu_class,
                delta_r=delta_r,
                delta_w=delta_w,
            )
        )
        return self

    def op(
        self,
        name: str,
        latency: int = 1,
        opcode: str = "op",
        fu_class: str = "alu",
        defs: Iterable[RegisterType | str] = (),
        delta_r: int = 0,
        delta_w: int = 0,
    ) -> "DDGBuilder":
        """Add an operation (possibly producing no register value)."""

        self._ddg.add_operation(
            Operation(
                name,
                defs=frozenset(canonical_type(t) for t in defs),
                latency=latency,
                opcode=opcode,
                fu_class=fu_class,
                delta_r=delta_r,
                delta_w=delta_w,
            )
        )
        return self

    def flow(
        self,
        src: str,
        dst: str,
        rtype: RegisterType | str | None = None,
        latency: Optional[int] = None,
    ) -> "DDGBuilder":
        """Add a flow dependence; the type defaults to the producer's unique type."""

        if rtype is None:
            defs = self._ddg.operation(src).defs
            if len(defs) != 1:
                raise GraphError(
                    f"flow({src!r}, {dst!r}) needs an explicit register type: "
                    f"the producer defines {len(defs)} values"
                )
            rtype = next(iter(defs))
        self._ddg.add_flow_edge(src, dst, rtype, latency)
        return self

    def flows(self, pairs: Iterable[Tuple[str, str]]) -> "DDGBuilder":
        for src, dst in pairs:
            self.flow(src, dst)
        return self

    def serial(self, src: str, dst: str, latency: int = 0) -> "DDGBuilder":
        self._ddg.add_serial_edge(src, dst, latency)
        return self

    def build(self, with_bottom: bool = False) -> DDG:
        """Return the constructed DDG, optionally normalised with the bottom node."""

        return self._ddg.with_bottom() if with_bottom else self._ddg


# --------------------------------------------------------------------------- #
# Parametric shapes used by tests and random suites
# --------------------------------------------------------------------------- #
def chain_ddg(
    length: int,
    rtype: RegisterType | str = "int",
    latency: int = 1,
    name: str = "chain",
) -> DDG:
    """A single dependence chain ``v0 -> v1 -> ... -> v_{length-1}``."""

    b = DDGBuilder(name).default_type(rtype)
    for i in range(length):
        b.value(f"v{i}", latency=latency)
    for i in range(length - 1):
        b.flow(f"v{i}", f"v{i + 1}")
    return b.build()


def independent_chains_ddg(
    chains: int,
    length: int,
    rtype: RegisterType | str = "int",
    latency: int = 1,
    name: str = "chains",
) -> DDG:
    """Several independent chains; its register saturation is ``chains * 1`` per stage pattern."""

    b = DDGBuilder(name).default_type(rtype)
    for c in range(chains):
        for i in range(length):
            b.value(f"c{c}_v{i}", latency=latency)
        for i in range(length - 1):
            b.flow(f"c{c}_v{i}", f"c{c}_v{i + 1}")
    return b.build()


def fork_join_ddg(
    width: int,
    rtype: RegisterType | str = "int",
    latency: int = 1,
    name: str = "fork-join",
) -> DDG:
    """A producer feeding *width* parallel consumers joined by a final operation.

    Its register saturation for *width* independent intermediate values is
    exactly ``width`` (plus the producer value while the intermediates are
    being computed), a convenient analytical check.
    """

    b = DDGBuilder(name).default_type(rtype)
    b.value("src", latency=latency)
    for i in range(width):
        b.value(f"mid{i}", latency=latency)
        b.flow("src", f"mid{i}")
    b.op("join", latency=latency)
    for i in range(width):
        b.flow(f"mid{i}", "join")
    return b.build()
