"""Operations (DDG nodes) of the paper's DAG model.

An operation ``u`` carries everything Section 2 of the paper attaches to a
statement:

* the set of register types it *defines* (at most one value per type);
* its latency, used for the virtual serial arc towards the bottom node and
  as the default latency of its outgoing flow arcs;
* the architecturally visible *reading offset* ``delta_r(u)`` and *writing
  offset* ``delta_w(u)`` (zero on superscalar and EPIC/IA64, possibly
  positive on VLIW machines with exposed pipelines);
* an opcode and a functional-unit class, which the register-saturation
  analysis ignores but the scheduling substrate uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet

from .types import RegisterType, canonical_type

__all__ = ["Operation"]


@dataclass(frozen=True)
class Operation:
    """A node of the data dependence graph.

    Parameters
    ----------
    name:
        Unique identifier of the operation inside its DDG.
    defs:
        Register types of the values this operation writes.  The paper's
        model accepts statements defining several values as long as they do
        not define more than one value of a given type.
    latency:
        Latency of the operation in processor clock cycles.  It is used as
        the latency of the virtual arc towards the bottom node ``⊥`` and as
        the default latency of flow arcs leaving the operation.
    delta_r:
        Reading offset ``delta_r(u)``: the operand read happens at
        ``sigma(u) + delta_r(u)``.
    delta_w:
        Writing offset ``delta_w(u)``: the result write happens at
        ``sigma(u) + delta_w(u)``.
    opcode:
        Mnemonic used by the IR front end and the reports; free form.
    fu_class:
        Functional-unit class consumed by the resource-constrained list
        scheduler (e.g. ``"alu"``, ``"fpu"``, ``"mem"``); the register
        saturation analysis itself is resource agnostic.
    """

    name: str
    defs: FrozenSet[RegisterType] = field(default_factory=frozenset)
    latency: int = 1
    delta_r: int = 0
    delta_w: int = 0
    opcode: str = "op"
    fu_class: str = "alu"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be a non-empty string")
        if self.latency < 0:
            raise ValueError(f"operation {self.name!r}: latency must be >= 0")
        if self.delta_r < 0 or self.delta_w < 0:
            raise ValueError(
                f"operation {self.name!r}: read/write offsets must be >= 0"
            )
        normalized = frozenset(canonical_type(t) for t in self.defs)
        object.__setattr__(self, "defs", normalized)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def defines(self, rtype: RegisterType | str) -> bool:
        """Return True if this operation writes a value of type *rtype*."""

        return canonical_type(rtype) in self.defs

    @property
    def is_value_producer(self) -> bool:
        """True when the operation defines at least one register value."""

        return bool(self.defs)

    def read_cycle(self, issue_time: int) -> int:
        """Cycle at which the operation reads its register operands."""

        return issue_time + self.delta_r

    def write_cycle(self, issue_time: int) -> int:
        """Cycle at which the operation writes its result register(s)."""

        return issue_time + self.delta_w

    def renamed(self, new_name: str) -> "Operation":
        """Return a copy of the operation under a different name."""

        return replace(self, name=new_name)

    def with_offsets(self, delta_r: int, delta_w: int) -> "Operation":
        """Return a copy with new read/write offsets (used by machine re-targeting)."""

        return replace(self, delta_r=delta_r, delta_w=delta_w)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ",".join(sorted(t.name for t in self.defs)) or "-"
        return f"{self.name}[{self.opcode};lat={self.latency};defs={kinds}]"
