"""Well-formedness checks for data dependence graphs.

These checks enforce the model restrictions stated in Section 2 of the
paper (a statement defines at most one value per register type, flow edges
reference defined values, the graph is acyclic, latencies are sane) and are
used by the public entry points before any expensive analysis runs.
"""

from __future__ import annotations

from typing import List

from ..errors import GraphError
from .graph import DDG
from .types import BOTTOM

__all__ = ["validate_ddg", "check_ddg"]


def validate_ddg(ddg: DDG, require_acyclic: bool = True) -> List[str]:
    """Return a list of problems found in *ddg* (empty when the graph is well formed)."""

    problems: List[str] = []

    if ddg.n == 0:
        problems.append("graph has no operation")
        return problems

    if require_acyclic and not ddg.is_acyclic():
        problems.append("graph contains a dependence cycle")

    for edge in ddg.edges():
        if edge.is_flow:
            producer = ddg.operation(edge.src)
            if edge.rtype not in producer.defs:
                problems.append(
                    f"flow edge {edge.src}->{edge.dst} carries type "
                    f"{edge.rtype.name!r} not defined by {edge.src!r}"
                )
            if edge.latency < 0:
                problems.append(
                    f"flow edge {edge.src}->{edge.dst} has negative latency"
                )

    for op in ddg.operations():
        if op.name == BOTTOM:
            continue
        if op.latency < 0:
            problems.append(f"operation {op.name!r} has negative latency")
        if op.delta_r < 0 or op.delta_w < 0:
            problems.append(f"operation {op.name!r} has negative offsets")

    if ddg.has_bottom:
        bottom_succ = ddg.successors(BOTTOM)
        if bottom_succ:
            problems.append("the bottom node must not have successors")

    return problems


def check_ddg(ddg: DDG, require_acyclic: bool = True) -> DDG:
    """Raise :class:`~repro.errors.GraphError` when *ddg* is malformed, else return it."""

    problems = validate_ddg(ddg, require_acyclic=require_acyclic)
    if problems:
        raise GraphError(
            f"DDG {ddg.name!r} is malformed: " + "; ".join(problems[:5])
        )
    return ddg
