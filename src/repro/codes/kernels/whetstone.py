"""Whetstone-style loop bodies.

Whetstone's computational modules are short floating-point expressions over
a handful of scalars; they produce small DAGs with long division/square-root
latencies -- a register-pressure profile very different from the streaming
kernels, which is why the paper includes them in its population.
"""

from __future__ import annotations

from ...core.graph import DDG
from ..dependence import build_ddg
from ..ir import Block

__all__ = ["module1_simple", "module2_array", "module6_trig_poly", "module8_calls_inlined"]


def module1_simple() -> DDG:
    """Module 1: the four-element recurrence over simple identifiers."""

    b = Block("whetstone-m1")
    # x1 = (x1 + x2 + x3 - x4) * t ; x2 = (x1 + x2 - x3 + x4) * t ; ...
    s1 = b.fadd("s1", "x1", "x2")
    s2 = b.fadd("s2", s1, "x3")
    s3 = b.fsub("s3", s2, "x4")
    nx1 = b.fmul("nx1", s3, "t")
    s4 = b.fadd("s4", nx1, "x2")
    s5 = b.fsub("s5", s4, "x3")
    s6 = b.fadd("s6", s5, "x4")
    nx2 = b.fmul("nx2", s6, "t")
    s7 = b.fsub("s7", nx1, nx2)
    s8 = b.fadd("s8", s7, "x3")
    s9 = b.fadd("s9", s8, "x4")
    nx3 = b.fmul("nx3", s9, "t")
    s10 = b.fadd("s10", nx1, nx2)
    s11 = b.fsub("s11", s10, nx3)
    s12 = b.fadd("s12", s11, "x4")
    nx4 = b.fmul("nx4", s12, "t")
    b.store(nx1, "x1_addr", region="x1")
    b.store(nx2, "x2_addr", region="x2")
    b.store(nx3, "x3_addr", region="x3")
    b.store(nx4, "x4_addr", region="x4")
    return build_ddg(b)


def module2_array() -> DDG:
    """Module 2: the same recurrence over array elements (adds loads/stores)."""

    b = Block("whetstone-m2")
    e1 = b.load("e1", "e+0", region="e1")
    e2 = b.load("e2", "e+1", region="e2")
    e3 = b.load("e3", "e+2", region="e3")
    e4 = b.load("e4", "e+3", region="e4")
    s1 = b.fadd("s1", e1, e2)
    s2 = b.fadd("s2", s1, e3)
    s3 = b.fsub("s3", s2, e4)
    n1 = b.fmul("n1", s3, "t")
    s4 = b.fadd("s4", n1, e2)
    s5 = b.fsub("s5", s4, e3)
    s6 = b.fadd("s6", s5, e4)
    n2 = b.fmul("n2", s6, "t")
    s7 = b.fsub("s7", n1, n2)
    s8 = b.fadd("s8", s7, e3)
    s9 = b.fadd("s9", s8, e4)
    n3 = b.fmul("n3", s9, "t")
    b.store(n1, "e+0", region="e1")
    b.store(n2, "e+1", region="e2")
    b.store(n3, "e+2", region="e3")
    return build_ddg(b)


def module6_trig_poly() -> DDG:
    """Module 6-style polynomial approximation (trig replaced by its Taylor body)."""

    b = Block("whetstone-m6")
    x = b.load("x", "x_addr", region="x")
    x2 = b.fmul("x2", x, x)
    x3 = b.fmul("x3", x2, x)
    x5 = b.fmul("x5", x3, x2)
    t1 = b.fmul("t1", x3, "c3")
    t2 = b.fmul("t2", x5, "c5")
    s1 = b.fsub("s1", x, t1)
    sinx = b.fadd("sinx", s1, t2)
    c1 = b.fmul("c1t", x2, "c2")
    c2 = b.fmul("c2t", x2, x2)
    c3 = b.fmul("c3t", c2, "c4")
    s2 = b.fsub("s2", "one", c1)
    cosx = b.fadd("cosx", s2, c3)
    num = b.fmul("num", sinx, sinx)
    den = b.fadd("den", cosx, "one")
    res = b.fdiv("res", num, den)
    b.store(res, "y_addr", region="y")
    return build_ddg(b)


def module8_calls_inlined() -> DDG:
    """Module 8 with the tiny procedure inlined three times (long div chains)."""

    b = Block("whetstone-m8")
    x = b.load("x", "x_addr", region="x")
    y = b.load("y", "y_addr", region="y")
    # p3(x, y, z):  x1 = t*(x+y); y1 = t*(x1+y); z = (x1+y1)/t2  -- inlined 3x
    prev_z = None
    for k in range(3):
        xin = x if prev_z is None else prev_z
        s1 = b.fadd(f"s1_{k}", xin, y)
        x1 = b.fmul(f"x1_{k}", "t", s1)
        s2 = b.fadd(f"s2_{k}", x1, y)
        y1 = b.fmul(f"y1_{k}", "t", s2)
        s3 = b.fadd(f"s3_{k}", x1, y1)
        prev_z = b.fdiv(f"z_{k}", s3, "t2")
    b.store(prev_z, "z_addr", region="z")
    return build_ddg(b)
