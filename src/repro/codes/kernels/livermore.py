"""Livermore-loop bodies (the classic "Livermore Fortran kernels").

Four representative kernels cover the dependence shapes that matter for
register pressure: a pure streaming loop (K1), a linked recurrence (K5), a
wide expression with many reused operands (K7) and a first-difference
stencil (K12).
"""

from __future__ import annotations

from ...core.graph import DDG
from ..dependence import build_ddg
from ..ir import Block

__all__ = ["kernel1_hydro", "kernel5_tridiag", "kernel7_state", "kernel12_first_diff"]


def kernel1_hydro() -> DDG:
    """K1 hydro fragment: ``x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])``."""

    b = Block("livermore-k1")
    zk10 = b.load("z_k10", "z+k+10", region="z10")
    zk11 = b.load("z_k11", "z+k+11", region="z11")
    yk = b.load("y_k", "y+k", region="y")
    rz = b.fmul("rz", "r", zk10)
    tz = b.fmul("tz", "t", zk11)
    inner = b.fadd("inner", rz, tz)
    prod = b.fmul("prod", yk, inner)
    xk = b.fadd("x_k", "q", prod)
    b.store(xk, "x+k", region="x")
    return build_ddg(b)


def kernel5_tridiag() -> DDG:
    """K5 tri-diagonal elimination: ``x[i] = z[i] * (y[i] - x[i-1])`` (two steps).

    Two consecutive iterations are emitted so the loop-carried dependence
    appears inside the block (``x_i`` feeds the next subtraction), giving a
    long dependence chain with low saturation -- the opposite extreme of the
    unrolled streaming kernels.
    """

    b = Block("livermore-k5")
    x_prev = b.load("x_prev", "x+i-1", region="x0")
    y0 = b.load("y_0", "y+i", region="y0")
    z0 = b.load("z_0", "z+i", region="z0")
    d0 = b.fsub("d_0", y0, x_prev)
    x0 = b.fmul("x_0", z0, d0)
    b.store(x0, "x+i", region="x1")
    y1 = b.load("y_1", "y+i+1", region="y1")
    z1 = b.load("z_1", "z+i+1", region="z1")
    d1 = b.fsub("d_1", y1, x0)
    x1 = b.fmul("x_1", z1, d1)
    b.store(x1, "x+i+1", region="x2")
    return build_ddg(b)


def kernel7_state() -> DDG:
    """K7 equation-of-state fragment: a wide expression reusing several loads."""

    b = Block("livermore-k7")
    u_k = b.load("u_k", "u+k", region="u0")
    u_k1 = b.load("u_k1", "u+k+1", region="u1")
    u_k2 = b.load("u_k2", "u+k+2", region="u2")
    u_k3 = b.load("u_k3", "u+k+3", region="u3")
    z_k = b.load("z_k", "z+k", region="z")
    y_k = b.load("y_k", "y+k", region="y")
    # x[k] = u[k] + r*(z[k] + r*y[k]) + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
    #        + t*(u[k+6] ...)) -- truncated to the first two t-terms.
    ry = b.fmul("ry", "r", y_k)
    zry = b.fadd("zry", z_k, ry)
    rz = b.fmul("rzry", "r", zry)
    first = b.fadd("first", u_k, rz)
    ru1 = b.fmul("ru1", "r", u_k1)
    u2ru1 = b.fadd("u2ru1", u_k2, ru1)
    ru2 = b.fmul("ru2", "r", u2ru1)
    u3ru2 = b.fadd("u3ru2", u_k3, ru2)
    tterm = b.fmul("tterm", "t", u3ru2)
    xk = b.fadd("x_k", first, tterm)
    b.store(xk, "x+k", region="x")
    return build_ddg(b)


def kernel12_first_diff(unroll: int = 3) -> DDG:
    """K12 first difference: ``x[k] = y[k+1] - y[k]``, unrolled with load reuse."""

    b = Block(f"livermore-k12-u{unroll}")
    prev = b.load("y_0", "y+k", region="y0")
    for k in range(unroll):
        nxt = b.load(f"y_{k + 1}", f"y+k+{k + 1}", region=f"y{k + 1}")
        diff = b.fsub(f"x_{k}", nxt, prev)
        b.store(diff, f"x+k+{k}", region=f"x{k}")
        prev = nxt
    return build_ddg(b)
