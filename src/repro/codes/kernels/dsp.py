"""DSP-flavoured loop bodies (FIR, IIR, FFT butterflies, complex arithmetic).

These are the archetypal VLIW workloads: wide, regular dataflow with many
independent multiply-accumulate chains.  They stress the multi-register-type
code paths (address arithmetic in integer registers, samples in float
registers) and give the VLIW experiments realistic graphs.
"""

from __future__ import annotations

from ...core.graph import DDG
from ..dependence import build_ddg
from ..ir import Block

__all__ = ["fir_taps", "iir_biquad", "fft_radix2_butterfly", "complex_mac", "horner_poly"]


def fir_taps(taps: int = 6) -> DDG:
    """A *taps*-tap FIR filter body with integer address updates."""

    b = Block(f"dsp-fir{taps}")
    acc = None
    addr = "base"
    for k in range(taps):
        addr = b.add(f"addr_{k}", addr, "stride")
        x = b.load(f"x_{k}", addr, region=f"x{k}")
        c = b.load(f"c_{k}", f"coef+{k}", region=f"c{k}")
        prod = b.fmul(f"p_{k}", x, c)
        acc = prod if acc is None else b.fadd(f"acc_{k}", acc, prod)
    b.store(acc, "out", region="out")
    return build_ddg(b)


def iir_biquad() -> DDG:
    """A direct-form-II biquad section (tight recurrence, low saturation)."""

    b = Block("dsp-iir-biquad")
    x = b.load("x", "in", region="in")
    w1 = b.load("w1", "state+0", region="w1")
    w2 = b.load("w2", "state+1", region="w2")
    a1w1 = b.fmul("a1w1", "a1", w1)
    a2w2 = b.fmul("a2w2", "a2", w2)
    fb = b.fadd("fb", a1w1, a2w2)
    w0 = b.fsub("w0", x, fb)
    b1w1 = b.fmul("b1w1", "b1", w1)
    b2w2 = b.fmul("b2w2", "b2", w2)
    b0w0 = b.fmul("b0w0", "b0", w0)
    ff = b.fadd("ff", b1w1, b2w2)
    y = b.fadd("y", b0w0, ff)
    b.store(y, "out", region="out")
    b.store(w0, "state+0", region="w1")
    b.store(w1, "state+1", region="w2")
    return build_ddg(b)


def fft_radix2_butterfly(pairs: int = 2) -> DDG:
    """*pairs* independent radix-2 FFT butterflies (complex twiddle multiply)."""

    b = Block(f"dsp-fft-bfly{pairs}")
    for p in range(pairs):
        ar = b.load(f"ar_{p}", f"a+{p}r", region=f"ar{p}")
        ai = b.load(f"ai_{p}", f"a+{p}i", region=f"ai{p}")
        br = b.load(f"br_{p}", f"b+{p}r", region=f"br{p}")
        bi = b.load(f"bi_{p}", f"b+{p}i", region=f"bi{p}")
        # twiddle multiply: t = w * b
        t_r1 = b.fmul(f"tr1_{p}", "wr", br)
        t_r2 = b.fmul(f"tr2_{p}", "wi", bi)
        t_i1 = b.fmul(f"ti1_{p}", "wr", bi)
        t_i2 = b.fmul(f"ti2_{p}", "wi", br)
        tr = b.fsub(f"tr_{p}", t_r1, t_r2)
        ti = b.fadd(f"ti_{p}", t_i1, t_i2)
        # butterfly outputs
        our = b.fadd(f"our_{p}", ar, tr)
        oui = b.fadd(f"oui_{p}", ai, ti)
        olr = b.fsub(f"olr_{p}", ar, tr)
        oli = b.fsub(f"oli_{p}", ai, ti)
        b.store(our, f"a+{p}r", region=f"ar{p}")
        b.store(oui, f"a+{p}i", region=f"ai{p}")
        b.store(olr, f"b+{p}r", region=f"br{p}")
        b.store(oli, f"b+{p}i", region=f"bi{p}")
    return build_ddg(b)


def complex_mac(unroll: int = 3) -> DDG:
    """Complex multiply-accumulate, unrolled: the core of every correlator."""

    b = Block(f"dsp-cmac-u{unroll}")
    acc_r, acc_i = "acc_r_in", "acc_i_in"
    for k in range(unroll):
        xr = b.load(f"xr_{k}", f"x+{k}r", region=f"xr{k}")
        xi = b.load(f"xi_{k}", f"x+{k}i", region=f"xi{k}")
        yr = b.load(f"yr_{k}", f"y+{k}r", region=f"yr{k}")
        yi = b.load(f"yi_{k}", f"y+{k}i", region=f"yi{k}")
        rr = b.fmul(f"rr_{k}", xr, yr)
        ii = b.fmul(f"ii_{k}", xi, yi)
        ri = b.fmul(f"ri_{k}", xr, yi)
        ir = b.fmul(f"ir_{k}", xi, yr)
        pr = b.fsub(f"pr_{k}", rr, ii)
        pi = b.fadd(f"pi_{k}", ri, ir)
        acc_r = b.fadd(f"accr_{k}", acc_r, pr)
        acc_i = b.fadd(f"acci_{k}", acc_i, pi)
    b.store(acc_r, "acc_r", region="accr")
    b.store(acc_i, "acc_i", region="acci")
    return build_ddg(b)


def horner_poly(degree: int = 7) -> DDG:
    """Horner evaluation of a degree-*degree* polynomial (a pure latency chain)."""

    b = Block(f"dsp-horner{degree}")
    x = b.load("x", "x_addr", region="x")
    acc = b.load("c_n", f"coef+{degree}", region="cn")
    for k in range(degree - 1, -1, -1):
        c = b.load(f"c_{k}", f"coef+{k}", region=f"c{k}")
        acc = b.fmadd(f"acc_{k}", acc, x, c)
    b.store(acc, "y_addr", region="y")
    return build_ddg(b)
