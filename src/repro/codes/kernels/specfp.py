"""SpecFP-style loop bodies.

The SpecFP95/2000 programs the paper drew from are dominated by stencil
updates (tomcatv, swim, mgrid) and dense linear algebra (applu).  The bodies
below reproduce those dependence shapes: many loads feeding a wide
expression tree, with a couple of stores at the end -- large saturation,
plenty of schedule freedom, exactly the graphs for which RS analysis is
interesting.
"""

from __future__ import annotations

from ...core.graph import DDG
from ..dependence import build_ddg
from ..ir import Block

__all__ = ["tomcatv_residual", "swim_wave_update", "mgrid_relaxation", "applu_jacobi_block"]


def tomcatv_residual() -> DDG:
    """The residual computation of tomcatv's mesh generation loop."""

    b = Block("specfp-tomcatv")
    x_im = b.load("x_im", "x+i-1+j", region="xim")
    x_ip = b.load("x_ip", "x+i+1+j", region="xip")
    x_jm = b.load("x_jm", "x+i+j-1", region="xjm")
    x_jp = b.load("x_jp", "x+i+j+1", region="xjp")
    y_im = b.load("y_im", "y+i-1+j", region="yim")
    y_ip = b.load("y_ip", "y+i+1+j", region="yip")
    xx = b.fsub("xx", x_ip, x_im)
    yx = b.fsub("yx", y_ip, y_im)
    xy = b.fsub("xy", x_jp, x_jm)
    a = b.fmul("a", xx, xx)
    bq = b.fmul("bq", yx, yx)
    aa = b.fadd("aa", a, bq)
    cpx = b.fmul("cpx", xy, xy)
    cc = b.fadd("cc", cpx, aa)
    pxx = b.fmul("pxx", aa, xx)
    qxx = b.fmul("qxx", cc, xy)
    rx = b.fsub("rx", pxx, qxx)
    ry = b.fmul("ry", cc, yx)
    b.store(rx, "rx+i+j", region="rx")
    b.store(ry, "ry+i+j", region="ry")
    return build_ddg(b)


def swim_wave_update() -> DDG:
    """The shallow-water (swim) velocity update: three coupled stencil updates."""

    b = Block("specfp-swim")
    cu_ip = b.load("cu_ip", "cu+i+1+j", region="cuip")
    cu_i = b.load("cu_i", "cu+i+j", region="cui")
    cv_jp = b.load("cv_jp", "cv+i+j+1", region="cvjp")
    cv_j = b.load("cv_j", "cv+i+j", region="cvj")
    z_ip = b.load("z_ip", "z+i+1+j+1", region="zip")
    z_i = b.load("z_i", "z+i+j+1", region="zi")
    h_ip = b.load("h_ip", "h+i+1+j", region="hip")
    h_i = b.load("h_i", "h+i+j", region="hi")
    du = b.fsub("du", cu_ip, cu_i)
    dv = b.fsub("dv", cv_jp, cv_j)
    dsum = b.fadd("dsum", du, dv)
    unew = b.fmul("unew", "tdts8", dsum)
    zsum = b.fadd("zsum", z_ip, z_i)
    zt = b.fmul("zt", zsum, "tdtsdx")
    hdiff = b.fsub("hdiff", h_ip, h_i)
    ht = b.fmul("ht", hdiff, "tdtsdy")
    vnew = b.fadd("vnew", zt, ht)
    pnew = b.fsub("pnew", unew, vnew)
    b.store(unew, "unew+i+j", region="unew")
    b.store(vnew, "vnew+i+j", region="vnew")
    b.store(pnew, "pnew+i+j", region="pnew")
    return build_ddg(b)


def mgrid_relaxation() -> DDG:
    """The 27-point relaxation of mgrid, reduced to the 7 face neighbours."""

    b = Block("specfp-mgrid")
    c = b.load("u_c", "u+i+j+k", region="c")
    xm = b.load("u_xm", "u+i-1", region="xm")
    xp = b.load("u_xp", "u+i+1", region="xp")
    ym = b.load("u_ym", "u+j-1", region="ym")
    yp = b.load("u_yp", "u+j+1", region="yp")
    zm = b.load("u_zm", "u+k-1", region="zm")
    zp = b.load("u_zp", "u+k+1", region="zp")
    r = b.load("r_c", "r+i+j+k", region="r")
    sx = b.fadd("sx", xm, xp)
    sy = b.fadd("sy", ym, yp)
    sz = b.fadd("sz", zm, zp)
    sxy = b.fadd("sxy", sx, sy)
    sxyz = b.fadd("sxyz", sxy, sz)
    a1 = b.fmul("a1", "c1", sxyz)
    a0 = b.fmul("a0", "c0", c)
    lap = b.fadd("lap", a0, a1)
    res = b.fsub("res", r, lap)
    upd = b.fmadd("upd", "omega", res, c)
    b.store(upd, "u+i+j+k", region="c")
    return build_ddg(b)


def applu_jacobi_block() -> DDG:
    """A 3x3 block Jacobi solve step from applu (dense small matrix times vector)."""

    b = Block("specfp-applu")
    v0 = b.load("v0", "v+0", region="v0")
    v1 = b.load("v1", "v+1", region="v1")
    v2 = b.load("v2", "v+2", region="v2")
    outs = []
    for row in range(3):
        a0 = b.load(f"a{row}0", f"a+{row}*3+0", region=f"a{row}0")
        a1 = b.load(f"a{row}1", f"a+{row}*3+1", region=f"a{row}1")
        a2 = b.load(f"a{row}2", f"a+{row}*3+2", region=f"a{row}2")
        p0 = b.fmul(f"p{row}0", a0, v0)
        p1 = b.fmadd(f"p{row}1", a1, v1, p0)
        p2 = b.fmadd(f"p{row}2", a2, v2, p1)
        rhs = b.load(f"rhs{row}", f"rhs+{row}", region=f"rhs{row}")
        out = b.fsub(f"out{row}", rhs, p2)
        outs.append(out)
        b.store(out, f"x+{row}", region=f"x{row}")
    return build_ddg(b)
