"""The running example of the paper's Section 6 (Figure 2), reconstructed.

The published figure is a 5-node sketch whose exact arcs are hard to read
from the text, but its *properties* are stated precisely in the discussion:

* the initial DAG has a register saturation of 4 -- "we can schedule the 4
  operations {a, b, c, d} so as to produce 4 values simultaneously alive";
* one of the values comes from a long-latency operation (latency 17 in the
  figure) so the critical path leaves plenty of slack;
* the *minimization* approach serialises the graph down to 2 registers
  regardless of how many are available;
* the *RS reduction* approach with 3 available registers adds fewer arcs and
  leaves the graph needing 1..3 registers depending on the final schedule.

This module provides a DAG with exactly those properties: four independent
values (``a`` latency 17, ``b``/``c``/``d`` latency 1), each consumed by its
own reader.  ``benchmarks/bench_figure2_example.py`` checks every bullet
above against it.
"""

from __future__ import annotations

from ...core.builder import DDGBuilder
from ...core.graph import DDG

__all__ = ["figure2_dag"]


def figure2_dag() -> DDG:
    """The Figure-2-style DAG: RS = 4, reducible to 3, minimizable to 2."""

    b = DDGBuilder("figure2").default_type("int")
    b.value("a", latency=17)
    b.value("b", latency=1)
    b.value("c", latency=1)
    b.value("d", latency=1)
    b.op("ka", latency=1)
    b.op("kb", latency=1)
    b.op("kc", latency=1)
    b.op("kd", latency=1)
    b.flow("a", "ka")
    b.flow("b", "kb")
    b.flow("c", "kc")
    b.flow("d", "kd")
    return b.build()
