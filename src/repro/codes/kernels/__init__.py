"""Hand-written loop-body kernels standing in for the paper's benchmark population."""

from .dsp import complex_mac, fft_radix2_butterfly, fir_taps, horner_poly, iir_biquad
from .figure2 import figure2_dag
from .linpack import daxpy, daxpy_unrolled, ddot_unrolled, dgefa_update
from .livermore import kernel1_hydro, kernel5_tridiag, kernel7_state, kernel12_first_diff
from .specfp import applu_jacobi_block, mgrid_relaxation, swim_wave_update, tomcatv_residual
from .whetstone import module1_simple, module2_array, module6_trig_poly, module8_calls_inlined

__all__ = [
    "figure2_dag",
    "daxpy",
    "daxpy_unrolled",
    "ddot_unrolled",
    "dgefa_update",
    "kernel1_hydro",
    "kernel5_tridiag",
    "kernel7_state",
    "kernel12_first_diff",
    "module1_simple",
    "module2_array",
    "module6_trig_poly",
    "module8_calls_inlined",
    "tomcatv_residual",
    "swim_wave_update",
    "mgrid_relaxation",
    "applu_jacobi_block",
    "fir_taps",
    "iir_biquad",
    "fft_radix2_butterfly",
    "complex_mac",
    "horner_poly",
]
