"""Linpack-style loop bodies.

The paper's experiment population includes linpack; its hot loops are DAXPY
and the inner elimination loop of ``dgefa``.  The bodies below are the
classic formulations, unrolled a few times to obtain basic blocks in the
size range the paper analyses (a dozen to a few dozen operations).
"""

from __future__ import annotations

from ...core.graph import DDG
from ..dependence import build_ddg
from ..ir import Block

__all__ = ["daxpy", "daxpy_unrolled", "ddot_unrolled", "dgefa_update"]


def daxpy() -> DDG:
    """One iteration of ``y[i] += a * x[i]`` (the LINPACK kernel)."""

    b = Block("linpack-daxpy")
    x = b.load("x_i", "x+i", region="x")
    y = b.load("y_i", "y+i", region="y")
    ax = b.fmul("ax", "a", x)
    new_y = b.fadd("y_new", ax, y)
    b.store(new_y, "y+i", region="y")
    return build_ddg(b)


def daxpy_unrolled(factor: int = 4) -> DDG:
    """DAXPY unrolled *factor* times: independent iterations, high saturation."""

    b = Block(f"linpack-daxpy-u{factor}")
    for k in range(factor):
        x = b.load(f"x_{k}", f"x+i+{k}", region=f"x{k}")
        y = b.load(f"y_{k}", f"y+i+{k}", region=f"y{k}")
        ax = b.fmul(f"ax_{k}", "a", x)
        new_y = b.fadd(f"ynew_{k}", ax, y)
        b.store(new_y, f"y+i+{k}", region=f"y{k}")
    return build_ddg(b)


def ddot_unrolled(factor: int = 4) -> DDG:
    """Dot-product partial sums: ``s += x[i] * y[i]`` unrolled with a final reduce."""

    b = Block(f"linpack-ddot-u{factor}")
    partials = []
    for k in range(factor):
        x = b.load(f"x_{k}", f"x+i+{k}", region=f"x{k}")
        y = b.load(f"y_{k}", f"y+i+{k}", region=f"y{k}")
        partials.append(b.fmul(f"p_{k}", x, y))
    # Reduction tree.
    level = 0
    while len(partials) > 1:
        nxt = []
        for j in range(0, len(partials) - 1, 2):
            nxt.append(b.fadd(f"s{level}_{j}", partials[j], partials[j + 1]))
        if len(partials) % 2:
            nxt.append(partials[-1])
        partials = nxt
        level += 1
    acc = b.fadd("acc_new", "acc", partials[0])
    b.store(acc, "acc_addr", region="acc")
    return build_ddg(b)


def dgefa_update(columns: int = 3) -> DDG:
    """The rank-1 update of Gaussian elimination: ``a[i][j] += t * a[k][j]``.

    ``columns`` consecutive columns are processed per iteration, which is how
    compilers typically unroll the ``dgefa`` inner loop.
    """

    b = Block(f"linpack-dgefa-c{columns}")
    t = b.load("t", "a+k*lda+i", region="pivot")
    for j in range(columns):
        akj = b.load(f"akj_{j}", f"a+k*lda+{j}", region=f"rowk{j}")
        aij = b.load(f"aij_{j}", f"a+i*lda+{j}", region=f"rowi{j}")
        prod = b.fmul(f"prod_{j}", t, akj)
        upd = b.fadd(f"upd_{j}", aij, prod)
        b.store(upd, f"a+i*lda+{j}", region=f"rowi{j}")
    return build_ddg(b)
