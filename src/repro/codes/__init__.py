"""Benchmark code substrate: a tiny IR, dependence analysis, kernels and generators."""

from .dependence import AliasPolicy, build_ddg
from .generator import (
    layered_random_ddg,
    random_expression_forest,
    random_loop_body,
    random_suite,
)
from .ir import Block, Instruction, DEFAULT_LATENCIES
from .suite import SuiteEntry, benchmark_suite, kernel_suite, scale_suite, suite_by_name
from . import kernels

__all__ = [
    "Block",
    "Instruction",
    "DEFAULT_LATENCIES",
    "AliasPolicy",
    "build_ddg",
    "layered_random_ddg",
    "random_expression_forest",
    "random_loop_body",
    "random_suite",
    "SuiteEntry",
    "benchmark_suite",
    "kernel_suite",
    "scale_suite",
    "suite_by_name",
    "kernels",
]
