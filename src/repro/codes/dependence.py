"""Data-dependence analysis: from a straight-line block to a DDG.

The conversion implements the classic rules for a basic block in SSA form:

* **flow (RAW) dependences** -- an instruction reading a name defined by an
  earlier instruction depends on it through a register of the producer's
  type; the arc latency is the producer's latency;
* **memory dependences** -- loads and stores are ordered conservatively
  unless a simple region-based alias analysis proves them independent:
  store->load, load->store and store->store pairs touching the same (or an
  unknown) region get a serial arc;
* live-in operands (never defined in the block) create no dependence.

Operation names in the produced DDG are ``"<index>:<opcode>:<dest>"`` so
they stay unique, readable in reports, and stable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.graph import DDG
from ..core.operation import Operation
from ..errors import IRError
from .ir import Block, Instruction

__all__ = ["build_ddg", "AliasPolicy"]


class AliasPolicy:
    """How memory operations are disambiguated."""

    #: Accesses with different region tags never alias; same/unknown regions do.
    REGIONS = "regions"
    #: Every pair of memory accesses (except load/load) is ordered.
    CONSERVATIVE = "conservative"
    #: Memory operations are considered independent (pure dataflow view).
    NONE = "none"


def _node_name(index: int, instr: Instruction) -> str:
    core = instr.dest if instr.dest else instr.opcode
    return f"i{index}:{instr.opcode}:{core}"


def _may_alias(a: Instruction, b: Instruction, policy: str) -> bool:
    if policy == AliasPolicy.NONE:
        return False
    if policy == AliasPolicy.CONSERVATIVE:
        return True
    if a.region is None or b.region is None:
        return True
    return a.region == b.region


def build_ddg(
    block: Block,
    name: Optional[str] = None,
    alias_policy: str = AliasPolicy.REGIONS,
    memory_serial_latency: int = 1,
) -> DDG:
    """Build the data dependence graph of *block*.

    Parameters
    ----------
    block:
        The straight-line block to analyse.
    name:
        Name of the produced DDG (defaults to the block's name).
    alias_policy:
        One of :class:`AliasPolicy`; controls which memory pairs are ordered.
    memory_serial_latency:
        Latency of the serial arcs introduced between dependent memory
        operations (1 models a store buffer drain; 0 would allow same-cycle
        issue on machines that disambiguate in hardware).
    """

    ddg = DDG(name or block.name)
    producers: Dict[str, Tuple[str, Instruction]] = {}
    node_names: List[str] = []

    # First pass: create the operations.
    for index, instr in enumerate(block):
        node = _node_name(index, instr)
        node_names.append(node)
        rtype = instr.effective_rtype
        defs = frozenset({rtype}) if rtype is not None else frozenset()
        ddg.add_operation(
            Operation(
                node,
                defs=defs,
                latency=instr.effective_latency,
                opcode=instr.opcode,
                fu_class=instr.effective_fu_class,
            )
        )
        if instr.dest is not None:
            if instr.dest in producers:
                raise IRError(
                    f"block {block.name!r}: {instr.dest!r} defined twice"
                )
            producers[instr.dest] = (node, instr)

    # Second pass: flow dependences (RAW through registers).
    for index, instr in enumerate(block):
        node = node_names[index]
        for src in instr.srcs:
            entry = producers.get(src)
            if entry is None:
                continue  # live-in operand
            producer_node, producer_instr = entry
            rtype = producer_instr.effective_rtype
            if rtype is None:  # pragma: no cover - defensive
                continue
            ddg.add_flow_edge(
                producer_node, node, rtype, latency=producer_instr.effective_latency
            )

    # Third pass: memory ordering.
    if alias_policy != AliasPolicy.NONE:
        memory_ops = [
            (node_names[i], instr) for i, instr in enumerate(block) if instr.is_memory
        ]
        for i, (node_a, a) in enumerate(memory_ops):
            for node_b, b in memory_ops[i + 1:]:
                if a.opcode == "load" and b.opcode == "load":
                    continue
                if not _may_alias(a, b, alias_policy):
                    continue
                # Preserve program order between the aliasing pair.
                if not ddg.edges_between(node_a, node_b):
                    ddg.add_serial_edge(node_a, node_b, latency=memory_serial_latency)
    return ddg
