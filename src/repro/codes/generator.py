"""Seeded random DDG generators.

The hand-written kernels cover the classic benchmark shapes; the generators
below extend the population for the optimality experiments (Section 5 needs
a large number of DAGs to produce meaningful percentages) and for the
property-based tests.  All generators are deterministic for a given seed.

Three families are provided:

* :func:`layered_random_ddg` -- the classic random-DAG model used in
  scheduling papers: nodes are placed on layers, arcs only go downwards;
* :func:`random_expression_forest` -- a set of expression trees whose leaves
  are loads, the shape of compiler-generated arithmetic blocks;
* :func:`random_loop_body` -- a load/compute/store mixture parameterised by
  its ILP degree, mimicking the kernels' structure.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.graph import DDG
from ..core.operation import Operation
from ..core.types import FLOAT, INT, RegisterType, canonical_type
from .dependence import build_ddg
from .ir import Block

__all__ = [
    "layered_random_ddg",
    "random_expression_forest",
    "random_loop_body",
    "random_superblock",
    "random_suite",
]


def layered_random_ddg(
    nodes: int,
    layers: int = 4,
    edge_probability: float = 0.35,
    max_latency: int = 4,
    value_probability: float = 0.8,
    rtype: RegisterType | str = INT,
    seed: int = 0,
    name: Optional[str] = None,
    max_consumers: Optional[int] = None,
    serial_chain_probability: float = 0.0,
) -> DDG:
    """A layered random DAG with flow arcs between consecutive (or later) layers.

    ``max_consumers`` caps a value's fan-out (unbounded by default, matching
    the historic behaviour); real superblocks rarely read one value from
    dozens of places, and an O(n) consumer list makes every Theorem-4.2
    serialization O(n) arcs, which is not what large traces look like.
    ``serial_chain_probability`` threads extra intra-layer serial arcs
    (compiler-ordered memory operations) through the block.  Both knobs
    leave the random stream of the default configuration untouched, so
    historic seeds keep producing bit-identical graphs.
    """

    rng = random.Random(seed)
    rtype = canonical_type(rtype)
    ddg = DDG(name or f"layered-n{nodes}-s{seed}")
    layer_of: List[int] = []
    for i in range(nodes):
        layer = min(int(i * layers / nodes), layers - 1)
        produces = rng.random() < value_probability
        ddg.add_operation(
            Operation(
                f"n{i}",
                defs=frozenset({rtype}) if produces else frozenset(),
                latency=rng.randint(1, max_latency),
                opcode="op",
            )
        )
        layer_of.append(layer)

    for i in range(nodes):
        if not ddg.operation(f"n{i}").defines(rtype):
            continue
        consumers = 0
        for j in range(i + 1, nodes):
            if layer_of[j] <= layer_of[i]:
                continue
            if max_consumers is not None and consumers >= max_consumers:
                break
            if rng.random() < edge_probability / max(1, layer_of[j] - layer_of[i]):
                ddg.add_flow_edge(f"n{i}", f"n{j}", rtype)
                consumers += 1
    # Give isolated non-source nodes at least one incoming serial arc so the
    # graph is connected enough to be interesting.
    for j in range(1, nodes):
        if ddg.in_degree(f"n{j}") == 0 and rng.random() < 0.5:
            i = rng.randrange(0, j)
            ddg.add_serial_edge(f"n{i}", f"n{j}", latency=rng.randint(0, 2))
    if serial_chain_probability > 0.0:
        for j in range(1, nodes):
            if rng.random() < serial_chain_probability:
                i = rng.randrange(0, j)
                if layer_of[i] < layer_of[j]:
                    ddg.add_serial_edge(f"n{i}", f"n{j}", latency=0)
    return ddg


def random_superblock(
    operations: int = 200,
    block_size: int = 24,
    ilp_degree: int = 6,
    cross_block_probability: float = 0.25,
    max_consumers: int = 4,
    max_latency: int = 4,
    rtype: RegisterType | str = INT,
    seed: int = 0,
    name: Optional[str] = None,
) -> DDG:
    """A superblock-shaped DDG: a trace of basic blocks glued by live ranges.

    Post-unrolling/tail-duplication superblocks are the 200+ operation
    inputs the ROADMAP's scale tier targets.  Structurally they are a
    *sequence* of small dense blocks: inside a block, ``ilp_degree``
    independent strands of dependent operations; between blocks, a sparse
    set of cross-block flow arcs (the live registers of the trace) plus a
    serial arc chaining the block entries (the side-exit ordering).  Unlike
    :func:`layered_random_ddg` at that size, values have a bounded consumer
    count, which keeps the graph realistic and the serialization arcs per
    reduction step small.
    """

    rng = random.Random(seed)
    rtype = canonical_type(rtype)
    ddg = DDG(name or f"superblock-n{operations}-s{seed}")
    consumer_count: dict = {}
    blocks: List[List[str]] = []
    block_count = max(1, (operations + block_size - 1) // block_size)
    emitted = 0
    for b in range(block_count):
        block_nodes: List[str] = []
        strands: List[List[str]] = [[] for _ in range(max(1, ilp_degree))]
        size = min(block_size, operations - emitted)
        for _ in range(size):
            node = f"b{b}n{len(block_nodes)}"
            produces = rng.random() < 0.85
            ddg.add_operation(
                Operation(
                    node,
                    defs=frozenset({rtype}) if produces else frozenset(),
                    latency=rng.randint(1, max_latency),
                    opcode="op",
                )
            )
            strand = strands[rng.randrange(len(strands))]
            # Chain inside the strand; occasionally read from a sibling
            # strand of the same block (local register reuse).
            sources = []
            if strand:
                sources.append(strand[-1])
            if rng.random() < 0.35:
                siblings = [s[-1] for s in strands if s and s is not strand]
                if siblings:
                    sources.append(rng.choice(siblings))
            for src in sources:
                if (
                    ddg.operation(src).defines(rtype)
                    and consumer_count.get(src, 0) < max_consumers
                ):
                    ddg.add_flow_edge(src, node, rtype)
                    consumer_count[src] = consumer_count.get(src, 0) + 1
            strand.append(node)
            block_nodes.append(node)
            emitted += 1
        if blocks:
            # Side-exit ordering: the previous block's entry precedes ours.
            ddg.add_serial_edge(blocks[-1][0], block_nodes[0], latency=0)
            # Cross-block live ranges from the last few earlier definitions.
            producers = [
                n
                for prev in blocks[-2:]
                for n in prev
                if ddg.operation(n).defines(rtype)
            ]
            for node in block_nodes:
                if producers and rng.random() < cross_block_probability:
                    src = rng.choice(producers)
                    if consumer_count.get(src, 0) < max_consumers:
                        ddg.add_flow_edge(src, node, rtype)
                        consumer_count[src] = consumer_count.get(src, 0) + 1
        blocks.append(block_nodes)
    return ddg


def random_expression_forest(
    trees: int = 3,
    depth: int = 3,
    seed: int = 0,
    name: Optional[str] = None,
) -> DDG:
    """A forest of binary expression trees whose leaves are memory loads."""

    rng = random.Random(seed)
    b = Block(name or f"expr-forest-t{trees}-d{depth}-s{seed}")
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def gen_tree(current_depth: int) -> str:
        if current_depth == 0 or (current_depth < depth and rng.random() < 0.2):
            return b.load(fresh("leaf"), fresh("addr"), region=fresh("r"))
        left = gen_tree(current_depth - 1)
        right = gen_tree(current_depth - 1)
        opcode = rng.choice(["fadd", "fsub", "fmul"])
        return b._binary(opcode, fresh("t"), left, right)

    for _ in range(trees):
        root = gen_tree(depth)
        b.store(root, fresh("out"), region=fresh("out"))
    return build_ddg(b)


def random_loop_body(
    operations: int = 20,
    ilp_degree: int = 3,
    seed: int = 0,
    float_fraction: float = 0.7,
    name: Optional[str] = None,
) -> DDG:
    """A random loop body: *ilp_degree* independent strands of load/compute/store.

    Each strand is a dependence chain; strands occasionally exchange values,
    which creates the cross-chain reuse that makes register pressure
    interesting.
    """

    rng = random.Random(seed)
    b = Block(name or f"loop-n{operations}-ilp{ilp_degree}-s{seed}")
    strands: List[List[str]] = [[] for _ in range(max(1, ilp_degree))]
    emitted = 0
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    while emitted < operations:
        strand = rng.randrange(len(strands))
        chain = strands[strand]
        is_float = rng.random() < float_fraction
        if not chain or rng.random() < 0.25:
            dest = b.load(
                fresh("v"),
                fresh("addr"),
                region=fresh("reg"),
                rtype=FLOAT if is_float else INT,
            )
        else:
            a = chain[-1]
            # Possibly reuse a value from another strand as second operand.
            other_sources = [s[-1] for s in strands if s and s is not chain]
            second = (
                rng.choice(other_sources)
                if other_sources and rng.random() < 0.4
                else (chain[rng.randrange(len(chain))] if rng.random() < 0.5 else "invariant")
            )
            opcode = rng.choice(
                ["fadd", "fmul", "fsub"] if is_float else ["add", "mul", "sub"]
            )
            dest = b._binary(opcode, fresh("v"), a, second)
        chain.append(dest)
        emitted += 1
        if len(chain) > 3 and rng.random() < 0.3:
            b.store(chain[-1], fresh("out"), region=fresh("outreg"))
            strands[strand] = []
            emitted += 1
    for chain in strands:
        if chain:
            b.store(chain[-1], fresh("out"), region=fresh("outreg"))
    return build_ddg(b)


def random_suite(
    count: int = 12,
    seed: int = 2004,
    min_ops: int = 8,
    max_ops: int = 26,
) -> List[DDG]:
    """A deterministic collection of random DDGs for the optimality experiments."""

    rng = random.Random(seed)
    out: List[DDG] = []
    for i in range(count):
        family = i % 3
        if family == 0:
            out.append(
                layered_random_ddg(
                    nodes=rng.randint(min_ops, max_ops),
                    layers=rng.randint(3, 5),
                    edge_probability=rng.uniform(0.25, 0.5),
                    seed=rng.randrange(1 << 30),
                    name=f"rand-layered-{i}",
                )
            )
        elif family == 1:
            out.append(
                random_expression_forest(
                    trees=rng.randint(2, 4),
                    depth=rng.randint(2, 3),
                    seed=rng.randrange(1 << 30),
                    name=f"rand-expr-{i}",
                )
            )
        else:
            out.append(
                random_loop_body(
                    operations=rng.randint(min_ops, max_ops),
                    ilp_degree=rng.randint(2, 4),
                    seed=rng.randrange(1 << 30),
                    name=f"rand-loop-{i}",
                )
            )
    return out
