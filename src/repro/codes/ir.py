"""A tiny three-address intermediate representation for writing loop bodies.

The paper's experiments analyse "some loop bodies (excluding branches)"
extracted from SpecFP, whetstone, livermore and linpack.  To stand in for
the proprietary compiler front end, this module provides a small straight-
line IR in which those loop bodies are written by hand
(:mod:`repro.codes.kernels`), plus the dependence analysis
(:mod:`repro.codes.dependence`) that converts a block into the DDG the
register-saturation analysis consumes.

Design choices (all documented in DESIGN.md):

* destinations are in SSA form -- each instruction defines a fresh value --
  which matches the paper's model of one definition per value and removes
  anti/output dependences on registers;
* operands that are never defined inside the block are *live-in* values
  (loop-invariant registers, induction variables): they impose no dependence
  and occupy registers accounted outside the analysed type;
* memory operations carry an optional region tag used by a simple alias
  analysis: accesses to different regions are independent, accesses to the
  same (or an unknown) region are ordered conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.types import FLOAT, INT, RegisterType, canonical_type
from ..errors import IRError

__all__ = ["Instruction", "Block", "DEFAULT_LATENCIES"]

#: Default latencies per opcode, loosely modelled on an in-order RISC core
#: with a long memory pipeline (the "memory gap" the paper emphasises).
DEFAULT_LATENCIES: Dict[str, int] = {
    "load": 4,
    "store": 1,
    "add": 1,
    "sub": 1,
    "mul": 3,
    "div": 12,
    "shift": 1,
    "and": 1,
    "or": 1,
    "cmp": 1,
    "fadd": 3,
    "fsub": 3,
    "fmul": 4,
    "fdiv": 18,
    "fsqrt": 22,
    "fmadd": 4,
    "mov": 1,
    "fmov": 1,
}

_FU_CLASSES: Dict[str, str] = {
    "load": "mem",
    "store": "mem",
    "fadd": "fpu",
    "fsub": "fpu",
    "fmul": "fpu",
    "fdiv": "fpu",
    "fsqrt": "fpu",
    "fmadd": "fpu",
    "fmov": "fpu",
}

_FLOAT_OPCODES = {"fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmadd", "fmov"}


@dataclass(frozen=True)
class Instruction:
    """A three-address instruction ``dest = opcode(srcs...)``.

    ``dest`` may be ``None`` (stores, compares used for effect).  ``region``
    tags the memory location touched by loads/stores for the alias analysis.
    """

    opcode: str
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    rtype: Optional[RegisterType] = None
    latency: Optional[int] = None
    region: Optional[str] = None
    fu_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rtype is not None:
            object.__setattr__(self, "rtype", canonical_type(self.rtype))
        object.__setattr__(self, "srcs", tuple(self.srcs))

    @property
    def effective_latency(self) -> int:
        if self.latency is not None:
            return self.latency
        return DEFAULT_LATENCIES.get(self.opcode, 1)

    @property
    def effective_fu_class(self) -> str:
        if self.fu_class is not None:
            return self.fu_class
        return _FU_CLASSES.get(self.opcode, "alu")

    @property
    def effective_rtype(self) -> Optional[RegisterType]:
        if self.dest is None:
            return None
        if self.rtype is not None:
            return self.rtype
        return FLOAT if self.opcode in _FLOAT_OPCODES else INT

    @property
    def is_memory(self) -> bool:
        return self.opcode in ("load", "store")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dest = f"{self.dest} = " if self.dest else ""
        return f"{dest}{self.opcode} {', '.join(self.srcs)}"


class Block:
    """A straight-line basic block of :class:`Instruction` objects.

    The fluent helpers (``load``, ``fmul``, ...) append an instruction and
    return the destination name, so loop bodies read almost like the source
    they model::

        b = Block("daxpy")
        x = b.load("x_i", region="x")
        y = b.load("y_i", region="y")
        ax = b.fmul("ax", "a", x)
        b.store(b.fadd("new_y", ax, y), region="y")
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self._defined: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def append(self, instruction: Instruction) -> Optional[str]:
        if instruction.dest is not None:
            if instruction.dest in self._defined:
                raise IRError(
                    f"block {self.name!r}: {instruction.dest!r} defined twice "
                    "(the IR is SSA: rename the second definition)"
                )
            self._defined[instruction.dest] = len(self.instructions)
        self.instructions.append(instruction)
        return instruction.dest

    def emit(
        self,
        opcode: str,
        dest: Optional[str] = None,
        srcs: Sequence[str] = (),
        rtype: Optional[RegisterType] = None,
        latency: Optional[int] = None,
        region: Optional[str] = None,
        fu_class: Optional[str] = None,
    ) -> Optional[str]:
        return self.append(
            Instruction(opcode, dest, tuple(srcs), rtype, latency, region, fu_class)
        )

    # Convenience wrappers ------------------------------------------------ #
    def load(self, dest: str, address: str = "", region: Optional[str] = None,
             rtype: RegisterType | str = FLOAT, latency: Optional[int] = None) -> str:
        srcs = (address,) if address else ()
        self.emit("load", dest, srcs, canonical_type(rtype), latency, region)
        return dest

    def iload(self, dest: str, address: str = "", region: Optional[str] = None,
              latency: Optional[int] = None) -> str:
        return self.load(dest, address, region, INT, latency)

    def store(self, src: str, address: str = "", region: Optional[str] = None,
              latency: Optional[int] = None) -> None:
        srcs = (src, address) if address else (src,)
        self.emit("store", None, srcs, None, latency, region)

    def _binary(self, opcode: str, dest: str, a: str, b: str,
                latency: Optional[int] = None) -> str:
        self.emit(opcode, dest, (a, b), None, latency)
        return dest

    def add(self, dest: str, a: str, b: str) -> str:
        return self._binary("add", dest, a, b)

    def sub(self, dest: str, a: str, b: str) -> str:
        return self._binary("sub", dest, a, b)

    def mul(self, dest: str, a: str, b: str) -> str:
        return self._binary("mul", dest, a, b)

    def shift(self, dest: str, a: str, b: str) -> str:
        return self._binary("shift", dest, a, b)

    def fadd(self, dest: str, a: str, b: str) -> str:
        return self._binary("fadd", dest, a, b)

    def fsub(self, dest: str, a: str, b: str) -> str:
        return self._binary("fsub", dest, a, b)

    def fmul(self, dest: str, a: str, b: str) -> str:
        return self._binary("fmul", dest, a, b)

    def fdiv(self, dest: str, a: str, b: str) -> str:
        return self._binary("fdiv", dest, a, b)

    def fmadd(self, dest: str, a: str, b: str, c: str) -> str:
        """Fused multiply-add ``dest = a * b + c``."""

        self.emit("fmadd", dest, (a, b, c))
        return dest

    def fsqrt(self, dest: str, a: str) -> str:
        self.emit("fsqrt", dest, (a,))
        return dest

    def mov(self, dest: str, src: str, rtype: RegisterType | str = INT) -> str:
        opcode = "fmov" if canonical_type(rtype) == FLOAT else "mov"
        self.emit(opcode, dest, (src,), canonical_type(rtype))
        return dest

    # ------------------------------------------------------------------ #
    def defined_names(self) -> List[str]:
        return list(self._defined.keys())

    def live_in_names(self) -> List[str]:
        """Operands read but never defined in the block (loop invariants, bases...)."""

        defined = set(self._defined)
        seen: List[str] = []
        for instr in self.instructions:
            for src in instr.srcs:
                if src and src not in defined and src not in seen:
                    seen.append(src)
        return seen

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block({self.name!r}, {len(self.instructions)} instructions)"
