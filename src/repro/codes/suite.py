"""The named benchmark suite used by the experiments and the benchmarks.

Mirrors the paper's experimental population ("loop bodies extracted from
SpecFP, whetstone, livermore and linpack") with the hand-written kernels of
:mod:`repro.codes.kernels`, optionally extended with seeded random DDGs for
statistical weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.graph import DDG
from ..core.types import FLOAT, INT, RegisterType
from . import kernels
from .generator import layered_random_ddg, random_superblock, random_suite

__all__ = ["SuiteEntry", "benchmark_suite", "kernel_suite", "scale_suite", "suite_by_name"]


@dataclass(frozen=True)
class SuiteEntry:
    """A named DDG with its provenance."""

    name: str
    category: str
    ddg: DDG
    description: str = ""

    @property
    def size(self) -> int:
        return self.ddg.n

    def register_types(self) -> List[RegisterType]:
        return self.ddg.register_types()


_KERNEL_FACTORIES: Sequence[tuple[str, str, Callable[[], DDG], str]] = (
    ("figure2", "paper", kernels.figure2_dag, "Figure 2 running example"),
    ("linpack-daxpy", "linpack", kernels.daxpy, "y[i] += a*x[i]"),
    ("linpack-daxpy-u4", "linpack", kernels.daxpy_unrolled, "DAXPY unrolled 4x"),
    ("linpack-ddot-u4", "linpack", kernels.ddot_unrolled, "dot product, reduction tree"),
    ("linpack-dgefa", "linpack", kernels.dgefa_update, "Gaussian elimination update"),
    ("livermore-k1", "livermore", kernels.kernel1_hydro, "hydro fragment"),
    ("livermore-k5", "livermore", kernels.kernel5_tridiag, "tri-diagonal elimination"),
    ("livermore-k7", "livermore", kernels.kernel7_state, "equation of state"),
    ("livermore-k12", "livermore", kernels.kernel12_first_diff, "first difference"),
    ("whetstone-m1", "whetstone", kernels.module1_simple, "module 1, simple identifiers"),
    ("whetstone-m2", "whetstone", kernels.module2_array, "module 2, array elements"),
    ("whetstone-m6", "whetstone", kernels.module6_trig_poly, "module 6, polynomial approx"),
    ("whetstone-m8", "whetstone", kernels.module8_calls_inlined, "module 8, inlined calls"),
    ("specfp-tomcatv", "specfp", kernels.tomcatv_residual, "mesh residual"),
    ("specfp-swim", "specfp", kernels.swim_wave_update, "shallow water update"),
    ("specfp-mgrid", "specfp", kernels.mgrid_relaxation, "multigrid relaxation"),
    ("specfp-applu", "specfp", kernels.applu_jacobi_block, "block Jacobi solve"),
    ("dsp-fir6", "dsp", kernels.fir_taps, "6-tap FIR"),
    ("dsp-iir-biquad", "dsp", kernels.iir_biquad, "direct form II biquad"),
    ("dsp-fft-bfly2", "dsp", kernels.fft_radix2_butterfly, "2 radix-2 butterflies"),
    ("dsp-cmac-u3", "dsp", kernels.complex_mac, "complex MAC unrolled 3x"),
    ("dsp-horner7", "dsp", kernels.horner_poly, "Horner polynomial, degree 7"),
)


def kernel_suite() -> List[SuiteEntry]:
    """The hand-written kernels only (deterministic, no random DDGs)."""

    return [
        SuiteEntry(name, category, factory(), description)
        for name, category, factory, description in _KERNEL_FACTORIES
    ]


def benchmark_suite(
    include_random: bool = True,
    random_count: int = 12,
    seed: int = 2004,
    max_size: Optional[int] = None,
) -> List[SuiteEntry]:
    """The full experiment population: kernels plus seeded random DDGs.

    ``max_size`` filters out graphs with more operations than the limit,
    which keeps the exact (intLP) experiments tractable on small machines.
    """

    entries = kernel_suite()
    if include_random:
        for ddg in random_suite(count=random_count, seed=seed):
            entries.append(
                SuiteEntry(ddg.name, "random", ddg, "seeded random DDG")
            )
    if max_size is not None:
        entries = [e for e in entries if e.size <= max_size]
    return entries


def scale_suite(
    sizes: Sequence[int] = (40, 48, 56, 64, 72),
    seed: int = 2104,
    superblock_sizes: Sequence[int] = (120, 160, 200, 240),
) -> List[SuiteEntry]:
    """Larger deterministic DDGs stressing the suite-scale execution paths.

    The paper's population is small loop bodies; production basic blocks
    (unrolled/fused loops, superblocks) easily reach 40-80 operations, where
    the polynomial analyses start to dominate the heuristics.  These entries
    extend the population for the heuristic-only experiments and the
    analysis-cache benchmark -- they are far beyond what the exact intLP
    methods can solve.

    Two tiers are generated: layered random DAGs at *sizes* (the historic
    40-72 operation tier, bit-identical to earlier releases for a given
    seed) and superblock-shaped traces at *superblock_sizes* -- the 200+
    operation tier the ROADMAP targets, where the reduction loop and the
    polynomial analyses, not the solvers, are the bottleneck
    (``benchmarks/bench_reduction_incremental.py`` profiles exactly that).
    Pass ``superblock_sizes=()`` to keep only the historic tier.
    """

    entries = [
        SuiteEntry(
            name=f"scale-n{n}",
            category="scale",
            ddg=layered_random_ddg(
                nodes=n,
                layers=max(4, n // 7),
                edge_probability=0.25,
                seed=seed + i,
                name=f"scale-n{n}",
            ),
            description=f"layered random DDG, {n} operations",
        )
        for i, n in enumerate(sizes)
    ]
    entries.extend(
        SuiteEntry(
            name=f"scale-sb{n}",
            category="scale",
            ddg=random_superblock(
                operations=n,
                seed=seed + 100 + i,
                name=f"scale-sb{n}",
            ),
            description=f"superblock trace, {n} operations",
        )
        for i, n in enumerate(superblock_sizes)
    )
    return entries


def suite_by_name(name: str) -> SuiteEntry:
    """Look up a single suite entry by name (kernels and default random set)."""

    for entry in benchmark_suite():
        if entry.name == name:
            return entry
    raise KeyError(f"unknown benchmark {name!r}")
