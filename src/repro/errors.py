"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError``, ...) coming from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class GraphError(ReproError):
    """A data dependence graph is malformed or an operation on it is invalid."""


class CyclicGraphError(GraphError):
    """An operation that requires a DAG was given a cyclic graph."""


class ScheduleError(ReproError):
    """A schedule violates the precedence constraints of its DDG."""


class ModelError(ReproError):
    """An integer linear program is malformed (unknown variable, bad bounds...)."""


class SolverError(ReproError):
    """The underlying intLP solver failed unexpectedly."""


class InfeasibleError(SolverError):
    """The intLP instance admits no feasible solution."""

    def __init__(self, message: str = "integer program is infeasible") -> None:
        super().__init__(message)


class UnboundedError(SolverError):
    """The intLP instance is unbounded in the optimization direction."""


class KillingFunctionError(ReproError):
    """A killing function is invalid (killer not a potential killer, cyclic killed graph...)."""


class ReductionError(ReproError):
    """Register saturation reduction failed."""


class SpillRequiredError(ReductionError):
    """The register saturation cannot be reduced below the requested budget.

    The paper (Section 4) reaches this state when no intLP solution exists
    even with a single register: "the register saturation cannot be reduced
    and spilling is unavoidable".
    """


class AllocationError(ReproError):
    """Register allocation failed (not enough registers without spilling)."""


class IRError(ReproError):
    """The small three-address IR of :mod:`repro.codes` was used incorrectly."""
