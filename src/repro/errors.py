"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError``, ...) coming from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library.

    Library errors are *deterministic* by default: the same input produces
    the same failure, so re-running the computation cannot help.  The batch
    supervisor (:mod:`repro.experiments.supervisor`) consults
    :meth:`retryable` before burning retry budget on a failed item --
    a malformed graph or an infeasible intLP fails fast, while a
    :class:`TransientError` (and any *non*-library exception, which looks
    like a crashed or poisoned worker from the outside) is retried.
    """

    def retryable(self) -> bool:
        """Whether re-running the failed computation could succeed."""

        return False


class TransientError(ReproError):
    """A failure of the execution environment, not of the computation.

    Raised (or used as a base) where a retry on a healthy worker is
    expected to succeed -- lost workers, interrupted IPC, resource
    exhaustion.  The supervisor retries these within its attempt budget.
    """

    def retryable(self) -> bool:
        return True


class ConfigurationError(ReproError):
    """An environment variable or configuration value is malformed.

    Raised at the point where the value is *read* (not deep inside generic
    parsing code), and the message always names the offending variable or
    option, so a typo in ``REPRO_TIMEOUT`` or ``REPRO_FAULTS`` surfaces as
    one clear diagnosis instead of a bare ``ValueError`` traceback.
    Deliberately non-retryable: the environment does not fix itself.
    """


class GraphError(ReproError):
    """A data dependence graph is malformed or an operation on it is invalid."""


class CyclicGraphError(GraphError):
    """An operation that requires a DAG was given a cyclic graph."""


class ScheduleError(ReproError):
    """A schedule violates the precedence constraints of its DDG."""


class ModelError(ReproError):
    """An integer linear program is malformed (unknown variable, bad bounds...)."""


class SolverError(ReproError):
    """The underlying intLP solver failed unexpectedly.

    Deliberately non-retryable: a solver failure on a given model is a
    deterministic property of the model and backend, so the supervisor
    must surface it instead of re-solving the same instance.
    """


class InfeasibleError(SolverError):
    """The intLP instance admits no feasible solution."""

    def __init__(self, message: str = "integer program is infeasible") -> None:
        super().__init__(message)


class UnboundedError(SolverError):
    """The intLP instance is unbounded in the optimization direction."""


class KillingFunctionError(ReproError):
    """A killing function is invalid (killer not a potential killer, cyclic killed graph...)."""


class ReductionError(ReproError):
    """Register saturation reduction failed."""


class SpillRequiredError(ReductionError):
    """The register saturation cannot be reduced below the requested budget.

    The paper (Section 4) reaches this state when no intLP solution exists
    even with a single register: "the register saturation cannot be reduced
    and spilling is unavoidable".
    """


class AllocationError(ReproError):
    """Register allocation failed (not enough registers without spilling)."""


class IRError(ReproError):
    """The small three-address IR of :mod:`repro.codes` was used incorrectly."""
