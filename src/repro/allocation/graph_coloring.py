"""Chaitin-style graph-coloring register allocation.

The paper frames the register requirement as the maximal clique of the
interference graph; the classical allocation technique on that graph is
graph coloring.  This implementation follows the simplify/select scheme:

1. repeatedly remove (push) a node of degree < R from the interference
   graph; when none exists, pick a spill candidate (highest degree / longest
   lifetime) optimistically;
2. pop nodes back, assigning the lowest colour not used by the already
   coloured neighbours; optimistic candidates that find no colour become
   actual spills.

For interval interference graphs the result matches linear scan (both are
optimal there); the two allocators cross-validate each other in the tests
and give the examples a second, more traditional code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.graph import DDG
from ..core.lifetime import interference_graph, value_lifetimes
from ..core.schedule import Schedule
from ..core.types import RegisterType, Value, canonical_type
from .linear_scan import AllocationResult

__all__ = ["color_allocate"]


def color_allocate(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
    registers: Optional[int] = None,
) -> AllocationResult:
    """Allocate the values of *rtype* by graph coloring of the interference graph."""

    rtype = canonical_type(rtype)
    adjacency: Dict[Value, Set[Value]] = interference_graph(ddg, schedule, rtype)
    lifetimes = {iv.value: iv for iv in value_lifetimes(ddg, schedule, rtype)}
    budget = registers if registers is not None else len(adjacency) or 1

    # --- simplify phase -------------------------------------------------- #
    work = {v: set(neigh) for v, neigh in adjacency.items()}
    stack: List[Value] = []
    optimistic: Set[Value] = set()
    while work:
        trivial = [v for v, neigh in work.items() if len(neigh) < budget]
        if trivial:
            node = min(trivial, key=lambda v: (len(work[v]), v.node))
        else:
            # Spill candidate: the node with the largest degree, breaking
            # ties towards the longest lifetime (cheapest to rematerialise is
            # out of scope for this model).
            node = max(
                work,
                key=lambda v: (len(work[v]), lifetimes[v].length, v.node),
            )
            optimistic.add(node)
        stack.append(node)
        for neigh in work.pop(node):
            work[neigh].discard(node)

    # --- select phase ---------------------------------------------------- #
    assignment: Dict[Value, int] = {}
    spilled: List[Value] = []
    for node in reversed(stack):
        used = {
            assignment[n] for n in adjacency[node] if n in assignment
        }
        colour = next((c for c in range(budget) if c not in used), None)
        if colour is None:
            spilled.append(node)
            continue
        assignment[node] = colour

    used_count = len(set(assignment.values())) if assignment else 0
    return AllocationResult(
        rtype=rtype,
        registers_used=used_count,
        assignment=assignment,
        spilled=tuple(spilled),
    )
