"""Linear-scan register allocation on scheduled code.

For a fixed schedule the interference graph of the values is an interval
graph, and the greedy left-to-right scan colours it optimally: it never uses
more than MAXLIVE registers and fails (reports candidates to spill) exactly
when MAXLIVE exceeds the budget.  This is the allocator used to validate the
end-to-end claim of Figure 1: once the register saturation has been reduced
below ``R_t``, *any* subsequent schedule can be allocated with ``R_t``
registers and no spill.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.graph import DDG
from ..core.schedule import Schedule
from ..core.types import RegisterType, Value, canonical_type
from ..errors import AllocationError
from .intervals import LiveInterval, live_intervals

__all__ = ["AllocationResult", "linear_scan_allocate"]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a register allocation.

    ``assignment`` maps each value to a register index (0-based);
    ``spilled`` lists the values that did not fit when a budget was imposed.
    """

    rtype: RegisterType
    registers_used: int
    assignment: Dict[Value, int] = field(default_factory=dict)
    spilled: Tuple[Value, ...] = ()

    @property
    def success(self) -> bool:
        return not self.spilled

    def register_of(self, value: Value) -> Optional[int]:
        return self.assignment.get(value)


def linear_scan_allocate(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
    registers: Optional[int] = None,
) -> AllocationResult:
    """Allocate the values of *rtype* to registers by linear scan.

    Without a budget the allocation always succeeds and uses exactly MAXLIVE
    registers.  With a budget, values that cannot be assigned are reported in
    ``spilled`` (the classic furthest-end eviction rule chooses which); the
    caller decides whether to actually insert spill code
    (:mod:`repro.allocation.spill`).
    """

    rtype = canonical_type(rtype)
    intervals = live_intervals(ddg, schedule, rtype)

    assignment: Dict[Value, int] = {}
    spilled: List[Value] = []
    free: List[int] = []          # reusable register indices (min-heap)
    next_fresh = 0                # next never-used register index
    active: List[Tuple[int, Value, int]] = []  # (end, value, register)

    for interval in intervals:
        # Expire intervals that ended at or before this start (half-open
        # lifetimes: an interval ending exactly at another's start is free).
        while active and active[0][0] <= interval.start:
            _, _, reg = heapq.heappop(active)
            heapq.heappush(free, reg)
        if interval.empty:
            # A value that dies at birth never occupies a register.
            assignment[interval.value] = free[0] if free else next_fresh
            continue
        if free:
            reg = heapq.heappop(free)
        elif registers is None or next_fresh < registers:
            reg = next_fresh
            next_fresh += 1
        else:
            # Budget exhausted: spill the active interval with the furthest
            # end if it outlives the current one, otherwise spill the current.
            furthest = max(active, key=lambda item: item[0]) if active else None
            if furthest is not None and furthest[0] > interval.end:
                active.remove(furthest)
                heapq.heapify(active)
                spilled.append(furthest[1])
                reg = furthest[2]
            else:
                spilled.append(interval.value)
                continue
        assignment[interval.value] = reg
        heapq.heappush(active, (interval.end, interval.value, reg))

    used = len({r for v, r in assignment.items()}) if assignment else 0
    return AllocationResult(
        rtype=rtype,
        registers_used=used,
        assignment=assignment,
        spilled=tuple(spilled),
    )
