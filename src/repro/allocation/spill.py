"""Spill-code insertion and the iterate-schedule-then-spill baseline.

The paper's introduction argues against the traditional loop in which a
combined scheduler/allocator discovers it ran out of registers, inserts
load/store operations, and reschedules -- possibly several times -- because
nothing guarantees the inserted memory operations find a valid slot in an
already scheduled code.  This module implements exactly that baseline so the
examples and benchmarks can quantify what the RS approach avoids:

* :func:`insert_spill_code` -- rewrite a DDG so that a chosen value goes
  through memory: a store after its definition and one load before each
  consumer (the paper's "minimal spill code insertion in data dependence
  graphs" is listed as future work; the simple per-value store/reload is the
  classic baseline);
* :func:`schedule_with_spilling` -- iterate (schedule, allocate, spill the
  worst value, rebuild the DDG) until the register budget is met, counting
  the memory operations and the makespan degradation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.graph import DDG
from ..core.machine import ProcessorModel, superscalar
from ..core.operation import Operation
from ..core.schedule import Schedule
from ..core.types import RegisterType, Value, canonical_type
from ..errors import AllocationError
from ..scheduling.list_scheduler import list_schedule
from .intervals import live_intervals, maxlive
from .linear_scan import linear_scan_allocate

__all__ = ["SpillOutcome", "insert_spill_code", "schedule_with_spilling", "DEFAULT_MEMORY_LATENCY"]

#: Latency of the load operations introduced by spilling (the "memory gap"
#: the paper's introduction worries about).
DEFAULT_MEMORY_LATENCY = 8


@dataclass(frozen=True)
class SpillOutcome:
    """Result of the iterative schedule-then-spill baseline."""

    ddg: DDG
    schedule: Schedule
    rtype: RegisterType
    registers: int
    spilled_values: Tuple[Value, ...] = ()
    memory_operations_added: int = 0
    iterations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def spill_free(self) -> bool:
        return not self.spilled_values


def insert_spill_code(
    ddg: DDG,
    value: Value,
    memory_latency: int = DEFAULT_MEMORY_LATENCY,
) -> Tuple[DDG, int]:
    """Send *value* through memory: store after its definition, reload before each use.

    Returns the rewritten DDG and the number of memory operations added.  The
    stored value keeps a (short) register lifetime between its definition and
    the store; each consumer reads a freshly reloaded value instead, so the
    original long lifetime disappears.
    """

    rtype = value.rtype
    g = DDG(ddg.name + "+spill")
    for op in ddg.operations():
        g.add_operation(op)

    store_name = f"spill_st[{value.node}]"
    g.add_operation(
        Operation(store_name, latency=1, opcode="store", fu_class="mem")
    )
    consumers = ddg.consumers(value.node, rtype)
    load_names: Dict[str, str] = {}
    for consumer in consumers:
        load_name = f"spill_ld[{value.node}->{consumer}]"
        load_names[consumer] = load_name
        g.add_operation(
            Operation(
                load_name,
                defs=frozenset({rtype}),
                latency=memory_latency,
                opcode="load",
                fu_class="mem",
            )
        )

    added_ops = 1 + len(consumers)
    for edge in ddg.edges():
        if (
            edge.is_flow
            and edge.src == value.node
            and edge.rtype == rtype
            and edge.dst in load_names
        ):
            # Replace the direct flow by value -> store -> (memory) -> load -> consumer.
            continue
        g.add_edge(edge)

    g.add_flow_edge(value.node, store_name, rtype)
    for consumer, load_name in load_names.items():
        # The reload must happen after the store (memory dependence).
        g.add_serial_edge(store_name, load_name, latency=1)
        g.add_flow_edge(load_name, consumer, rtype, latency=memory_latency)
    return g, added_ops


def schedule_with_spilling(
    ddg: DDG,
    rtype: RegisterType | str,
    registers: int,
    machine: Optional[ProcessorModel] = None,
    memory_latency: int = DEFAULT_MEMORY_LATENCY,
    max_iterations: int = 64,
) -> SpillOutcome:
    """The iterative schedule/spill baseline the paper argues against.

    Schedule the DDG, measure MAXLIVE; while it exceeds the budget, spill the
    value with the longest live range, rebuild the DDG and reschedule.
    """

    rtype = canonical_type(rtype)
    machine = machine or superscalar()
    current = ddg.copy()
    spilled: List[Value] = []
    already_spilled: set = set()
    added_ops = 0
    iterations = 0
    while True:
        iterations += 1
        g = current.with_bottom()
        schedule = list_schedule(g, machine)
        need = maxlive(g, schedule, rtype)
        if need <= registers or iterations > max_iterations:
            return SpillOutcome(
                ddg=current,
                schedule=schedule,
                rtype=rtype,
                registers=registers,
                spilled_values=tuple(spilled),
                memory_operations_added=added_ops,
                iterations=iterations,
                details={"final_maxlive": need},
            )
        intervals = [
            iv
            for iv in live_intervals(g, schedule, rtype)
            if iv.value.node in current
            and not iv.value.node.startswith("spill_ld")
            and iv.value.node not in already_spilled
        ]
        if not intervals:
            # Every original value has already been sent through memory and
            # the requirement still exceeds the budget (the remaining pressure
            # comes from the reload values themselves).  This is precisely the
            # failure mode of the iterate-and-spill baseline that the paper's
            # introduction warns about; report it instead of raising so the
            # experiments can tabulate it.
            return SpillOutcome(
                ddg=current,
                schedule=schedule,
                rtype=rtype,
                registers=registers,
                spilled_values=tuple(spilled),
                memory_operations_added=added_ops,
                iterations=iterations,
                details={"final_maxlive": need, "gave_up": True},
            )
        victim = max(intervals, key=lambda iv: (iv.end - iv.start, iv.value.node))
        current, ops = insert_spill_code(current, victim.value, memory_latency)
        spilled.append(victim.value)
        already_spilled.add(victim.value.node)
        added_ops += ops
