"""Register-allocation substrate: the allocator of Figure 1 plus spill baselines."""

from .graph_coloring import color_allocate
from .intervals import LiveInterval, live_intervals, maxlive
from .linear_scan import AllocationResult, linear_scan_allocate
from .spill import (
    DEFAULT_MEMORY_LATENCY,
    SpillOutcome,
    insert_spill_code,
    schedule_with_spilling,
)

__all__ = [
    "LiveInterval",
    "live_intervals",
    "maxlive",
    "AllocationResult",
    "linear_scan_allocate",
    "color_allocate",
    "SpillOutcome",
    "insert_spill_code",
    "schedule_with_spilling",
    "DEFAULT_MEMORY_LATENCY",
]
