"""Live-interval extraction for register allocation.

The register allocator of Figure 1 runs after scheduling: for a given
schedule the lifetime interval of every value is fixed, the interference
graph is an interval graph, and the minimum number of registers needed
without spilling is exactly MAXLIVE.  This module bridges the lifetime
analysis of :mod:`repro.core.lifetime` to the allocators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.graph import DDG
from ..core.lifetime import LifetimeInterval, max_simultaneously_alive, value_lifetimes
from ..core.schedule import Schedule
from ..core.types import RegisterType, Value, canonical_type

__all__ = ["LiveInterval", "live_intervals", "maxlive"]


@dataclass(frozen=True)
class LiveInterval:
    """A value's live range prepared for allocation (sorted by start)."""

    value: Value
    start: int
    end: int

    @property
    def empty(self) -> bool:
        return self.end <= self.start

    def overlaps(self, other: "LiveInterval") -> bool:
        if self.empty or other.empty:
            return False
        return self.end > other.start and other.end > self.start


def live_intervals(
    ddg: DDG, schedule: Schedule, rtype: RegisterType | str
) -> List[LiveInterval]:
    """Live intervals of every value of *rtype*, sorted by increasing start."""

    rtype = canonical_type(rtype)
    raw = value_lifetimes(ddg, schedule, rtype)
    intervals = [LiveInterval(iv.value, iv.birth, iv.death) for iv in raw]
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.value.node))
    return intervals


def maxlive(ddg: DDG, schedule: Schedule, rtype: RegisterType | str) -> int:
    """MAXLIVE: the maximal number of simultaneously live values (= min registers)."""

    rtype = canonical_type(rtype)
    count, _ = max_simultaneously_alive(value_lifetimes(ddg, schedule, rtype))
    return count
