"""Brute-force register-saturation oracles for small DDGs.

These exponential reference implementations exist to cross-validate the
Greedy-k heuristic and the intLP formulation on small graphs:

* :func:`saturation_by_schedule_enumeration` -- maximise the register need
  over *every* valid schedule within a horizon (the literal definition
  ``RS_t(G) = max_{sigma in Sigma(G)} RN_sigma^t(G)``);
* :func:`saturation_by_killing_enumeration` -- maximise the antichain of
  ``DV_k`` over every valid killing function (the characterisation the
  Greedy-k heuristic approximates).
"""

from __future__ import annotations

import time
from typing import Optional

from ..analysis.context import context_for
from ..core.graph import DDG
from ..core.lifetime import register_need, value_lifetimes, max_simultaneously_alive
from ..core.schedule import enumerate_schedules
from ..core.types import RegisterType, canonical_type
from .dvk import saturating_antichain
from .pkill import enumerate_killing_functions, killed_graph
from .result import SaturationResult

__all__ = [
    "saturation_by_schedule_enumeration",
    "saturation_by_killing_enumeration",
]


def saturation_by_schedule_enumeration(
    ddg: DDG,
    rtype: RegisterType | str,
    horizon: Optional[int] = None,
    limit: Optional[int] = None,
) -> SaturationResult:
    """Exact register saturation of a *small* DDG by schedule enumeration.

    ``horizon`` bounds the issue times (critical path + 2 by default, enough
    slack to expose every overlap pattern on the graphs this is used for);
    ``limit`` optionally caps the number of schedules inspected, in which
    case the result is only a lower bound and ``optimal`` is False.
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    g = context_for(ddg).bottom().ddg
    best = 0
    witness = None
    witness_values = ()
    truncated = False
    count = 0
    for schedule in enumerate_schedules(g, horizon=horizon, limit=limit):
        count += 1
        intervals = value_lifetimes(g, schedule, rtype)
        need, alive = max_simultaneously_alive(intervals)
        if need > best:
            best = need
            witness = schedule
            witness_values = tuple(sorted(iv.value for iv in alive))
    if limit is not None and count >= limit:
        truncated = True
    return SaturationResult(
        rtype=rtype,
        rs=best,
        saturating_values=witness_values,
        method="schedule-enum",
        witness_schedule=witness,
        optimal=not truncated,
        wall_time=time.perf_counter() - start,
        details={"schedules_enumerated": count, "truncated": truncated},
    )


def saturation_by_killing_enumeration(
    ddg: DDG,
    rtype: RegisterType | str,
    limit: Optional[int] = None,
) -> SaturationResult:
    """Register saturation of a *small* DDG by killing-function enumeration.

    Every valid killing function is evaluated through its disjoint-value DAG;
    the maximum antichain size over all of them is the register saturation
    (the characterisation underlying the Greedy-k heuristic).
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    g = context_for(ddg).bottom().ddg
    best = 0
    best_values = ()
    best_kf = None
    count = 0
    truncated = False
    for kf in enumerate_killing_functions(g, rtype, only_valid=True, limit=limit):
        count += 1
        killed = killed_graph(g, kf)
        antichain, _ = saturating_antichain(g, kf, killed)
        if len(antichain) > best:
            best = len(antichain)
            best_values = tuple(sorted(antichain))
            best_kf = kf
    if limit is not None and count >= limit:
        truncated = True
    return SaturationResult(
        rtype=rtype,
        rs=best,
        saturating_values=best_values,
        method="killing-enum",
        killing_function=dict(best_kf.items()) if best_kf is not None else None,
        optimal=not truncated,
        wall_time=time.perf_counter() - start,
        details={"killing_functions_enumerated": count, "truncated": truncated},
    )
