"""The disjoint-value DAG ``DV_k(G)`` and the values it lets live together.

Given a valid killing function ``k``, the *disjoint-value DAG* orders the
values whose lifetimes can never overlap once the killing choices are
enforced: there is an arc ``u^t -> v^t`` when, in **every** schedule of the
killed graph ``G->k``, the value ``v^t`` is written no earlier than the
death of ``u^t`` (which happens at the read of ``k(u^t)``).  Formally we use
the longest-path test::

    u^t -> v^t    iff    lp_{G->k}(k(u^t), v)  >=  delta_r(k(u^t)) - delta_w(v)

so that ``sigma(v) + delta_w(v) >= sigma(k(u)) + delta_r(k(u))`` holds for
every valid schedule of ``G->k``.

Two values that are *incomparable* in ``DV_k`` can be made simultaneously
alive by some schedule of ``G->k``; the values that can all be alive at the
same instant therefore form an antichain, and the register saturation
restricted to the killing function ``k`` is the size of a maximum antichain
of ``DV_k``.  Maximising over valid killing functions yields the register
saturation itself -- that is exactly what the Greedy-k heuristic
approximates and what the exhaustive oracle of
:mod:`repro.saturation.enumeration` computes on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.antichain import maximum_antichain
from ..analysis.context import context_for
from ..analysis.graphalgo import NEG_INF, transitive_closure_of_relation
from ..core.graph import DDG
from ..core.types import RegisterType, Value, canonical_type
from .pkill import KillingFunction, killed_graph

__all__ = ["DisjointValueDAG", "disjoint_value_dag", "saturating_antichain"]


@dataclass(frozen=True)
class DisjointValueDAG:
    """The disjoint-value DAG of a killing function.

    ``edges`` holds the direct "dies before the definition of" relation and
    ``closure`` its transitive closure (the strict partial order on which
    antichains are computed).
    """

    rtype: RegisterType
    values: Tuple[Value, ...]
    edges: FrozenSet[Tuple[Value, Value]]
    closure: FrozenSet[Tuple[Value, Value]]

    def successors(self, value: Value) -> List[Value]:
        return [v for (u, v) in self.edges if u == value]

    def comparable(self, a: Value, b: Value) -> bool:
        return (a, b) in self.closure or (b, a) in self.closure

    def maximum_antichain(self) -> List[Value]:
        """A maximum antichain of the DAG (the candidate saturating values)."""

        return maximum_antichain(self.values, self.closure)

    @property
    def width(self) -> int:
        """The Dilworth width of the DAG = the saturation under this killing function."""

        return len(self.maximum_antichain())


def disjoint_value_dag(
    ddg: DDG,
    kf: KillingFunction,
    killed: Optional[DDG] = None,
    killed_ctx=None,
) -> DisjointValueDAG:
    """Build ``DV_k(G)`` for the killing function *kf*.

    Parameters
    ----------
    ddg:
        The original DDG (used for the value set and the write offsets).
    kf:
        A killing function for one register type.  It should be valid; a
        cyclic killed graph raises through the topological sort.
    killed:
        The killed graph ``G->k`` if the caller already built it (avoids a
        recomputation inside loops over candidate killing functions).
    killed_ctx:
        Optional :class:`~repro.analysis.context.AnalysisContext` of
        *killed* -- callers that keep killed graphs warm across reduction
        iterations pass it so the longest-path rows are reused.
    """

    rtype = kf.rtype
    values = tuple(sorted(ddg.values(rtype)))
    if killed is None:
        killed = killed_graph(ddg, kf)

    # Longest paths are only needed from killer nodes; the killed graph's
    # context shares one topological sort across all of them.
    if killed_ctx is None:
        killed_ctx = context_for(killed)
    killers = sorted({killer for killer in kf.mapping.values()})
    lp_from_killer: Dict[str, Mapping[str, float]] = {
        killer: killed_ctx.longest_paths_from(killer) for killer in killers
    }

    edges: Set[Tuple[Value, Value]] = set()
    delta_w = {v: ddg.operation(v.node).delta_w for v in values}
    for u in values:
        killer = kf.killer(u)
        if killer is None:
            # A value without consumers dies immediately: every other value
            # defined later is unordered with it only if it can be defined
            # before u's birth; without a killer we conservatively leave it
            # incomparable (no edge), which can only overestimate the
            # antichain of this particular killing function but never the
            # saturation itself (the exact methods do not rely on this).
            continue
        killer_read = ddg.operation(killer).delta_r
        reach = lp_from_killer[killer]
        for v in values:
            if v == u:
                continue
            dist = reach[v.node]
            if dist == NEG_INF:
                continue
            if dist >= killer_read - delta_w[v]:
                edges.add((u, v))

    closure = transitive_closure_of_relation(values, edges)
    return DisjointValueDAG(rtype, values, frozenset(edges), frozenset(closure))


def saturating_antichain(
    ddg: DDG,
    kf: KillingFunction,
    killed: Optional[DDG] = None,
    killed_ctx=None,
) -> Tuple[List[Value], DisjointValueDAG]:
    """Maximum antichain of ``DV_k(G)`` together with the DAG itself."""

    dag = disjoint_value_dag(ddg, kf, killed, killed_ctx=killed_ctx)
    return dag.maximum_antichain(), dag
