"""Result objects of the register-saturation analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.schedule import Schedule
from ..core.types import RegisterType, Value

__all__ = ["SaturationResult"]


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of a register-saturation computation for one register type.

    Attributes
    ----------
    rtype:
        The register type analysed.
    rs:
        The computed register saturation (exact) or its approximation
        (heuristic); the paper writes ``RS_t(G)`` and ``RS*`` respectively.
    saturating_values:
        A set of values that can be simultaneously alive and whose size is
        ``rs`` (the *saturating values*); used by the reduction pass to pick
        serialization candidates.
    method:
        How the value was obtained (``"greedy-k"``, ``"intlp"``,
        ``"schedule-enum"``, ...).
    killing_function:
        The killing function exhibiting the saturation, when the method has
        one (maps each value to the operation chosen as its killer).
    witness_schedule:
        A schedule realising a register need of ``rs``, when available
        (always available from the intLP, optional for heuristics).
    optimal:
        True when the value is proven to be the exact register saturation.
    wall_time:
        Seconds spent computing the result.
    details:
        Free-form extra information (model sizes, fallback reasons...).
    """

    rtype: RegisterType
    rs: int
    saturating_values: Tuple[Value, ...] = ()
    method: str = "unknown"
    killing_function: Optional[Mapping[Value, str]] = None
    witness_schedule: Optional[Schedule] = None
    optimal: bool = False
    wall_time: float = 0.0
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "saturating_values", tuple(self.saturating_values))
        if self.killing_function is not None:
            object.__setattr__(self, "killing_function", dict(self.killing_function))
        object.__setattr__(self, "details", dict(self.details))

    def exceeds(self, available_registers: int) -> bool:
        """True when the saturation exceeds the architectural register count ``R_t``."""

        return self.rs > available_registers

    def summary(self) -> Dict[str, object]:
        return {
            "rtype": self.rtype.name,
            "rs": self.rs,
            "method": self.method,
            "optimal": self.optimal,
            "saturating_values": [str(v) for v in self.saturating_values],
            "wall_time": self.wall_time,
        }
