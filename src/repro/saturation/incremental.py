"""Incremental saturation state shared across reduction iterations.

The value-serialization reduction heuristic runs Greedy-k on a graph that
changes by ~2 serial arcs per iteration.  Before this module every iteration
paid for a full graph copy plus from-scratch recomputation of every
structural analysis (descendant maps, longest-path rows, potential killers,
bipartite killing components).  Adding serial arcs, however, only *grows*
reachability and longest paths, and only around the new arcs' endpoints:

* ``desc(x)`` changes only for ancestors ``x`` of a new arc's source, and
  the change is exactly the union with ``desc(dst)``;
* ``lp(x, y)`` changes only to ``max(lp(x, y), lp(x, src) + w + lp(dst, y))``
  (a DAG path uses a given arc at most once);
* ``pkill(u)`` can only shrink, and only when one of its current potential
  killers is an ancestor of a new arc's source while another consumer of
  ``u`` is newly reachable from the arc's destination.

Everything outside that dirty region provably cannot change, so the classes
below mutate one working DDG in place (with undo) and patch the affected
entries, sharing every untouched set/row with the previous iteration.

**Flat-array core.** The hot state lives on integer op ids handed out by the
per-graph :class:`~repro.analysis.interner.OpInterner` (stable across graph
revisions -- only arcs change, never the node set): longest-path rows are
flat ``List[float]`` buffers indexed by op id instead of name-keyed dicts,
killer/DV state is bitmask rows over the same id space (no str↔bit
translation left on the sync path between the killed mirrors and
:class:`~repro.analysis.antichain.PersistentAntichain`), undo frames hold
slice copies of flat buffers (a ``list.copy`` memcpy instead of dict
rebuilds), and row patching is a whole-row max-merge over arrays.  The
conversion is internal: every string-facing boundary (descendant maps,
pkill, reports) is unchanged, and the patched analyses injected into the
graph's fresh :class:`~repro.analysis.context.AnalysisContext` epoch through
:meth:`~repro.analysis.context.AnalysisContext.memo` keep the existing
Greedy-k code path (:mod:`repro.saturation.greedy`, :mod:`.pkill`,
:mod:`.dvk`) returning results identical to a from-scratch run -- the
property tests in ``tests/test_reduction_incremental.py`` and
``tests/test_flatcore.py`` pin exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from ..analysis import flatbuf, graphalgo
from ..analysis.antichain import PersistentAntichain, antichain_indices_from_rows
from ..analysis.context import context_for
from ..analysis.interner import OpInterner
from ..core.graph import DDG, Edge
from ..core.types import DependenceKind, RegisterType, Value, canonical_type
from ..scheduling.list_scheduler import IncrementalListSchedule
from .result import SaturationResult

__all__ = ["IncrementalAnalysis", "IncrementalSaturation"]

_NEG_INF = graphalgo.NEG_INF


@dataclass
class _AppliedArc:
    """One arc actually applied by a push (no-ops are not recorded)."""

    edge: Edge
    #: The lower-latency duplicate this arc replaced, or None when appended.
    replaced: Optional[Edge]
    #: Ancestors (inclusive) of the arc's source at application time, or
    #: None when the destination was already reachable (no new reach pairs).
    ancestors: Optional[Set[str]]
    #: ``{dst} ∪ desc(dst)`` at application time (the reachability gained by
    #: every ancestor of the source), or None like ``ancestors``.
    addition: Optional[FrozenSet[str]]


@dataclass
class _AnalysisFrame:
    records: List[_AppliedArc] = field(default_factory=list)
    desc_incl: Optional[Dict[str, Set[str]]] = None
    desc_excl: Optional[Dict[str, Set[str]]] = None
    #: Legacy per-row copy-on-write epoch: the whole pre-push row dict.
    #: ``None`` under block frames, where rows are patched in place and the
    #: frame instead records `block_patches` / `added_rows`.
    lp_rows: Optional[Dict[int, List[float]]] = None
    #: Warm rows whose entries grew during this push: src id -> changed
    #: target ids (possibly with duplicates when several arcs moved the same
    #: entry; consumers fold them through idempotent bit ORs).  The DV-DAG
    #: dirty-region update uses it to recheck exactly the pairs whose
    #: longest path moved.
    lp_changes: Dict[int, List[int]] = field(default_factory=dict)
    #: Block undo records, one per `max_merge_rows` call: ``(row ids,
    #: pre-image snapshots)`` with the snapshots stored as one contiguous
    #: row block (see :func:`repro.analysis.flatbuf.max_merge_rows`).
    #: Restored in reverse on pop, after `added_rows` are dropped.
    block_patches: List[Tuple[List[int], List]] = field(default_factory=list)
    #: Row ids first cached during this frame's epoch (block mode only);
    #: pop deletes them, matching the legacy epoch-dict restore, which also
    #: dropped rows cached after the push.
    added_rows: List[int] = field(default_factory=list)


class IncrementalAnalysis:
    """In-place serial-arc push/undo on one DDG with exact warm analyses.

    The graph is mutated through the normal :class:`~repro.core.graph.DDG`
    API (every push/pop bumps ``DDG.version``, keeping the shared
    :class:`AnalysisContext` honest), while descendant maps and longest-path
    rows are patched copy-on-write: unchanged sets/rows are shared with the
    previous epoch, so an undo frame is just a handful of references.
    Longest-path rows are flat op-id-indexed buffers (see the module
    docstring); *interner* accepts a shared
    :class:`~repro.analysis.interner.OpInterner` so sibling analyses over
    copies of the same graph (the candidate killed mirrors) agree on every
    id.  Instances are not thread-safe; they are meant to back one
    reduction session at a time.
    """

    def __init__(
        self,
        ddg: DDG,
        track_reachability: bool = True,
        interner: Optional[OpInterner] = None,
        frame_mode: str = "block",
    ) -> None:
        if frame_mode not in ("block", "per-row"):
            raise ValueError(
                "frame_mode must be 'block' or 'per-row', got %r" % (frame_mode,)
            )
        self._g = ddg
        self._track_reachability = track_reachability
        #: Block frames (the default) patch rows in place through the
        #: `max_merge_rows` batch kernel and undo from contiguous pre-image
        #: blocks; ``per-row`` keeps the PR-6 copy-on-write epoch dicts (the
        #: reference mode `tests/test_batchpush.py` proves byte-identical).
        self._block_frames = frame_mode == "block"
        if interner is None:
            interner = OpInterner(ddg.nodes())
        else:
            for name in ddg.nodes():
                interner.intern(name)
        self._interner = interner
        self._n = interner.size
        self._desc_incl: Optional[Dict[str, Set[str]]] = None
        self._desc_excl: Optional[Dict[str, Set[str]]] = None
        self._lp_rows: Dict[int, List[float]] = {}
        self._frames: List[_AnalysisFrame] = []
        #: Flat out-adjacency, op id -> [(dst id, latency), ...], cached per
        #: revision; the row kernel below relaxes over machine ints only.
        #: push/pop maintain it in place, so only out-of-band graph surgery
        #: (the candidate patch path) forces a full rebuild.
        self._adj: List[List[Tuple[int, int]]] = []
        self._adj_version = -1
        #: Shared topological order of the op ids (plus the position of each
        #: id in it), cached per revision.  Row computations relax over this
        #: one order instead of running a per-row DFS; push keeps it alive
        #: when the new arc already respects it (pos[src] < pos[dst]) and
        #: pop always keeps it alive (removing arcs cannot break an order).
        self._topo_ids: List[int] = []
        self._topo_pos: List[int] = []
        self._topo_version = -1

    @property
    def ddg(self) -> DDG:
        return self._g

    @property
    def interner(self) -> OpInterner:
        return self._interner

    @property
    def depth(self) -> int:
        """Number of push frames currently on the undo stack."""

        return len(self._frames)

    def op_id(self, name: str) -> int:
        """The interned op id of *name*."""

        return self._interner.id(name)

    # ------------------------------------------------------------------ #
    # Warm queries
    # ------------------------------------------------------------------ #
    def _ensure_desc(self) -> None:
        if self._desc_incl is None:
            ctx = context_for(self._g)
            self._desc_incl = ctx.descendants_map(include_self=True)
            self._desc_excl = ctx.descendants_map(include_self=False)

    def descendants_incl(self) -> Dict[str, Set[str]]:
        self._ensure_desc()
        return self._desc_incl  # type: ignore[return-value]

    def descendants_excl(self) -> Dict[str, Set[str]]:
        self._ensure_desc()
        return self._desc_excl  # type: ignore[return-value]

    def _adj_pairs(self) -> List[List[Tuple[int, int]]]:
        version = self._g.version
        if self._adj_version != version:
            iid = self._interner.id
            adj: List[List[Tuple[int, int]]] = [[] for _ in range(self._n)]
            g = self._g
            for name in g.nodes():
                out = adj[iid(name)]
                for e in g.out_edges(name):
                    out.append((iid(e.dst), e.latency))
            self._adj = adj
            self._adj_version = version
        return self._adj

    def _topo_order_ids(self) -> List[int]:
        """Topological order over op ids (Kahn on the flat adjacency)."""

        version = self._g.version
        if self._topo_version != version:
            adj = self._adj_pairs()
            n = self._n
            indeg = [0] * n
            for pairs in adj:
                for ni, _w in pairs:
                    indeg[ni] += 1
            ready = [i for i in range(n) if indeg[i] == 0]
            order: List[int] = []
            while ready:
                nid = ready.pop()
                order.append(nid)
                for ni, _w in adj[nid]:
                    indeg[ni] -= 1
                    if indeg[ni] == 0:
                        ready.append(ni)
            pos = [0] * n
            for i, nid in enumerate(order):
                pos[nid] = i
            self._topo_ids = order
            self._topo_pos = pos
            self._topo_version = version
        return self._topo_ids

    def _compute_row_flat(self, src_id: int) -> List[float]:
        """Flat longest-path row from *src_id* (graphalgo semantics, id space).

        One relaxation pass over the suffix of the shared topological order
        starting at *src_id* fills the distances; nodes the row cannot reach
        cost one float compare each.  Longest paths accumulate the same
        maxima under any topological order, so sharing one sort across all
        row computations (instead of the historic per-row DFS) cannot
        change a single distance.
        """

        adj = self._adj_pairs()
        order = self._topo_order_ids()
        dist: List[float] = [_NEG_INF] * self._n
        dist[src_id] = 0
        for nid in order[self._topo_pos[src_id]:]:
            d = dist[nid]
            if d == _NEG_INF:
                continue
            for ni, w in adj[nid]:
                nd = d + w
                if nd > dist[ni]:
                    dist[ni] = nd
        # The relaxation runs over a plain list (scalar index writes); the
        # finished row moves to the active kernel backend's buffer type so
        # every later patch is a whole-row kernel call.  The width-gated
        # constructor keeps narrow rows as plain lists, where the scalar
        # loops measure faster than the ndarray kernels.
        return flatbuf.row_buffer(dist)

    def _note_added_row(self, src_id: int) -> None:
        """Register a freshly cached row with the top block frame.

        Under block frames the row dict is mutated in place, so pop must
        know which entries joined during the epoch; the legacy mode needs
        nothing (its frame holds the whole pre-push dict).
        """

        if self._block_frames and self._frames:
            self._frames[-1].added_rows.append(src_id)

    def row(self, src_id: int) -> List[float]:
        """Exact flat longest-path row from op *src_id* (kept warm)."""

        row = self._lp_rows.get(src_id)
        if row is None:
            row = self._compute_row_flat(src_id)
            self._lp_rows[src_id] = row
            self._note_added_row(src_id)
        return row

    def rows_multi(self, src_ids: List[int]) -> List[List[float]]:
        """Warm rows for several sources, seeding the cold ones in one pass.

        The cold rows are relaxed together by
        :func:`repro.analysis.flatbuf.relax_sources` -- one walk over the
        shared topological order filling a (missing x n) buffer -- instead
        of one relaxation per source; this is the killed-mirror rebuild/
        reseed batch path.  Rows already warm are returned as cached.
        """

        missing: List[int] = []
        seen: Set[int] = set()
        for sid in src_ids:
            if sid not in self._lp_rows and sid not in seen:
                seen.add(sid)
                missing.append(sid)
        if len(missing) >= 2:
            adj = self._adj_pairs()
            order = self._topo_order_ids()
            pos = self._topo_pos
            start = min(pos[sid] for sid in missing)
            seeded = flatbuf.relax_sources(adj, order, start, missing, self._n)
            for sid, row in zip(missing, seeded):
                self._lp_rows[sid] = row
                self._note_added_row(sid)
        elif missing:
            self.row(missing[0])
        return [self.row(sid) for sid in src_ids]

    def row_by_name(self, src: str) -> List[float]:
        """Flat warm row from the operation named *src*."""

        return self.row(self._interner.id(src))

    def lp_row(self, src: str) -> Dict[str, float]:
        """Exact longest-path row from *src* as a name-keyed dict.

        Boundary API for string-facing callers and the property tests; the
        underlying flat row (:meth:`row`) is computed lazily and kept warm,
        the dict view is built per call.  Hot paths use :meth:`row` /
        :meth:`row_by_name` instead.
        """

        row = self.row(self._interner.id(src))
        return dict(zip(self._interner.names(), flatbuf.row_to_list(row)))

    def _transient_row_flat(self, src_id: int) -> List[float]:
        """A flat row for one-shot use that must NOT join the warm set.

        Every cached row is patched on every subsequent push; rows needed
        only once (the continuation row of a pushed arc's destination) would
        otherwise pollute the cache and grow the per-push patch loop
        unboundedly over a long reduction run.
        """

        row = self._lp_rows.get(src_id)
        if row is not None:
            return row
        return self._compute_row_flat(src_id)

    def _transient_row(self, src: str) -> Dict[str, float]:
        """Name-keyed view of :meth:`_transient_row_flat` (boundary/compat)."""

        row = self._transient_row_flat(self._interner.id(src))
        return dict(zip(self._interner.names(), flatbuf.row_to_list(row)))

    def remains_acyclic_with_edges(self, edges) -> bool:
        return graphalgo.mini_graph_remains_acyclic(
            edges, self.descendants_excl().__getitem__
        )

    def critical_path_with_edges(self, edges) -> int:
        ctx = context_for(self._g)
        return graphalgo.extended_critical_path(
            edges,
            ctx.asap_times(),
            ctx.longest_path_to_sinks(),
            self.lp_row,
            ctx.critical_path_length(),
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _find_duplicate(self, edge: Edge) -> Optional[Edge]:
        for existing in self._g.edges_between(edge.src, edge.dst):
            if existing.kind is edge.kind and existing.rtype == edge.rtype:
                return existing
        return None

    def ancestors_incl(self, node: str) -> Set[str]:
        """Ancestors of *node*, including itself (one reverse reachability walk)."""

        seen: Set[str] = {node}
        stack = [node]
        while stack:
            v = stack.pop()
            for w in self._g.predecessors(v):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen

    # Backwards-compatible alias (pre-PR-5 internal name).
    _ancestors_incl = ancestors_incl

    def evict_row_id(self, src_id: int) -> None:
        """Drop the cached flat row from op *src_id* (recomputed on demand).

        The candidate-patch path uses this for rows its validity criterion
        cannot prove unchanged; it runs only after :meth:`rebase` cleared
        the frame stack, so under block frames there is never a live
        pre-image snapshot pointing at the evicted row (the legacy per-row
        mode is unconditionally safe: every push replaces the top-level row
        dict copy-on-write).
        """

        self._lp_rows.pop(src_id, None)

    def evict_row(self, src: str) -> None:
        """Name-keyed form of :meth:`evict_row_id`."""

        src_id = self._interner.get(src)
        if src_id is not None:
            self._lp_rows.pop(src_id, None)

    def rebase(self) -> None:
        """Drop the undo stack, making the current state the new baseline.

        Called when the owner (a patched candidate DV state) invalidates its
        own frame history: the frames can never be popped again, and keeping
        them would pin every superseded copy-on-write epoch in memory.
        """

        self._frames.clear()

    def push(self, edges) -> _AnalysisFrame:
        """Apply serial arcs in place; returns the frame with dirty-region info.

        Duplicate arcs already dominated by an equal-or-larger latency are
        no-ops (exactly like :meth:`DDG.add_edge`); dominated duplicates are
        replaced and remembered so :meth:`pop` can restore them.
        """

        if self._track_reachability:
            self._ensure_desc()
        block = self._block_frames
        frame = _AnalysisFrame(
            desc_incl=self._desc_incl,
            desc_excl=self._desc_excl,
            lp_rows=None if block else self._lp_rows,
        )
        # Copy-on-write epoch: top-level dicts are fresh, the sets/rows they
        # point to are shared until individually patched.  Block frames skip
        # the row-dict copy entirely -- rows are patched in place and the
        # frame records pre-image blocks instead.
        track_desc = self._desc_incl is not None
        if track_desc:
            self._desc_incl = dict(self._desc_incl)  # type: ignore[arg-type]
            self._desc_excl = dict(self._desc_excl)  # type: ignore[arg-type]
        if not block:
            self._lp_rows = dict(self._lp_rows)
        iid = self._interner.id

        for edge in edges:
            duplicate = self._find_duplicate(edge)
            if duplicate is not None and duplicate.latency >= edge.latency:
                continue  # no-op: the graph is untouched
            # The row from the arc's destination is identical before and
            # after the insertion (dst cannot reach src in a DAG), and it is
            # exactly the continuation every updated row needs.
            dst_id = iid(edge.dst)
            src_id = iid(edge.src)
            row_dst = self._transient_row_flat(dst_id)
            adj_fresh = self._adj_version == self._g.version
            # A re-weighted duplicate adds no ordering constraint; a new arc
            # keeps the shared topological order valid iff it already
            # respects it.
            topo_fresh = self._topo_version == self._g.version and (
                duplicate is not None
                or self._topo_pos[src_id] < self._topo_pos[dst_id]
            )
            self._g.add_edge(edge)
            if topo_fresh:
                self._topo_version = self._g.version
            # Maintain the flat adjacency through the mutation instead of
            # rebuilding it on the next row computation: the arc adds (or
            # re-weights) exactly one (dst, latency) pair.
            if adj_fresh:
                pairs = self._adj[src_id]
                if duplicate is None:
                    pairs.append((dst_id, edge.latency))
                else:
                    pairs[pairs.index((dst_id, duplicate.latency))] = (
                        dst_id,
                        edge.latency,
                    )
                self._adj_version = self._g.version

            # Longest-path rows: lp'(x, y) = max(lp(x, y), lp(x, src)+w+lp(dst, y)).
            # The reachable continuation entries are hoisted once per arc.
            w = edge.latency
            finite = flatbuf.finite_entries(row_dst)
            if block:
                # Batched push path: every dirty row under this arc goes
                # through one (rows x n) block kernel that patches in place;
                # the kernel's pre-image snapshots are the undo record.
                sids: List[int] = []
                rows: List[List[float]] = []
                shifts: List[float] = []
                for sid, row in self._lp_rows.items():
                    base = row[src_id]
                    if base == _NEG_INF:
                        continue
                    sids.append(sid)
                    rows.append(row)
                    shifts.append(base + w)
                if rows:
                    positions, cols, snaps = flatbuf.max_merge_rows(
                        rows, shifts, finite
                    )
                    if positions:
                        frame.block_patches.append(
                            ([sids[p] for p in positions], snaps)
                        )
                        for p, changed in zip(positions, cols):
                            sid = sids[p]
                            previous = frame.lp_changes.get(sid)
                            if previous is None:
                                frame.lp_changes[sid] = changed
                            else:
                                previous.extend(changed)
            else:
                # Legacy per-row path: each affected row is one whole-row
                # max-merge kernel call whose first improvement triggers one
                # memcpy-cheap copy-on-write buffer copy.
                for sid, row in list(self._lp_rows.items()):
                    base = row[src_id]
                    if base == _NEG_INF:
                        continue
                    patched, changed = flatbuf.max_merge(row, base + w, finite)
                    if patched is not None:
                        self._lp_rows[sid] = patched
                        previous = frame.lp_changes.get(sid)
                        if previous is None:
                            frame.lp_changes[sid] = changed  # type: ignore[assignment]
                        else:
                            previous.extend(changed)  # type: ignore[arg-type]

            ancestors: Optional[Set[str]] = None
            addition: Optional[FrozenSet[str]] = None
            if track_desc and duplicate is None and edge.dst not in self._desc_incl[edge.src]:
                # Reachability actually grew: every ancestor of src now also
                # reaches {dst} ∪ desc(dst).
                addition = frozenset(self._desc_incl[edge.dst])
                ancestors = self._ancestors_incl(edge.src)
                for x in ancestors:
                    current = self._desc_incl[x]
                    if not addition <= current:
                        self._desc_incl[x] = current | addition
                        self._desc_excl[x] = self._desc_excl[x] | addition
            frame.records.append(
                _AppliedArc(edge, duplicate, ancestors, addition)
            )

        self._frames.append(frame)
        self._inject()
        return frame

    def pop(self) -> None:
        """Undo the most recent :meth:`push`, restoring graph and analyses."""

        if not self._frames:
            raise IndexError("no pushed serialization frame to pop")
        frame = self._frames.pop()
        iid = self._interner.id
        for record in reversed(frame.records):
            adj_fresh = self._adj_version == self._g.version
            # Removing an arc (or restoring the duplicate it replaced, which
            # has the same endpoints) never breaks a valid topological order.
            topo_fresh = self._topo_version == self._g.version
            self._g.remove_edge(record.edge)
            if record.replaced is not None:
                self._g.add_edge(record.replaced)
            if topo_fresh:
                self._topo_version = self._g.version
            if adj_fresh:
                edge = record.edge
                pairs = self._adj[iid(edge.src)]
                dst_id = iid(edge.dst)
                if record.replaced is None:
                    pairs.remove((dst_id, edge.latency))
                else:
                    pairs[pairs.index((dst_id, edge.latency))] = (
                        dst_id,
                        record.replaced.latency,
                    )
                self._adj_version = self._g.version
        self._desc_incl = frame.desc_incl
        self._desc_excl = frame.desc_excl
        if self._block_frames:
            lp = self._lp_rows
            # Rows first cached during this epoch go before the pre-images
            # are restored: a row that was evicted and re-seeded inside the
            # same epoch is in `added_rows` *and* has a snapshot, and must
            # end as its pre-image, not deleted.
            for sid in frame.added_rows:
                lp.pop(sid, None)
            for sids, snaps in reversed(frame.block_patches):
                for sid, snap in zip(sids, snaps):
                    row = lp.get(sid)
                    if row is None:
                        lp[sid] = snap
                    else:
                        row[:] = snap
        else:
            self._lp_rows = frame.lp_rows  # type: ignore[assignment]
        self._inject()

    def _inject(self) -> None:
        """Seed the graph's fresh context epoch with the patched analyses.

        ``memo`` stores the value under the graph's *current* revision, so
        every pass querying the shared context after a push/pop sees the
        incrementally-maintained (and provably equal) maps instead of
        recomputing them.
        """

        if self._desc_incl is None:
            return
        ctx = context_for(self._g)
        desc_incl, desc_excl = self._desc_incl, self._desc_excl
        ctx.memo(("desc", True), lambda: desc_incl)
        ctx.memo(("desc", False), lambda: desc_excl)


#: Sentinel returned by `_CandidateDVState.antichain` when the DV relation
#: unexpectedly has a cycle and the generic path must decide.
_GENERIC_FALLBACK = object()


@dataclass
class _CandidateFrame:
    """Undo record of one sync() on a candidate DV state.

    One frame is appended per :meth:`_CandidateDVState.sync` call (even for
    early-returned no-ops) so the materialised frames plus the deferred
    pending pushes stay in lock-step with the owning
    :class:`IncrementalSaturation`'s push depth; popping replays it.
    """

    was_cyclic: bool
    analysis_pushed: bool = False
    engine_pushed: bool = False
    #: The pre-push killer-bits dict (copy-on-write), or None when untouched.
    bits: Optional[Dict[int, int]] = None


class _CandidateDVState:
    """The warm disjoint-value DAG of one candidate killing function.

    The Greedy-k heuristic evaluates the same few candidate labels
    (greedy-k / canonical / schedule-induced) every reduction iteration, and
    their killing functions rarely change between iterations.  For a fixed
    killing function the killed graph only gains the pushed serial arcs, so
    its longest paths -- and therefore the DV-DAG edges, which are threshold
    tests on those paths -- grow monotonically.  This state keeps the killed
    graph alive as an :class:`IncrementalAnalysis` mirror and stores the DV
    relation as one bitset per killer; a push only rechecks the (killer,
    value) pairs whose longest-path entry actually moved (reported by the
    mirror's patch log).

    All per-op state is keyed by the op ids of the *bottom mirror's*
    interner (shared with the killed mirror -- a copy of the bottom graph
    interns identically, see :class:`~repro.analysis.interner.OpInterner`),
    so the lp → DV-bit threshold scans and the
    :class:`~repro.analysis.antichain.PersistentAntichain` feed run entirely
    in id/bitset space with no string translation.

    Base-graph pushes are mirrored *lazily*: :meth:`defer_sync` queues the
    arcs and :meth:`ensure_synced` replays them in order only when the
    candidate is actually evaluated (or must be patched); a state that is
    instead rebuilt -- or popped before evaluation -- never pays for the
    mirror push at all (counted as ``dv_syncs_skipped``).  Each performed
    sync opens an undo frame (killed-mirror push, engine push, copy-on-write
    killer bits), so the state also survives the owning session's pop
    instead of being discarded and rebuilt.

    The DV condition ``lp(k(u), v) >= delta_r(k(u)) - delta_w(v)`` depends
    on ``u`` only through its killer, so values sharing a killer share the
    killer's bitset (minus their own bit).
    """

    def __init__(
        self,
        values: Tuple[Value, ...],
        node_index: Mapping[str, int],
        delta_w: Mapping[int, int],
        stats: Optional[MutableMapping[str, int]] = None,
    ) -> None:
        self._values = values
        self._node_index = node_index
        self._delta_w = delta_w
        #: delta_w as a flat list over value indices (the hot threshold scan).
        self._dw: List[int] = [delta_w[i] for i in range(len(values))]
        #: Backend handle over (value op ids, delta_w) for the threshold
        #: kernel; built on first use after rebuild() fills _value_opid.
        self._threshold_prep = None
        self._stats = stats
        self.valid = False
        self.cyclic = False
        self.kf_mapping: Optional[Dict[Value, str]] = None
        self._pk_ref: Optional[Mapping[Value, List[str]]] = None
        self._pk_lists: Dict[Value, List[str]] = {}
        self.analysis: Optional[IncrementalAnalysis] = None
        self._interner: Optional[OpInterner] = None
        #: op id -> value index (or -1), and its inverse over value indices.
        self._opid_value: List[int] = []
        self._value_opid: List[int] = []
        self._killer_read: Dict[int, int] = {}
        self._killer_bits: Dict[int, int] = {}
        self._killer_of: List[Optional[int]] = []
        self._killer_values: Dict[int, List[int]] = {}
        #: (other id, killer id) -> number of values contributing that
        #: killing arc.  The arc's latency is a pure function of the pair,
        #: so the count is all the patch path needs to merge/unmerge the
        #: killed graph's serial slots exactly like `killed_graph`'s
        #: add_edge calls did.
        self._arc_refs: Dict[Tuple[int, int], int] = {}
        self._engine: Optional[PersistentAntichain] = None
        self._sync_frames: List[_CandidateFrame] = []
        #: Deferred base-graph pushes not yet mirrored (newest last; always
        #: newer than every materialised sync frame).
        self._pending: List[List[Edge]] = []
        self.rebuild_count = 0

    @staticmethod
    def _killing_arc_refs(
        kf, pk: Mapping[Value, List[str]], op_id: Callable[[str], int]
    ) -> Dict[Tuple[int, int], int]:
        """Refcounted (other, killer) id slots exactly as `killed_graph` adds them."""

        from .pkill import killing_arc_slots  # local: avoids import cycle

        refs: Dict[Tuple[int, int], int] = {}
        for other, killer in killing_arc_slots(kf, pk):
            slot = (op_id(other), op_id(killer))
            refs[slot] = refs.get(slot, 0) + 1
        return refs

    def _note_skipped(self, count: int) -> None:
        if count and self._stats is not None:
            self._stats["dv_syncs_skipped"] = (
                self._stats.get("dv_syncs_skipped", 0) + count
            )

    def defer_sync(self, edges: List[Edge]) -> None:
        """Queue a base-graph push to be mirrored on first evaluation."""

        self._pending.append(edges)

    def ensure_synced(self) -> None:
        """Replay the deferred pushes (in order) through :meth:`sync`."""

        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for edges in pending:
            self.sync(edges)

    @property
    def patchable(self) -> bool:
        """Whether :meth:`patch` has a warm prior state to re-target."""

        return self.valid and not self.cyclic and self.analysis is not None

    def matches(self, kf, pk: Mapping[Value, List[str]]) -> bool:
        """Whether the stored state is exactly this killing function's.

        The killed graph's arcs depend on the killing function *and* on the
        potential-killers lists of its values (the arcs come from the other
        potential killers), so both must be unchanged for reuse.  Deferred
        syncs do not matter here: they carry graph arcs, not killing-choice
        state.
        """

        if not self.valid or self.kf_mapping != kf.mapping:
            return False
        if pk is self._pk_ref:
            return True
        for value, killers in self._pk_lists.items():
            current = pk.get(value, [])
            if current is not killers and current != killers:
                return False
        return True

    def rebuild(self, bottom_ddg: DDG, kf, pk: Mapping[Value, List[str]]) -> None:
        from .pkill import killed_graph  # local: avoids import cycle

        self.rebuild_count += 1
        self._sync_frames = []
        # A rebuild bakes the base graph's current arcs into the fresh
        # killed copy, so any still-deferred mirror pushes are moot.
        self._note_skipped(len(self._pending))
        self._pending = []
        self.kf_mapping = dict(kf.mapping)
        self._pk_ref = pk
        self._pk_lists = {value: pk.get(value, []) for value in kf.mapping}
        interner = context_for(bottom_ddg).op_interner()
        self._interner = interner
        op_id = interner.id
        self._arc_refs = self._killing_arc_refs(kf, pk, op_id)
        killed = killed_graph(bottom_ddg, kf, pk=pk)
        if not context_for(killed).is_acyclic():
            # An invalid killing function stays invalid: cycles survive
            # every further arc addition, so this is cached until the
            # killing function itself changes.
            self.cyclic = True
            self.analysis = None
            self._engine = None
            self.valid = True
            return
        self.cyclic = False
        # Reachability tracking is skipped: the sync's cycle test reads the
        # arcs' target row instead of a descendant map.  The killed graph is
        # a copy of the bottom mirror, so interning it into the mirror's
        # interner changes nothing and the flat rows share the id space.
        self.analysis = IncrementalAnalysis(
            killed, track_reachability=False, interner=interner
        )
        opid_value = [-1] * interner.size
        value_opid: List[int] = []
        for j, v in enumerate(self._values):
            vid = op_id(v.node)
            value_opid.append(vid)
            opid_value[vid] = j
        self._opid_value = opid_value
        self._value_opid = value_opid
        self._threshold_prep = flatbuf.prepare_values(
            value_opid, self._dw, n=interner.size
        )
        self._set_killer_structures(kf, killed)
        # Seeding every killer row here is what makes the sync exact: the
        # mirror patches cached rows and logs each change.  All cold rows
        # are relaxed together in one multi-source pass.
        killer_ids = sorted(self._killer_read)
        rows = self.analysis.rows_multi(killer_ids)
        self._killer_bits = {
            kid: self._mask_from_row(row, self._killer_read[kid])
            for kid, row in zip(killer_ids, rows)
        }
        self._engine = PersistentAntichain(len(self._values), rows=self.dv_rows())
        self.valid = True

    def _set_killer_structures(self, kf, killed: DDG) -> None:
        """(Re)derive killer assignment maps from *kf* (cheap, O(values))."""

        assert self._interner is not None
        op_id = self._interner.id
        killer_of: List[Optional[int]] = [None] * len(self._values)
        self._killer_values = {}
        for j, v in enumerate(self._values):
            killer = kf.mapping.get(v)
            if killer is None:
                continue
            kid = op_id(killer)
            killer_of[j] = kid
            self._killer_values.setdefault(kid, []).append(j)
        self._killer_of = killer_of
        self._killer_read = {
            op_id(k): killed.operation(k).delta_r for k in set(kf.mapping.values())
        }

    def _mask_from_row(self, row: List[float], read: int) -> int:
        """The killer's DV bitset from its flat longest-path row (threshold test)."""

        prep = self._threshold_prep
        if prep is None:
            assert self._interner is not None
            prep = self._threshold_prep = flatbuf.prepare_values(
                self._value_opid, self._dw, n=self._interner.size
            )
        return flatbuf.threshold_mask(row, prep, read)

    def patch(self, bottom_ddg: DDG, kf, pk: Mapping[Value, List[str]]) -> bool:
        """Re-target the warm state onto a new killing function by patching.

        The from-scratch alternative (:meth:`rebuild`) copies the whole
        bottom graph, re-adds every killing arc, and re-seeds every killer's
        longest-path row and the antichain engine.  Between consecutive
        reduction iterations, however, the killing function of a candidate
        label changes for only a handful of values (the ones in components
        touched by the last serialization), so this method instead:

        * diffs the refcounted killing-arc slots and rewrites exactly the
          killed-graph serial slots whose merged latency moved (re-merging
          against the bottom mirror's own arc, which `killed_graph`'s
          add_edge would have max-merged the same way);
        * keeps every cached killer row (and its DV bitset) that provably
          cannot see a changed slot -- a cached row reaches no changed arc's
          source (``row[src] is -inf``) in the old graph, and by induction
          on the first changed arc of any new path, none in the new graph
          either -- and re-seeds only the rest;
        * feeds the engine through its monotone-insertion path when the DV
          rows only grew, keeping the repaired matching warm, and re-seeds
          it (a new trace segment) only on a genuine shrink.

        Like :meth:`rebuild` this invalidates the sync-frame history (the
        patch is not undoable), so a later owner pop discards the state.
        Returns False when there is no patchable prior state (never built,
        or the previous killing function was cyclic) -- callers fall back to
        a full rebuild.  The result is pinned byte-identical to a rebuild by
        ``tests/test_incremental_candidates.py``.
        """

        if not self.valid or self.cyclic or self.analysis is None:
            return False
        # The slot diff below compares against the *current* bottom mirror,
        # so any still-deferred base pushes must be mirrored first (the
        # owner normally drains them before calling; this is a no-op then).
        self.ensure_synced()
        if self.cyclic or self.analysis is None:
            return False
        killed = self.analysis.ddg
        assert self._interner is not None
        interner = self._interner
        name_of = interner.name
        new_refs = self._killing_arc_refs(kf, pk, interner.id)
        old_refs = self._arc_refs
        changed_sources: List[int] = []
        grew = False
        for slot in old_refs.keys() | new_refs.keys():
            has = slot in new_refs
            if (slot in old_refs) == has:
                continue
            src, dst = name_of(slot[0]), name_of(slot[1])
            # The merged serial slot: the bottom mirror's own arc (base
            # graph, bottom normalisation, or pushed serialization arcs)
            # max-merged with the killing arc while it is contributed.
            base: Optional[int] = None
            for e in bottom_ddg.edges_between(src, dst):
                if e.kind is DependenceKind.SERIAL and e.rtype is None:
                    base = e.latency if base is None else max(base, e.latency)
            desired: Optional[int] = base
            if has:
                kill_lat = killed.operation(src).delta_r - killed.operation(dst).delta_r
                desired = kill_lat if base is None else max(kill_lat, base)
            current: Optional[int] = None
            current_edge: Optional[Edge] = None
            for e in killed.edges_between(src, dst):
                if e.kind is DependenceKind.SERIAL and e.rtype is None:
                    current, current_edge = e.latency, e
            if desired == current:
                continue  # the merged slot is unchanged; nothing to patch
            if current_edge is not None:
                killed.remove_edge(current_edge)
            if desired is not None:
                killed.add_edge(Edge(src, dst, desired, DependenceKind.SERIAL, None))
                if current is None:
                    grew = True
            changed_sources.append(slot[0])

        self.kf_mapping = dict(kf.mapping)
        self._pk_ref = pk
        self._pk_lists = {value: pk.get(value, []) for value in kf.mapping}
        self._arc_refs = new_refs
        self._sync_frames = []
        self.analysis.rebase()

        if grew and not context_for(killed).is_acyclic():
            # The new killing function is invalid; cache that verdict like
            # rebuild does (it survives further arc additions) and drop the
            # warm machinery -- a later change of function must rebuild.
            self.cyclic = True
            self.analysis = None
            self._engine = None
            return True

        old_rows = self.dv_rows()
        old_bits = self._killer_bits
        self._set_killer_structures(kf, killed)
        analysis = self.analysis
        bits: Dict[int, int] = {}
        # Phase 1: per killer, decide reuse / evict-and-reseed / seed.  A
        # cached row is kept iff it provably cannot see a changed slot (it
        # reaches no changed arc's source in the old graph, and by induction
        # on the first changed arc of any new path, none in the new graph
        # either).  Stale rows are evicted now so phase 2's one multi-source
        # pass recomputes every needed row together.
        killer_ids = sorted(self._killer_read)
        reseed: List[int] = []
        for killer_id in killer_ids:
            row = analysis._lp_rows.get(killer_id)
            row_ok = row is not None and all(
                row[s] == _NEG_INF for s in changed_sources
            )
            if row_ok:
                previous = old_bits.get(killer_id)
                if previous is not None:
                    bits[killer_id] = previous
                    continue
            elif row is not None:
                analysis.evict_row_id(killer_id)
            reseed.append(killer_id)
        # Phase 2: batch-seed the cold killer rows, then threshold them.
        if reseed:
            rows = analysis.rows_multi(reseed)
            for killer_id, row in zip(reseed, rows):
                bits[killer_id] = self._mask_from_row(
                    row, self._killer_read[killer_id]
                )
        bits = {kid: bits[kid] for kid in killer_ids}
        for killer_id in old_bits:
            if killer_id not in bits:
                analysis.evict_row_id(killer_id)
        self._killer_bits = bits

        new_rows = self.dv_rows()
        engine = self._engine
        if engine is not None and not engine.cyclic and all(
            not (old & ~new) for old, new in zip(old_rows, new_rows)
        ):
            # Monotone growth: the running closure and the repaired matching
            # stay valid; insert only the new DV pairs.
            engine.clear_frames()
            for i, (new, old) in enumerate(zip(new_rows, old_rows)):
                added = new & ~old
                if added:
                    engine.insert_mask(i, added)
        else:
            self._engine = PersistentAntichain(len(self._values), rows=new_rows)
            # A shrink starts a new monotone segment of the DV-row trace
            # (the kernel benchmark replays segments through the engine).
            self.rebuild_count += 1
            if self._stats is not None:
                self._stats["dv_engine_reseeds"] = (
                    self._stats.get("dv_engine_reseeds", 0) + 1
                )
        return True

    def dv_rows(self) -> List[int]:
        """The current DV relation as per-value successor bitsets."""

        killer_bits = self._killer_bits
        return [
            0 if killer is None else killer_bits[killer] & ~(1 << i)
            for i, killer in enumerate(self._killer_of)
        ]

    def sync(self, edges) -> None:
        """Mirror a push of the base graph; recheck only the moved lp entries.

        Every call -- including the early-returned no-ops -- appends one
        undo frame, keeping the frame stack (plus the deferred queue)
        aligned with the owning session's push depth so :meth:`pop_frame`
        can replay it exactly.
        """

        frame = _CandidateFrame(was_cyclic=self.cyclic)
        self._sync_frames.append(frame)
        if not self.valid or self.cyclic or self.analysis is None:
            return
        analysis = self.analysis
        op_id = analysis.op_id
        targets = {e.dst for e in edges}
        if len(targets) == 1:
            # Serialization arcs of one candidate share their destination, so
            # a new cycle in the killed graph must be a base path from the
            # target back to a source; one longest-path row answers that.
            (target,) = targets
            row = analysis._transient_row_flat(op_id(target))
            if any(row[op_id(e.src)] != _NEG_INF for e in edges):
                self.cyclic = True
                return
        elif not analysis.remains_acyclic_with_edges(edges):
            self.cyclic = True
            return
        analysis_frame = analysis.push(edges)
        frame.analysis_pushed = True
        engine = self._engine
        if engine is not None:
            engine.push()
            frame.engine_pushed = True
        bits_changed = False
        opid_value = self._opid_value
        dw = self._dw
        killer_bits = self._killer_bits
        for sid, moved in analysis_frame.lp_changes.items():
            read = self._killer_read.get(sid)
            if read is None:
                continue
            row = analysis.row(sid)
            mask = killer_bits[sid]
            for y in moved:
                j = opid_value[y]
                if j >= 0 and row[y] >= read - dw[j]:
                    mask |= 1 << j
            added = mask & ~killer_bits[sid]
            if not added:
                continue
            if not bits_changed:
                # Copy-on-write: the pre-push dict goes to the frame, every
                # untouched mask stays shared with the previous iteration.
                frame.bits = killer_bits
                killer_bits = self._killer_bits = dict(killer_bits)
                bits_changed = True
            killer_bits[sid] = mask
            if engine is not None:
                # New DV arcs i -> j for every value i killed by src and
                # every newly reached value j; the engine patches its
                # running closure and marks the matching for repair.
                for i in self._killer_values.get(sid, ()):
                    engine.insert_mask(i, added & ~(1 << i))

    def pop_frame(self) -> bool:
        """Undo the most recent base push's effect; False when none remain.

        A still-deferred push is simply dropped from the queue (it was never
        mirrored -- that is the lazy win, counted as skipped); a materialised
        frame is replayed.  A False return means the state was rebuilt
        *after* the push being undone, so its killed mirror has the popped
        arcs baked in rather than framed -- the caller must discard the
        state.
        """

        if self._pending:
            self._pending.pop()
            self._note_skipped(1)
            return True
        if not self._sync_frames:
            return False
        frame = self._sync_frames.pop()
        if frame.engine_pushed and self._engine is not None:
            self._engine.pop()
        if frame.analysis_pushed and self.analysis is not None:
            self.analysis.pop()
        if frame.bits is not None:
            self._killer_bits = frame.bits
        self.cyclic = frame.was_cyclic
        return True

    def antichain(self):
        """The maximum DV antichain, or the generic-fallback sentinel.

        Identical to ``saturating_antichain`` on the same killed graph: the
        persistent engine's running closure has the same content as the
        pair-set closure, and the Koenig sets it extracts are invariant
        across maximum matchings (see
        :class:`~repro.analysis.antichain.PersistentAntichain`), so the
        repaired matching reports the same antichain the from-scratch
        matching would.
        """

        engine = self._engine
        if engine is None:
            return _GENERIC_FALLBACK
        indices = engine.antichain_indices()
        if indices is None:
            # A cycle in the DV relation (possible only in exotic
            # negative-latency configurations) defers to the generic path.
            return _GENERIC_FALLBACK
        values = self._values
        return [values[i] for i in indices]

    def antichain_from_scratch(self):
        """The PR-2 per-call pipeline on the current DV rows (reference path)."""

        indices = antichain_indices_from_rows(self.dv_rows())
        if indices is None:
            return _GENERIC_FALLBACK
        values = self._values
        return [values[i] for i in indices]


class IncrementalSaturation:
    """Greedy-k saturation state kept warm across serialization pushes.

    Owns the bottom-normalised mirror of a working graph (built once and
    mutated in lock-step, instead of re-deriving ``G ∪ {⊥}`` per iteration)
    plus the saturation-specific analyses: the potential-killers map, the
    killers' descendant-value sets, a cross-iteration cache of killing sets
    keyed by bipartite-component signature (with an identity-validated
    per-component fast path, see ``signature_cache``), one warm
    :class:`_CandidateDVState` per Greedy-k candidate label (synced lazily
    on evaluation, re-targeted by :meth:`_CandidateDVState.patch` when its
    killing function drifts, rebuilt only from cold or cyclic states), and
    the keep-alive candidate's warm list schedule
    (:class:`~repro.scheduling.list_scheduler.IncrementalListSchedule`,
    repaired downstream-only per push and injected into the mirror context
    under the ``("keep_alive_schedule", rtype)`` memo the from-scratch
    scheduler also uses).  After every push only the dirty region --
    values/killers reachable from the new arcs' endpoints -- is recomputed;
    the rest is shared with the previous iteration.  ``stats`` counts the
    warm-path hits and ``timings`` accumulates monotonic per-stage wall
    clock, both surfaced in ``ReductionResult.details["engine_stats"]``.
    """

    def __init__(self, analysis: IncrementalAnalysis, rtype: RegisterType | str) -> None:
        self.rtype = canonical_type(rtype)
        self._working = analysis
        g = analysis.ddg
        if g.has_bottom:
            self._mirror = analysis
        else:
            self._mirror = IncrementalAnalysis(g.with_bottom())
        self._pk: Optional[Dict[Value, List[str]]] = None
        self._cons: Dict[Value, Tuple[str, ...]] = {}
        self._value_nodes: Set[str] = set()
        self._kdv: Optional[Dict[str, FrozenSet[str]]] = None
        self._frames: List[Tuple[object, object]] = []
        #: Component-signature -> chosen killing set; survives graph epochs
        #: because identical components provably yield identical choices.
        self.killing_set_cache: MutableMapping = {}
        #: Per-component identity-validated front cache for the above
        #: (killer-tuple keyed; validated by object identity of the pk rows
        #: and killer-descendant sets, which the copy-on-write maintenance
        #: preserves for untouched components).  See `greedy._choose_cached`.
        self.signature_cache: Dict = {}
        from .greedy import ComponentCache  # local: avoids import cycle

        #: Cross-iteration bipartite-component decomposition, repaired per
        #: push from the pk rows' object identity instead of rebuilt (see
        #: :class:`~repro.saturation.greedy.ComponentCache`); surfaces
        #: ``components_reused`` / the ``greedy_decompose`` timer below.
        self.component_cache = ComponentCache()
        mirror = self._mirror.ddg
        self._values: Tuple[Value, ...] = tuple(sorted(mirror.values(self.rtype)))
        self._node_index: Dict[str, int] = {
            v.node: i for i, v in enumerate(self._values)
        }
        self._delta_w: Dict[int, int] = {
            i: mirror.operation(v.node).delta_w for i, v in enumerate(self._values)
        }
        self._candidate_states: Dict[str, _CandidateDVState] = {}
        self._keep_alive: Optional[IncrementalListSchedule] = None
        self.stats: Dict[str, int] = {
            "dv_rebuilds": 0,
            "dv_reuses": 0,
            "dv_patches": 0,
            "dv_engine_reseeds": 0,
            "dv_syncs_skipped": 0,
            "schedule_repairs": 0,
            "components_reused": 0,
        }
        #: Monotonic per-stage wall-clock accumulators (seconds), keyed by
        #: engine stage.  The benchmark's bottleneck profile reads these, so
        #: time is attributed to the stage that spent it rather than to
        #: whichever caller happened to trigger the computation.
        self.timings: Dict[str, float] = {
            "dv_rebuild": 0.0,
            "dv_patch": 0.0,
            "dv_antichain": 0.0,
            "candidate_sync": 0.0,
            "analysis_push": 0.0,
            "keep_alive_build": 0.0,
            "keep_alive_repair": 0.0,
            "greedy_decompose": 0.0,
        }

    @property
    def working_ddg(self) -> DDG:
        return self._working.ddg

    @property
    def mirror_ddg(self) -> DDG:
        return self._mirror.ddg

    # ------------------------------------------------------------------ #
    # Saturation-state maintenance
    # ------------------------------------------------------------------ #
    def _ensure_pk(self) -> None:
        if self._pk is not None:
            return
        from .pkill import potential_killers_map  # local: avoids import cycle

        mirror = self._mirror.ddg
        mctx = context_for(mirror)
        self._pk = potential_killers_map(mirror, self.rtype, mctx)
        self._cons = {
            value: tuple(mirror.consumers(value.node, self.rtype))
            for value in self._pk
        }
        self._value_nodes = {v.node for v in self._pk}
        desc_excl = self._mirror.descendants_excl()
        self._kdv = {
            killer: frozenset(desc_excl[killer] & self._value_nodes)
            for killers in self._pk.values()
            for killer in killers
        }

    def _update_after_push(self, records: List[_AppliedArc]) -> None:
        from .pkill import potential_killers  # local: avoids import cycle

        assert self._pk is not None and self._kdv is not None
        pk_old = self._pk
        changed_nodes: Set[str] = set()
        dirty: Set[Value] = set()
        for record in records:
            if record.addition is None or record.ancestors is None:
                continue
            changed_nodes |= record.ancestors
            ancestors, addition = record.ancestors, record.addition
            for value, killers in pk_old.items():
                if value in dirty or not killers:
                    continue
                # pkill(u) can only lose a killer k when k (an ancestor of
                # the arc's source) newly reaches another consumer of u.
                if any(k in ancestors for k in killers) and any(
                    c in addition for c in self._cons[value]
                ):
                    dirty.add(value)
        if not changed_nodes:
            return

        mirror = self._mirror.ddg
        desc_incl = self._mirror.descendants_incl()
        if dirty:
            pk_new = dict(pk_old)
            for value in dirty:
                pk_new[value] = potential_killers(
                    mirror, value, desc_incl, consumers=self._cons[value]
                )
            self._pk = pk_new

        desc_excl = self._mirror.descendants_excl()
        kdv_old, kdv_new = self._kdv, {}
        for killers in self._pk.values():
            for killer in killers:
                if killer in kdv_new:
                    continue
                previous = kdv_old.get(killer)
                if previous is not None and killer not in changed_nodes:
                    kdv_new[killer] = previous
                else:
                    kdv_new[killer] = frozenset(desc_excl[killer] & self._value_nodes)
        self._kdv = kdv_new

    # ------------------------------------------------------------------ #
    # Push / pop / query
    # ------------------------------------------------------------------ #
    def push(self, edges) -> None:
        edges = list(edges)
        self._ensure_pk()
        self._frames.append((self._pk, self._kdv))
        t0 = time.perf_counter()
        self._working.push(edges)
        if self._mirror is not self._working:
            frame = self._mirror.push(edges)
        else:
            frame = self._working._frames[-1]
        self._update_after_push(frame.records)
        self.timings["analysis_push"] += time.perf_counter() - t0
        # Candidate killed mirrors are synced lazily: the push is queued
        # here (O(1)) and mirrored only if/when the candidate is evaluated;
        # see _CandidateDVState.defer_sync.
        for state in self._candidate_states.values():
            state.defer_sync(edges)
        if self._keep_alive is not None:
            self._keep_alive.push()
            dirty = {record.edge.dst for record in frame.records}
            if dirty:
                t0 = time.perf_counter()
                self._keep_alive.reschedule(dirty, ctx=context_for(self._mirror.ddg))
                self.stats["schedule_repairs"] += 1
                self.timings["keep_alive_repair"] += time.perf_counter() - t0
        self._inject()

    def pop(self) -> None:
        if not self._frames:
            raise IndexError("no pushed serialization frame to pop")
        pk, kdv = self._frames.pop()
        self._working.pop()
        if self._mirror is not self._working:
            self._mirror.pop()
        self._pk = pk  # type: ignore[assignment]
        self._kdv = kdv  # type: ignore[assignment]
        # Candidate DV states replay their per-push undo frame (killed
        # mirror, killer bits, persistent antichain engine) or just drop the
        # still-deferred push; a state rebuilt or patched deeper than the
        # restored depth has the popped arcs baked into its killed graph and
        # must be discarded instead.
        dead = [
            label
            for label, state in self._candidate_states.items()
            if not state.pop_frame()
        ]
        for label in dead:
            del self._candidate_states[label]
        # The keep-alive schedule follows the same protocol: a state built
        # mid-stack has the popped arcs baked into its baseline.
        if self._keep_alive is not None and not self._keep_alive.pop():
            self._keep_alive = None
        self._inject()

    def _inject(self) -> None:
        mctx = context_for(self._mirror.ddg)
        if self._pk is not None:
            pk, kdv = self._pk, self._kdv
            mctx.memo(("pkill", self.rtype), lambda: pk)
            mctx.memo(("killer_desc_values", self.rtype), lambda: kdv)
        if self._keep_alive is not None:
            schedule = self._keep_alive.schedule()
            mctx.memo(("keep_alive_schedule", self.rtype), lambda: schedule)
        if self._mirror is not self._working:
            wctx = context_for(self._working.ddg)
            wctx.memo("bottom", lambda: mctx)

    def _ensure_keep_alive(self) -> None:
        """Build the warm keep-alive schedule state on first use.

        The from-scratch reference (`greedy._keep_alive_schedule_uncached`)
        list-schedules the bottom mirror with a lifetime-stretching
        priority; under unlimited resources that schedule is the unique
        earliest fixpoint regardless of the priority (see
        :class:`~repro.scheduling.list_scheduler.IncrementalListSchedule`),
        which is what makes the repaired schedule byte-identical.
        """

        if self._keep_alive is None:
            t0 = time.perf_counter()
            self._keep_alive = IncrementalListSchedule(
                self._mirror.ddg, ctx=context_for(self._mirror.ddg)
            )
            self.timings["keep_alive_build"] += time.perf_counter() - t0

    def candidate_antichain(self, label: str, kf) -> Optional[List[Value]]:
        """Warm evaluation of one Greedy-k candidate killing function.

        Returns the maximum DV antichain -- provably equal to
        ``saturating_antichain`` on a freshly built killed graph -- or None
        when the killing function is invalid (cyclic killed graph), which is
        exactly the generic loop's skip condition.
        """

        self._ensure_pk()
        assert self._pk is not None
        state = self._candidate_states.get(label)
        if state is None:
            state = _CandidateDVState(
                self._values, self._node_index, self._delta_w, stats=self.stats
            )
            self._candidate_states[label] = state
        matched = state.matches(kf, self._pk)
        if matched or state.patchable:
            # The deferred base pushes are mirrored only now that the state
            # is actually evaluated (reused or patched); a state headed for
            # a rebuild drops them inside rebuild() instead.
            t0 = time.perf_counter()
            state.ensure_synced()
            self.timings["candidate_sync"] += time.perf_counter() - t0
        if matched:
            self.stats["dv_reuses"] += 1
        else:
            t0 = time.perf_counter()
            if state.patch(self._mirror.ddg, kf, self._pk):
                self.stats["dv_patches"] += 1
                self.timings["dv_patch"] += time.perf_counter() - t0
            else:
                state.rebuild(self._mirror.ddg, kf, self._pk)
                self.stats["dv_rebuilds"] += 1
                self.timings["dv_rebuild"] += time.perf_counter() - t0
        if state.cyclic:
            return None
        t0 = time.perf_counter()
        result = state.antichain()
        self.timings["dv_antichain"] += time.perf_counter() - t0
        if result is _GENERIC_FALLBACK:  # pragma: no cover - exotic latencies
            from .dvk import saturating_antichain

            assert state.analysis is not None
            antichain, _ = saturating_antichain(
                self._mirror.ddg, kf, killed=state.analysis.ddg
            )
            return antichain
        return result

    def saturation(self) -> SaturationResult:
        """Greedy-k of the working graph, identical to a from-scratch run."""

        from .greedy import greedy_saturation  # local: avoids import cycle

        self._ensure_keep_alive()
        self._inject()
        cache = self.component_cache
        result = greedy_saturation(
            self._working.ddg,
            self.rtype,
            ctx=context_for(self._working.ddg),
            killing_set_cache=self.killing_set_cache,
            candidate_evaluator=self.candidate_antichain,
            signature_cache=self.signature_cache,
            component_cache=cache,
        )
        # The cache's own accumulators are the source of truth (decompose
        # runs inside greedy_killing_function); both are monotone, so the
        # assignment keeps the stats/timings contract.
        self.stats["components_reused"] = cache.reused
        self.timings["greedy_decompose"] = cache.seconds
        return result
