"""Register saturation: computing the maximal register need over all schedules.

This package implements the paper's central concept.  Public entry points:

* :func:`compute_saturation` -- dispatch between the Greedy-k heuristic and
  the exact intLP of Section 3;
* :func:`greedy_saturation` -- the nearly-optimal heuristic evaluated in
  Section 5;
* :func:`exact_saturation` -- the exact intLP (O(n^2) variables,
  O(m + n^2) constraints);
* the building blocks: potential killers, killing functions, killed graphs,
  disjoint-value DAGs, bounds, and the brute-force oracles used by the
  tests.
"""

from __future__ import annotations

from typing import Optional

from ..core.graph import DDG
from ..core.types import RegisterType, canonical_type
from .bounds import SaturationBounds, saturation_bounds, trivially_within_budget
from .dvk import DisjointValueDAG, disjoint_value_dag, saturating_antichain
from .enumeration import (
    saturation_by_killing_enumeration,
    saturation_by_schedule_enumeration,
)
from .exact_ilp import RSModelInfo, build_rs_program, exact_saturation, never_simultaneously_alive
from .greedy import greedy_killing_function, greedy_saturation
from .incremental import IncrementalAnalysis, IncrementalSaturation
from .pkill import (
    KillingFunction,
    canonical_killing_function,
    enumerate_killing_functions,
    killed_graph,
    killing_function_from_schedule,
    potential_killers,
    potential_killers_map,
)
from .result import SaturationResult

__all__ = [
    "SaturationResult",
    "SaturationBounds",
    "saturation_bounds",
    "trivially_within_budget",
    "DisjointValueDAG",
    "disjoint_value_dag",
    "saturating_antichain",
    "KillingFunction",
    "potential_killers",
    "potential_killers_map",
    "killed_graph",
    "killing_function_from_schedule",
    "canonical_killing_function",
    "enumerate_killing_functions",
    "greedy_saturation",
    "greedy_killing_function",
    "IncrementalAnalysis",
    "IncrementalSaturation",
    "exact_saturation",
    "build_rs_program",
    "RSModelInfo",
    "never_simultaneously_alive",
    "saturation_by_schedule_enumeration",
    "saturation_by_killing_enumeration",
    "compute_saturation",
]


def compute_saturation(
    ddg: DDG,
    rtype: RegisterType | str,
    method: str = "greedy",
    time_limit: Optional[float] = None,
) -> SaturationResult:
    """Compute (or approximate) the register saturation of *rtype*.

    ``method`` is one of ``"greedy"`` (the Greedy-k heuristic, default),
    ``"exact"`` (the Section-3 intLP), ``"schedule-enum"`` or
    ``"killing-enum"`` (brute-force oracles for small graphs).
    """

    rtype = canonical_type(rtype)
    if method == "greedy":
        return greedy_saturation(ddg, rtype)
    if method == "exact":
        return exact_saturation(ddg, rtype, time_limit=time_limit)
    if method == "schedule-enum":
        return saturation_by_schedule_enumeration(ddg, rtype)
    if method == "killing-enum":
        return saturation_by_killing_enumeration(ddg, rtype)
    raise ValueError(
        f"unknown saturation method {method!r}; expected greedy/exact/schedule-enum/killing-enum"
    )
