"""Potential killers and killing functions.

These notions come from the register-saturation framework the paper builds
on (its reference [14], "Register Saturation in Superscalar and VLIW
Codes"): the *killer* of a value is the consumer whose read terminates the
value's lifetime.  Not every consumer can be last: a consumer that reaches
another consumer of the same value through a dependence path always reads
no later than that other consumer, so it can never be the (strict) last
reader.  The remaining candidates are the *potential killers*::

    pkill(u^t) = { v in Cons(u^t) |  ↓v  ∩ Cons(u^t) = {v} }

A *killing function* ``k`` chooses one potential killer per value.  Forcing
the choice in the graph -- adding serial arcs from the other potential
killers towards ``k(u)`` -- yields the *killed graph* ``G->k``; when that
graph is schedulable the killing function is *valid* and the values that can
be simultaneously alive under it are characterised by the disjoint-value DAG
(:mod:`repro.saturation.dvk`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.context import AnalysisContext, context_for
from ..core.graph import DDG, Edge
from ..core.schedule import Schedule
from ..core.types import DependenceKind, RegisterType, Value, canonical_type
from ..errors import KillingFunctionError

__all__ = [
    "potential_killers",
    "potential_killers_map",
    "KillingFunction",
    "killing_arc_slots",
    "killed_graph",
    "killing_function_from_schedule",
    "enumerate_killing_functions",
    "canonical_killing_function",
]


def potential_killers(
    ddg: DDG,
    value: Value,
    desc: Optional[Mapping[str, Set[str]]] = None,
    consumers: Optional[Sequence[str]] = None,
) -> List[str]:
    """The potential killers ``pkill(u^t)`` of *value*.

    A consumer ``v`` is a potential killer iff no *other* consumer of the
    value is reachable from ``v`` (``↓v ∩ Cons(u^t) = {v}``).  *desc* and
    *consumers* accept precomputed state (the incremental saturation engine
    keeps both warm across reduction iterations); when given, *consumers*
    must equal ``ddg.consumers(value.node, value.rtype)``.
    """

    if consumers is None:
        consumers = ddg.consumers(value.node, value.rtype)
    if desc is None:
        desc = context_for(ddg).descendants_map(include_self=True)
    cons_set = set(consumers)
    out = []
    for v in consumers:
        if (desc[v] & cons_set) == {v}:
            out.append(v)
    return out


def potential_killers_map(
    ddg: DDG,
    rtype: RegisterType | str,
    ctx: Optional[AnalysisContext] = None,
) -> Dict[Value, List[str]]:
    """``pkill`` for every value of type *rtype* (single reachability sweep).

    The map is memoized on the graph's shared
    :class:`~repro.analysis.context.AnalysisContext`: the Greedy-k heuristic
    rebuilds it for every candidate killing function, and before the context
    existed that dominated its runtime.
    """

    rtype = canonical_type(rtype)
    ctx = ctx if ctx is not None else context_for(ddg)

    def compute() -> Dict[Value, List[str]]:
        desc = ctx.descendants_map(include_self=True)
        return {
            value: potential_killers(ddg, value, desc) for value in ddg.values(rtype)
        }

    return ctx.memo(("pkill", rtype), compute)


@dataclass(frozen=True)
class KillingFunction:
    """A choice of one potential killer per value of a given register type.

    Values that have no consumer at all (possible when the DDG has not been
    normalised with the bottom node) are simply absent from the mapping:
    they die where they are born and never constrain other values.
    """

    rtype: RegisterType
    mapping: Mapping[Value, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "mapping", dict(self.mapping))

    def __getitem__(self, value: Value) -> str:
        return self.mapping[value]

    def __contains__(self, value: Value) -> bool:
        return value in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def items(self):
        return self.mapping.items()

    def killer(self, value: Value) -> Optional[str]:
        return self.mapping.get(value)

    def validate(self, ddg: DDG) -> None:
        """Check that every killer is a potential killer of its value.

        Raises :class:`~repro.errors.KillingFunctionError` otherwise.
        """

        pk = potential_killers_map(ddg, self.rtype)
        for value, killer in self.mapping.items():
            if value not in pk:
                raise KillingFunctionError(f"{value} is not a value of the DDG")
            if killer not in pk[value]:
                raise KillingFunctionError(
                    f"{killer!r} is not a potential killer of {value} "
                    f"(pkill = {sorted(pk[value])})"
                )

    def is_valid(self, ddg: DDG) -> bool:
        """True when every killer is legal *and* the killed graph is acyclic."""

        try:
            self.validate(ddg)
        except KillingFunctionError:
            return False
        return killed_graph(ddg, self).is_acyclic()


def killed_graph(
    ddg: DDG,
    kf: KillingFunction,
    from_all_consumers: bool = False,
    pk: Optional[Mapping[Value, List[str]]] = None,
) -> DDG:
    """The killed graph ``G->k``: *ddg* plus the arcs enforcing the killing choices.

    For every value ``u^t`` and every other potential killer ``v`` of
    ``u^t`` a serial arc ``v -> k(u^t)`` of latency
    ``delta_r(v) - delta_r(k(u^t))`` is added, which forces in every schedule
    ``sigma(k) + delta_r(k) >= sigma(v) + delta_r(v)``: the chosen killer is a
    last reader of the value.  With ``from_all_consumers=True`` the arcs are
    added from *every* other consumer, a strictly more conservative variant
    that is convenient when the reading offsets differ wildly.  *pk* accepts
    a precomputed potential-killers map (must equal
    :func:`potential_killers_map` of *ddg*).
    """

    g = ddg.copy(name=f"{ddg.name}->k")
    if pk is None:
        pk = potential_killers_map(ddg, kf.rtype)
    if from_all_consumers:
        for value, killer in kf.items():
            killer_offset = ddg.operation(killer).delta_r
            for other in ddg.consumers(value.node, value.rtype):
                if other == killer:
                    continue
                latency = ddg.operation(other).delta_r - killer_offset
                g.add_edge(Edge(other, killer, latency, DependenceKind.SERIAL, None))
    else:
        for other, killer in killing_arc_slots(kf, pk):
            latency = ddg.operation(other).delta_r - ddg.operation(killer).delta_r
            g.add_edge(Edge(other, killer, latency, DependenceKind.SERIAL, None))
    return g


def killing_arc_slots(
    kf: KillingFunction, pk: Mapping[Value, List[str]]
) -> Iterator[Tuple[str, str]]:
    """The (other, killer) pairs whose serial arcs :func:`killed_graph` adds.

    One pair per (value, other-potential-killer) contribution, in the order
    ``killed_graph`` adds the arcs; duplicates are yielded when several
    values contribute the same slot, which is exactly what the incremental
    candidate engine's refcounted patch diff needs to merge/unmerge slots
    the way ``add_edge``'s max-merge did.
    """

    for value, killer in kf.items():
        for other in pk.get(value, []):
            if other != killer:
                yield other, killer


def killing_function_from_schedule(
    ddg: DDG,
    schedule: Schedule,
    rtype: RegisterType | str,
) -> KillingFunction:
    """The killing function induced by a schedule: the last potential-killer read wins.

    Ties are broken deterministically (largest read cycle, then operation
    name) so the result is reproducible.  The induced function is always
    valid because the schedule itself satisfies the killing arcs it implies.
    """

    rtype = canonical_type(rtype)
    pk = potential_killers_map(ddg, rtype)
    mapping: Dict[Value, str] = {}
    for value, killers in pk.items():
        if not killers:
            continue
        mapping[value] = max(
            killers,
            key=lambda v: (schedule[v] + ddg.operation(v).delta_r, v),
        )
    return KillingFunction(rtype, mapping)


def canonical_killing_function(ddg: DDG, rtype: RegisterType | str) -> KillingFunction:
    """A deterministic fallback killing function (deepest potential killer).

    For every value the potential killer with the largest longest-path depth
    from the sources is chosen; intuitively the value is kept alive as long
    as possible, which tends to maximise overlap.  The result is not always
    acyclic-valid on adversarial graphs -- callers are expected to check
    :meth:`KillingFunction.is_valid` and fall back to a schedule-induced
    function if needed.
    """

    rtype = canonical_type(rtype)
    depth = context_for(ddg).asap_times()
    pk = potential_killers_map(ddg, rtype)
    mapping = {
        value: max(killers, key=lambda v: (depth[v], v))
        for value, killers in pk.items()
        if killers
    }
    return KillingFunction(rtype, mapping)


def enumerate_killing_functions(
    ddg: DDG,
    rtype: RegisterType | str,
    only_valid: bool = True,
    limit: Optional[int] = None,
) -> Iterator[KillingFunction]:
    """Enumerate killing functions (the Cartesian product of the pkill sets).

    This is exponential in the number of values with several potential
    killers and is only used by the brute-force saturation oracle of the
    test-suite.  With ``only_valid`` (default) the functions whose killed
    graph is cyclic are skipped.
    """

    rtype = canonical_type(rtype)
    pk = potential_killers_map(ddg, rtype)
    values = [v for v in sorted(pk, key=lambda x: x.node) if pk[v]]
    choices = [sorted(pk[v]) for v in values]
    count = 0
    for combo in itertools.product(*choices) if values else iter([()]):
        kf = KillingFunction(rtype, dict(zip(values, combo)))
        if only_valid and not killed_graph(ddg, kf).is_acyclic():
            continue
        yield kf
        count += 1
        if limit is not None and count >= limit:
            return
