"""Cheap lower and upper bounds on the register saturation.

The paper opens Section 3 with the trivial observation that no schedule can
ever need more than ``|V_{R,t}|`` registers of a type, so when that count is
at most ``R_t`` no analysis is needed at all.  On the other side, the
register need of any concrete schedule (ASAP, or a lifetime-stretching
schedule) is a lower bound of the saturation.  These bounds bracket the
exact value, give the test-suite its sandwich invariants, and let the
experiment harness skip intLP solves that cannot change a conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.context import AnalysisContext, context_for
from ..core.graph import DDG
from ..core.lifetime import register_need
from ..core.schedule import asap_schedule, list_schedule_priority, sequential_schedule
from ..core.types import RegisterType, canonical_type

__all__ = ["SaturationBounds", "saturation_bounds", "trivially_within_budget"]


@dataclass(frozen=True)
class SaturationBounds:
    """A sandwich ``lower <= RS_t(G) <= upper``."""

    rtype: RegisterType
    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:  # pragma: no cover - defensive
            raise ValueError("lower bound exceeds upper bound")

    @property
    def is_tight(self) -> bool:
        return self.lower == self.upper


def saturation_bounds(
    ddg: DDG,
    rtype: RegisterType | str,
    ctx: Optional[AnalysisContext] = None,
) -> SaturationBounds:
    """Compute cheap lower/upper bounds of the register saturation of *rtype*."""

    rtype = canonical_type(rtype)
    ctx = ctx if ctx is not None else context_for(ddg)
    bottom_ctx = ctx.bottom()
    g = bottom_ctx.ddg
    values = g.values(rtype)
    upper = len(values)
    if upper == 0:
        return SaturationBounds(rtype, 0, 0)

    lower = register_need(g, asap_schedule(g), rtype)

    # A schedule that issues value producers eagerly and value consumers
    # lazily stretches lifetimes and usually produces a better lower bound.
    asap = bottom_ctx.asap_times()
    horizon = bottom_ctx.critical_path_length() + 1

    def stretch_priority(node: str) -> float:
        op = g.operation(node)
        produces = 1.0 if op.defines(rtype) else 0.0
        consumes = 1.0 if any(
            e.is_flow and e.rtype == rtype for e in g.in_edges(node)
        ) else 0.0
        return produces * horizon - consumes * horizon - asap[node]

    stretched = list_schedule_priority(g, stretch_priority)
    lower = max(lower, register_need(g, stretched, rtype))
    lower = max(lower, register_need(g, sequential_schedule(g), rtype))
    return SaturationBounds(rtype, lower, upper)


def trivially_within_budget(ddg: DDG, rtype: RegisterType | str, registers: int) -> bool:
    """The paper's early exit: when ``|V_{R,t}| <= R_t`` no schedule can overflow."""

    rtype = canonical_type(rtype)
    return len(ddg.values(rtype)) <= registers
