"""Exact register saturation by integer linear programming (paper Section 3).

The formulation follows the paper variable-for-variable:

* **Scheduling variables** -- one bounded integer ``sigma_u`` per operation,
  constrained by every precedence arc (``sigma_v - sigma_u >= delta(e)``)
  and by the worst total schedule time ``T = sum_e delta(e)``; O(n)
  variables, O(m) constraints.
* **Killing dates** -- one bounded integer ``k_{u^t}`` per value, equal to
  the maximum of ``sigma_v + delta_r(v)`` over its consumers; the ``max`` is
  linearized with one selector binary per consumer (O(n^2) variables and
  constraints in total).
* **Interference binaries** -- ``s^t_{u,v}`` for every unordered pair of
  values, with ``s = 1  <=>  the two lifetime intervals interfere``, i.e.
  the conjunction ``k_u >= sigma_v + delta_w(v) + 1  and  k_v >= sigma_u +
  delta_w(u) + 1`` linearized with the helpers of :mod:`repro.ilp.logical`;
  O(n^2) binaries and constraints.
* **Independent-set variables** -- ``x_{u^t}`` binary, with the constraint
  ``s_{u,v} = 0  =>  x_u + x_v <= 1`` written directly as
  ``x_u + x_v - s_{u,v} <= 1``; the register saturation is the maximum of
  ``sum_u x_u`` (a maximum clique of the interference graph, i.e. a maximum
  independent set of its complement).

Overall the model has O(n^2) integer variables and O(m + n^2) constraints --
the size claim checked by ``benchmarks/bench_ilp_size.py``.

The scheduling + killing-date + interference part of the model (the
*interference core*) is shared with the optimal reduction intLP of
Section 4 (:mod:`repro.reduction.exact_ilp`), which replaces the
independent-set block by register-assignment variables.

The two optimisations suggested at the end of Section 3 are implemented and
enabled by default:

* serial arcs whose scheduling constraint is implied by a longer parallel
  path are skipped;
* pairs of values that can never be simultaneously alive (one is always
  defined after the other's killing date, detected with longest paths) get
  their ``s`` variable fixed to zero, which removes the associated
  equivalence machinery.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..analysis.context import context_for
from ..analysis.graphalgo import NEG_INF
from ..analysis.store import active_store
from ..core.graph import DDG
from ..core.lifetime import register_need
from ..core.schedule import Schedule
from ..core.types import RegisterType, Value, canonical_type
from ..errors import SolverError
from ..ilp import (
    IntegerProgram,
    LinExpr,
    Solution,
    SolveStatus,
    add_equivalence_conjunction,
    add_max_equality,
    solve,
)
from ..ilp.registry import backend_request_token
from .result import SaturationResult

__all__ = [
    "RSModelInfo",
    "build_interference_core",
    "build_rs_program",
    "exact_saturation",
    "never_simultaneously_alive",
]


class RSModelInfo:
    """Bookkeeping attached to a register-pressure intLP.

    Keeps the variable-name conventions in one place so both the saturation
    model (Section 3) and the reduction model (Section 4) can translate
    solver output back into schedules, lifetimes and alive sets.
    """

    def __init__(self, ddg: DDG, rtype: RegisterType, horizon: int) -> None:
        self.ddg = ddg
        self.rtype = rtype
        self.horizon = horizon
        self.values: List[Value] = sorted(ddg.values(rtype))
        self.sigma_names: Dict[str, str] = {
            node: f"sigma[{node}]" for node in ddg.nodes()
        }
        self.kill_names: Dict[Value, str] = {
            v: f"kill[{v.node}]" for v in self.values
        }
        #: pairs (u, v) -> name of the interference binary s_{u,v}
        self.interference_names: Dict[Tuple[Value, Value], str] = {}
        #: pairs statically proven to never interfere (s fixed to 0)
        self.fixed_noninterfering: Set[Tuple[Value, Value]] = set()
        #: value -> name of the independent-set binary (Section 3 model only)
        self.independent_names: Dict[Value, str] = {
            v: f"alive[{v.node}]" for v in self.values
        }

    def sigma(self, node: str) -> str:
        return self.sigma_names[node]

    def kill(self, value: Value) -> str:
        return self.kill_names[value]

    def value_pairs(self):
        """All unordered value pairs in a deterministic order."""

        for i, u in enumerate(self.values):
            for v in self.values[i + 1:]:
                yield u, v

    def schedule_from(self, solution: Solution) -> Schedule:
        times = {
            node: solution.int_value(name) for node, name in self.sigma_names.items()
        }
        return Schedule(times, self.ddg.name)

    def alive_values_from(self, solution: Solution) -> List[Value]:
        return [
            v
            for v, name in self.independent_names.items()
            if solution.int_value(name) == 1
        ]


def never_simultaneously_alive(
    ddg: DDG,
    a: Value,
    b: Value,
    lp: Mapping[str, Mapping[str, float]],
) -> bool:
    """Static test that two values can never have interfering lifetimes.

    This is the second optimisation of Section 3: the pair is ordered for
    every schedule when all consumers of one value are separated from the
    definition of the other by a long enough path::

        forall v' in Cons(v): lp(v', u) >= delta_r(v') - delta_w(u)
        or
        forall u' in Cons(u): lp(u', v) >= delta_r(u') - delta_w(v)
    """

    def ordered_after(first: Value, second: Value) -> bool:
        # True when `second` is always defined after `first`'s killing date.
        consumers = ddg.consumers(first.node, first.rtype)
        if not consumers:
            return False
        target_write = ddg.operation(second.node).delta_w
        for reader in consumers:
            need = ddg.operation(reader).delta_r - target_write
            dist = lp[reader][second.node]
            if dist == NEG_INF or dist < need:
                return False
        return True

    return ordered_after(a, b) or ordered_after(b, a)


def build_interference_core(
    ddg: DDG,
    rtype: RegisterType | str,
    horizon: Optional[int] = None,
    prune_redundant_arcs: bool = True,
    prune_noninterfering_pairs: bool = True,
    name: str = "rs-core",
) -> Tuple[IntegerProgram, RSModelInfo]:
    """Build the scheduling + killing-date + interference part of the intLP.

    The returned program contains, for the bottom-normalised copy of *ddg*:

    * one integer ``sigma`` variable per operation with ASAP/ALAP bounds and
      one precedence constraint per (non-redundant) arc;
    * one integer killing-date variable per value of *rtype*, tied to the
      consumers' read dates through the linearized ``max`` operator;
    * one binary interference variable per pair of values not statically
      proven non-interfering, tied to the lifetime intervals through the
      linearized equivalence.

    No objective is set; callers add either the independent-set block
    (register saturation) or the register-assignment block (reduction).
    """

    rtype = canonical_type(rtype)
    bottom_ctx = context_for(ddg).bottom()
    g = bottom_ctx.ddg
    if horizon is None:
        horizon = bottom_ctx.worst_case_total_time()
    info = RSModelInfo(g, rtype, horizon)
    program = IntegerProgram(f"{name}[{g.name}:{rtype.name}]")

    lp = bottom_ctx.longest_path_matrix()
    asap = bottom_ctx.asap_times()
    to_sinks = bottom_ctx.longest_path_to_sinks()

    # ------------------------------------------------------------------ #
    # Scheduling variables and precedence constraints
    # ------------------------------------------------------------------ #
    sigma: Dict[str, LinExpr] = {}
    for node in g.nodes():
        lower = asap[node]
        upper = horizon - to_sinks[node]
        sigma[node] = program.add_integer(info.sigma(node), lower, max(lower, upper))

    for edge in g.edges():
        if prune_redundant_arcs and not edge.is_flow:
            # Skip serial arcs implied by a longer parallel path (the matrix
            # entry already accounts for the best path, so a strict excess
            # means another path subsumes this arc's constraint).
            if lp[edge.src][edge.dst] > edge.latency:
                continue
        program.add_ge(
            sigma[edge.dst] - sigma[edge.src],
            edge.latency,
            label=f"prec[{edge.src}->{edge.dst}]",
        )

    # ------------------------------------------------------------------ #
    # Killing dates (one per value) -- the max operator of the paper
    # ------------------------------------------------------------------ #
    kill: Dict[Value, LinExpr] = {}
    for value in info.values:
        consumers = g.consumers(value.node, rtype)
        producer = g.operation(value.node)
        birth = sigma[value.node] + producer.delta_w
        if not consumers:
            # Exit values are consumed by the bottom node after normalisation;
            # a value that still has no consumer dies at its birth date.
            var = program.add_integer(info.kill(value), 0, horizon)
            program.add_eq(var - birth, 0.0, label=f"kill_birth[{value.node}]")
            kill[value] = var
            continue
        lo = min(asap[c] + g.operation(c).delta_r for c in consumers)
        hi = max(
            horizon - to_sinks[c] + g.operation(c).delta_r for c in consumers
        )
        var = program.add_integer(info.kill(value), lo, max(lo, hi))
        terms = [sigma[c] + g.operation(c).delta_r for c in consumers]
        add_max_equality(program, var, terms, prefix=f"kmax[{value.node}]")
        kill[value] = var

    # ------------------------------------------------------------------ #
    # Interference binaries
    # ------------------------------------------------------------------ #
    for u, v in info.value_pairs():
        if prune_noninterfering_pairs and never_simultaneously_alive(g, u, v, lp):
            info.fixed_noninterfering.add((u, v))
            continue
        s_name = f"interfere[{u.node},{v.node}]"
        s = program.add_binary(s_name)
        info.interference_names[(u, v)] = s_name
        birth_u = sigma[u.node] + g.operation(u.node).delta_w
        birth_v = sigma[v.node] + g.operation(v.node).delta_w
        # s = 1  <=>  k_u > birth_v  and  k_v > birth_u
        add_equivalence_conjunction(
            program,
            s,
            [
                (kill[u] - birth_v, 1.0),
                (kill[v] - birth_u, 1.0),
            ],
            prefix=f"eqv[{u.node},{v.node}]",
        )
    return program, info


def build_rs_program(
    ddg: DDG,
    rtype: RegisterType | str,
    horizon: Optional[int] = None,
    prune_redundant_arcs: bool = True,
    prune_noninterfering_pairs: bool = True,
) -> Tuple[IntegerProgram, RSModelInfo]:
    """Build the Section-3 intLP maximising the register need of type *rtype*.

    The DDG is normalised with the bottom node internally.  Returns the model
    together with the :class:`RSModelInfo` naming helper.
    """

    program, info = build_interference_core(
        ddg,
        rtype,
        horizon=horizon,
        prune_redundant_arcs=prune_redundant_arcs,
        prune_noninterfering_pairs=prune_noninterfering_pairs,
        name="rs",
    )

    alive: Dict[Value, LinExpr] = {}
    for value in info.values:
        alive[value] = program.add_binary(info.independent_names[value])

    for u, v in info.value_pairs():
        if (u, v) in info.fixed_noninterfering:
            # s_{u,v} is the constant 0: the pair can never be in the clique.
            program.add_le(alive[u] + alive[v], 1.0, label=f"is[{u.node},{v.node}]")
        else:
            s = LinExpr.term(info.interference_names[(u, v)])
            # s_{u,v} = 0  =>  x_u + x_v <= 1
            program.add_le(
                alive[u] + alive[v] - s, 1.0, label=f"is[{u.node},{v.node}]"
            )

    program.maximize(LinExpr.sum(alive.values()))
    return program, info


def exact_saturation(
    ddg: DDG,
    rtype: RegisterType | str,
    horizon: Optional[int] = None,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    prune: bool = True,
) -> SaturationResult:
    """Compute the exact register saturation ``RS_t(G)`` by solving the Section-3 intLP.

    ``backend`` names a registered solver backend or ``"auto"`` (the
    registry's deterministic policy, overridable via ``REPRO_ILP_BACKEND``);
    the chosen backend and its solve statistics are recorded in
    ``details``.  When the ambient result store is active (see
    :func:`repro.analysis.store.active_store`) a previously proven result
    for the same graph content and parameters is returned without solving.

    Raises :class:`~repro.errors.SolverError` when the solver cannot prove
    optimality within the time limit (the experiments treat those instances
    separately, as the paper does for its multi-day CPLEX runs).
    """

    start = time.perf_counter()
    rtype = canonical_type(rtype)
    if not ddg.values(rtype):
        return SaturationResult(rtype, 0, method="intlp", optimal=True,
                                wall_time=time.perf_counter() - start)

    def solve_exact() -> SaturationResult:
        program, info = build_rs_program(
            ddg,
            rtype,
            horizon=horizon,
            prune_redundant_arcs=prune,
            prune_noninterfering_pairs=prune,
        )
        solution = solve(
            program, backend=backend, time_limit=time_limit, require_feasible=True
        )
        if solution.status is not SolveStatus.OPTIMAL:
            raise SolverError(
                f"register saturation intLP not solved to optimality "
                f"(status={solution.status.value}, backend={solution.backend}) "
                f"for {ddg.name!r}"
            )
        schedule = info.schedule_from(solution)
        alive = info.alive_values_from(solution)
        rs = int(round(solution.objective or 0))
        # Sanity: the witness schedule must exhibit at least the claimed need.
        witness_need = register_need(info.ddg, schedule, rtype)
        return SaturationResult(
            rtype=rtype,
            rs=rs,
            saturating_values=tuple(sorted(alive)),
            method="intlp",
            witness_schedule=schedule,
            optimal=True,
            wall_time=time.perf_counter() - start,
            details={
                "model": program.statistics(),
                "solver": solution.solver,
                "solver_time": solution.wall_time,
                "backend": solution.backend,
                "solve": solution.stats(),
                "witness_register_need": witness_need,
                "horizon": info.horizon,
            },
        )

    store = active_store()
    if store is None:
        return solve_exact()
    # A raising solve (no proof within the limit) stores nothing.
    return store.memo(
        context_for(ddg).graph_hash(),
        "saturation.exact",
        {
            "rtype": rtype.name,
            "horizon": horizon,
            "prune": prune,
            "backend": backend_request_token(backend),
            "time_limit": time_limit,
        },
        solve_exact,
    )
