"""The Greedy-k heuristic for register-saturation computation.

Computing the register saturation exactly is NP-complete (proved in the
paper's reference [14]); the heuristic evaluated by the paper's Section 5 --
and shown there to be "nearly optimal", with a maximal empirical error of
one register -- works on killing functions:

1. compute the potential killers ``pkill(u^t)`` of every value;
2. decompose the bipartite *potential-killing graph* (values on one side,
   their potential killers on the other) into connected components;
3. inside each component choose a **killing set**: a subset of the killer
   side that covers every value of the component while dragging as few
   other values as possible below it (minimising the union of the killers'
   descendant values) -- those descendants are exactly the values that the
   killing choice orders *after* the component's values and that therefore
   cannot enlarge an antichain containing them;
4. assign each value a killer from the chosen set, yielding a killing
   function ``k``; build ``DV_k`` and return the size of its maximum
   antichain.

Small components are solved exactly (exhaustive subset search); large ones
greedily with a cover-ratio rule.  The implementation additionally evaluates
a few schedule-induced killing functions (always valid) and keeps the best
antichain, which can only tighten the approximation: every candidate is a
valid killing function, so every reported value is a true lower bound of the
register saturation -- the paper's case ``RS < RS*`` is impossible.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, FrozenSet, List, Mapping, MutableMapping, Optional, Sequence, Set, Tuple

from ..analysis.context import AnalysisContext, context_for
from ..core.graph import DDG
from ..core.lifetime import register_need
from ..core.schedule import Schedule, asap_schedule, list_schedule_priority
from ..core.types import BOTTOM, RegisterType, Value, canonical_type
from .dvk import saturating_antichain
from .pkill import (
    KillingFunction,
    canonical_killing_function,
    killed_graph,
    killing_function_from_schedule,
    potential_killers_map,
)
from .result import SaturationResult

__all__ = ["ComponentCache", "greedy_saturation", "greedy_killing_function"]

#: Components whose killer side is at most this large are solved exhaustively.
_EXHAUSTIVE_COMPONENT_LIMIT = 10


# --------------------------------------------------------------------------- #
# Killing-set selection
# --------------------------------------------------------------------------- #
def _bipartite_components(
    pk: Mapping[Value, List[str]]
) -> List[Tuple[List[Value], List[str]]]:
    """Connected components of the value/potential-killer bipartite graph."""

    value_nodes = [v for v in pk if pk[v]]
    killer_of: Dict[str, Set[Value]] = {}
    for value, killers in pk.items():
        for killer in killers:
            killer_of.setdefault(killer, set()).add(value)

    seen_values: Set[Value] = set()
    components: List[Tuple[List[Value], List[str]]] = []
    for start in value_nodes:
        if start in seen_values:
            continue
        comp_values: Set[Value] = set()
        comp_killers: Set[str] = set()
        stack: List[object] = [start]
        while stack:
            item = stack.pop()
            if isinstance(item, Value):
                if item in comp_values:
                    continue
                comp_values.add(item)
                for killer in pk[item]:
                    if killer not in comp_killers:
                        stack.append(killer)
            else:
                killer = str(item)
                if killer in comp_killers:
                    continue
                comp_killers.add(killer)
                for value in killer_of.get(killer, ()):
                    if value not in comp_values:
                        stack.append(value)
        seen_values |= comp_values
        components.append((sorted(comp_values), sorted(comp_killers)))
    return components


class ComponentCache:
    """Cross-iteration cache of the bipartite killing components.

    The incremental reduction driver re-runs Greedy-k after every push, and
    :func:`_bipartite_components` walked the whole value/killer graph from
    scratch each time even though a push perturbs only the components near
    the new arcs' endpoints.  This cache keeps the previous decomposition
    and *repairs* it: the copy-on-write ``pk`` maintenance replaces the
    killer-list object of exactly the dirty values (and pops restore the
    old objects), so ``pk[v] is cached_row`` identifies the clean values
    without comparing content.  Components containing a dirty value -- or a
    killer appearing in a dirty value's new list, which could link it into
    an existing component -- are dissolved and re-decomposed from the freed
    sub-relation; everything else is returned as the identical list
    objects, which also keeps `_signature_entry_matches`'s identity fast
    path hot.

    One dissolution round suffices: a kept component's values all have
    unchanged killer lists, and any killer that could connect a freed value
    to a kept component already belonged to that value's old (dissolved)
    component or appears in a dirty value's new list (also dissolved).

    The emitted order is provably the fresh function's: it emits one
    component per first-in-``pk``-order member value, so sorting the merged
    kept + recomputed components by their leader (minimum ``pk`` position
    over the component's values) reproduces the from-scratch order exactly
    -- and through it the killing function's dict insertion order, which
    persists into stored result bytes.  ``reused`` counts components
    returned without recomputation (surfaced as ``components_reused``) and
    ``seconds`` accumulates decompose wall clock (the ``greedy_decompose``
    stage timer).
    """

    def __init__(self) -> None:
        #: Value -> its pk killer-list object at the last decompose (the
        #: identity witness); None until the first call.
        self._rows: Optional[Dict[Value, List[str]]] = None
        #: Value -> position in pk iteration order (stable while the key
        #: set is unchanged: the engine's epochs copy via ``dict(pk)``).
        self._pos: Dict[Value, int] = {}
        #: (leader, comp_values, comp_killers), sorted by leader.
        self._comps: List[Tuple[int, List[Value], List[str]]] = []
        self._value_comp: Dict[Value, int] = {}
        self._killer_comp: Dict[str, int] = {}
        self.reused = 0
        self.seconds = 0.0

    def decompose(
        self, pk: Mapping[Value, List[str]]
    ) -> List[Tuple[List[Value], List[str]]]:
        """The components of *pk*, equal to :func:`_bipartite_components`."""

        t0 = time.perf_counter()
        try:
            if self._rows is None or self._rows.keys() != pk.keys():
                return self._rebuild(pk)
            rows = self._rows
            dirty = [v for v in pk if rows[v] is not pk[v]]
            if not dirty:
                self.reused += len(self._comps)
                return [(vals, kills) for _l, vals, kills in self._comps]
            return self._repair(pk, dirty)
        finally:
            self.seconds += time.perf_counter() - t0

    def _rebuild(self, pk: Mapping[Value, List[str]]):
        comps = _bipartite_components(pk)
        self._pos = {v: i for i, v in enumerate(pk)}
        pos = self._pos
        self._comps = [
            (min(pos[v] for v in vals), vals, kills) for vals, kills in comps
        ]
        self._index()
        self._rows = dict(pk)
        return comps

    def _index(self) -> None:
        self._value_comp = {}
        self._killer_comp = {}
        for ci, (_l, vals, kills) in enumerate(self._comps):
            for v in vals:
                self._value_comp[v] = ci
            for k in kills:
                self._killer_comp[k] = ci

    def _repair(self, pk: Mapping[Value, List[str]], dirty: List[Value]):
        doomed: Set[int] = set()
        for v in dirty:
            ci = self._value_comp.get(v)
            if ci is not None:
                doomed.add(ci)
            for k in pk[v]:
                ck = self._killer_comp.get(k)
                if ck is not None:
                    doomed.add(ck)
        freed: Set[Value] = set(dirty)
        kept: List[Tuple[int, List[Value], List[str]]] = []
        for ci, comp in enumerate(self._comps):
            if ci in doomed:
                freed.update(comp[1])
            else:
                kept.append(comp)
        self.reused += len(kept)
        # The freed sub-relation in pk order; its fresh decomposition plus
        # the kept components, re-sorted by leader, is the from-scratch
        # decomposition (see the class docstring for the argument).
        sub_pk = {v: pk[v] for v in pk if v in freed}
        pos = self._pos
        merged = kept + [
            (min(pos[v] for v in vals), vals, kills)
            for vals, kills in _bipartite_components(sub_pk)
        ]
        merged.sort(key=lambda comp: comp[0])
        self._comps = merged
        self._index()
        self._rows = dict(pk)
        return [(vals, kills) for _l, vals, kills in merged]


def _descendant_values(
    desc: Mapping[str, Set[str]], killer: str, value_nodes: Set[str]
) -> FrozenSet[str]:
    """Values (by producing node) reachable from *killer*, i.e. ordered after it."""

    return frozenset(desc[killer] & value_nodes)


def _cover_cost(
    killers: Sequence[str],
    desc_values: Mapping[str, FrozenSet[str]],
) -> int:
    union: Set[str] = set()
    for killer in killers:
        union |= desc_values[killer]
    return len(union)


def _choose_killing_set(
    comp_values: Sequence[Value],
    comp_killers: Sequence[str],
    pk: Mapping[Value, List[str]],
    desc_values: Mapping[str, FrozenSet[str]],
) -> List[str]:
    """Choose killers covering every value of the component with minimal drag.

    Exhaustive when the killer side is small, greedy (max newly covered
    values per newly dragged descendant) otherwise.
    """

    needed = list(comp_values)
    if len(comp_killers) <= _EXHAUSTIVE_COMPONENT_LIMIT:
        best: Optional[List[str]] = None
        best_cost = None
        for size in range(1, len(comp_killers) + 1):
            for subset in itertools.combinations(comp_killers, size):
                chosen = set(subset)
                if all(any(k in chosen for k in pk[v]) for v in needed):
                    cost = (_cover_cost(subset, desc_values), size)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best = list(subset)
        assert best is not None  # every value has at least one potential killer
        return best

    uncovered = set(needed)
    chosen: List[str] = []
    dragged: Set[str] = set()
    while uncovered:
        def score(killer: str) -> Tuple[float, str]:
            newly_covered = sum(1 for v in uncovered if killer in pk[v])
            if newly_covered == 0:
                return (float("inf"), killer)
            newly_dragged = len(desc_values[killer] - dragged)
            return (newly_dragged / newly_covered, killer)

        best_killer = min(comp_killers, key=score)
        chosen.append(best_killer)
        dragged |= desc_values[best_killer]
        uncovered = {v for v in uncovered if best_killer not in pk[v]}
    return chosen


def _component_signature(
    comp_values: Sequence[Value],
    comp_killers: Sequence[str],
    pk: Mapping[Value, List[str]],
    desc_values: Mapping[str, FrozenSet[str]],
) -> Tuple:
    """A hashable fingerprint of everything `_choose_killing_set` reads.

    Two components with equal signatures provably receive the same killing
    set (the choice is a pure function of these inputs), which is what lets
    the reduction session reuse choices across iterations: serial arcs only
    perturb components near their endpoints, so most signatures repeat.
    """

    return (
        tuple(comp_values),
        tuple(comp_killers),
        tuple(tuple(pk[v]) for v in comp_values),
        tuple(desc_values[k] for k in comp_killers),
    )


def _signature_entry_matches(
    entry: Tuple,
    comp_values: Sequence[Value],
    comp_killers: Sequence[str],
    pk: Mapping[Value, List[str]],
    desc_values: Mapping[str, FrozenSet[str]],
) -> bool:
    """Identity-validated equality of a component against a cached entry.

    The incremental engine maintains ``pk`` and the killer-descendant sets
    copy-on-write: an untouched component keeps the *same* row/set objects
    across iterations (and gets the old objects back on pop), so object
    identity of those inputs -- plus list equality of the component's
    values, which CPython resolves by pointer comparison for the shared
    ``Value`` objects -- proves the full signature would be equal without
    rebuilding and hashing it.  Only components in the push's dirty region
    fail here and pay the `_component_signature` hash.  An identity miss on
    equal content is merely a slow path, never an error.
    """

    cached_values, cached_pk, cached_desc, _ = entry
    if cached_values != comp_values:
        return False
    for v, row in zip(comp_values, cached_pk):
        if pk[v] is not row:
            return False
    # comp_killers equality is implied by the cache key (the killer tuple).
    for k, d in zip(comp_killers, cached_desc):
        if desc_values[k] is not d:
            return False
    return True


def greedy_killing_function(
    ddg: DDG,
    rtype: RegisterType | str,
    ctx: Optional[AnalysisContext] = None,
    killing_set_cache: Optional[MutableMapping] = None,
    signature_cache: Optional[MutableMapping] = None,
    component_cache: Optional[ComponentCache] = None,
) -> KillingFunction:
    """The killing function selected by the Greedy-k heuristic (before fallback).

    *killing_set_cache* is an optional mapping from component signatures to
    chosen killing sets; it never changes the result (the choice is a pure
    function of the signature) but lets the incremental reduction engine
    skip the exhaustive subset search for components untouched by the last
    serialization.  *signature_cache* is an optional identity-validated
    front cache over it (see :func:`_signature_entry_matches`) that also
    skips building and hashing the signature tuples for clean components --
    hashing work then scales with the push's dirty region instead of with
    the component count.  *component_cache* is an optional
    :class:`ComponentCache` replacing the from-scratch bipartite
    decomposition with a dirty-region repair of the previous iteration's;
    like the other two it only affects speed, never the result.
    """

    rtype = canonical_type(rtype)
    ctx = ctx if ctx is not None else context_for(ddg)
    pk = potential_killers_map(ddg, rtype, ctx)
    desc = ctx.descendants_map(include_self=False)
    value_nodes = {v.node for v in pk}

    def compute_desc_values() -> Dict[str, FrozenSet[str]]:
        return {
            killer: _descendant_values(desc, killer, value_nodes)
            for killers in pk.values()
            for killer in killers
        }

    # Memoized on the context so the incremental engine can inject the
    # dirty-region-patched sets instead of rebuilding every frozenset.
    desc_values = ctx.memo(("killer_desc_values", rtype), compute_desc_values)

    if component_cache is not None:
        components = component_cache.decompose(pk)
    else:
        components = _bipartite_components(pk)
    mapping: Dict[Value, str] = {}
    for comp_values, comp_killers in components:
        killing_set = None
        ckey: Optional[Tuple[str, ...]] = None
        if signature_cache is not None:
            ckey = tuple(comp_killers)
            entry = signature_cache.get(ckey)
            if entry is not None and _signature_entry_matches(
                entry, comp_values, comp_killers, pk, desc_values
            ):
                killing_set = entry[3]
        if killing_set is None:
            if killing_set_cache is not None:
                signature = _component_signature(
                    comp_values, comp_killers, pk, desc_values
                )
                killing_set = killing_set_cache.get(signature)
                if killing_set is None:
                    killing_set = _choose_killing_set(
                        comp_values, comp_killers, pk, desc_values
                    )
                    killing_set_cache[signature] = killing_set
            else:
                killing_set = _choose_killing_set(
                    comp_values, comp_killers, pk, desc_values
                )
            if signature_cache is not None:
                signature_cache[ckey] = (
                    comp_values,
                    [pk[v] for v in comp_values],
                    [desc_values[k] for k in comp_killers],
                    killing_set,
                )
        killing_set_set = set(killing_set)
        for value in comp_values:
            candidates = [k for k in pk[value] if k in killing_set_set]
            # Among the chosen killers able to kill this value, prefer the one
            # dragging the fewest descendants (ties broken by name).
            mapping[value] = min(candidates, key=lambda k: (len(desc_values[k]), k))
    return KillingFunction(rtype, mapping)


# --------------------------------------------------------------------------- #
# Candidate killing functions and the public entry point
# --------------------------------------------------------------------------- #
def _keep_alive_schedule(
    ddg: DDG, rtype: RegisterType, ctx: Optional[AnalysisContext] = None
) -> Schedule:
    """A schedule biased towards keeping many values of *rtype* alive.

    Producers of values are issued as early as possible (high priority) and
    their consumers as late as possible (low priority), which tends to
    stretch lifetimes and exhibit large register needs -- a cheap witness
    generator for the heuristic.

    The result is memoized on the graph's context under
    ``("keep_alive_schedule", rtype)``, which is the hook the incremental
    reduction engine uses to inject its repaired warm schedule (see
    :class:`~repro.scheduling.list_scheduler.IncrementalListSchedule`)
    instead of paying this from-scratch list scheduling every iteration.
    """

    ctx = ctx if ctx is not None else context_for(ddg)
    return ctx.memo(
        ("keep_alive_schedule", rtype),
        lambda: _keep_alive_schedule_uncached(ddg, rtype, ctx),
    )


def _keep_alive_schedule_uncached(
    ddg: DDG, rtype: RegisterType, ctx: AnalysisContext
) -> Schedule:
    """The from-scratch keep-alive list scheduling (the reference path)."""

    asap = ctx.asap_times()
    horizon = ctx.critical_path_length() + 1

    def priority(node: str) -> float:
        op = ddg.operation(node)
        producing = 1.0 if op.defines(rtype) else 0.0
        consuming = 1.0 if any(
            e.is_flow and e.rtype == rtype for e in ddg.in_edges(node)
        ) else 0.0
        return producing * horizon - consuming * horizon - asap[node]

    return list_schedule_priority(ddg, priority)


def greedy_saturation(
    ddg: DDG,
    rtype: RegisterType | str,
    extra_candidates: bool = True,
    ctx: Optional[AnalysisContext] = None,
    killing_set_cache: Optional[MutableMapping] = None,
    candidate_evaluator=None,
    signature_cache: Optional[MutableMapping] = None,
    component_cache: Optional[ComponentCache] = None,
) -> SaturationResult:
    """Approximate the register saturation ``RS_t(G)`` with the Greedy-k heuristic.

    Parameters
    ----------
    ddg:
        The data dependence graph.  It is normalised with the bottom node
        internally so exit values get a killer.
    rtype:
        Register type to analyse.
    extra_candidates:
        Also evaluate schedule-induced killing functions (ASAP and a
        keep-alive biased schedule) and keep the best antichain.  This is a
        cheap polish that never invalidates the lower-bound property.
    ctx:
        Optional shared :class:`~repro.analysis.context.AnalysisContext` of
        *ddg*.  The final result is memoized on it, so the pipeline stages
        and the reduction pass asking for the same saturation pay for one
        computation.
    killing_set_cache:
        Optional cross-iteration cache of killing-set choices keyed by
        bipartite-component signature (see
        :class:`~repro.saturation.incremental.IncrementalSaturation`).  It
        only affects speed, never the result.
    candidate_evaluator:
        Optional ``(label, killing_function) -> antichain | None`` hook that
        replaces the killed-graph construction + DV-DAG + antichain per
        candidate; ``None`` means the killing function is invalid (cyclic
        killed graph).  The incremental reduction engine supplies its warm
        per-candidate DV states here; the hook must return exactly what the
        built-in path would.
    signature_cache:
        Optional identity-validated front cache over *killing_set_cache*
        (see :func:`greedy_killing_function`); speed only, never the result.
    component_cache:
        Optional :class:`ComponentCache` repairing the previous iteration's
        bipartite decomposition instead of rebuilding it; speed only, never
        the result.

    Returns
    -------
    SaturationResult
        ``rs`` is the heuristic value RS*; ``saturating_values`` the
        corresponding antichain; ``killing_function`` the winning killing
        function.  ``optimal`` is always False here even when the value
        happens to be exact.
    """

    rtype = canonical_type(rtype)
    ctx = ctx if ctx is not None else context_for(ddg)
    return ctx.memo(
        ("greedy_saturation", rtype, extra_candidates),
        lambda: _greedy_saturation_uncached(
            ddg,
            rtype,
            extra_candidates,
            ctx,
            killing_set_cache,
            candidate_evaluator,
            signature_cache,
            component_cache,
        ),
        # Cross-run tier (inert unless a result store is active): the result
        # is a deterministic function of graph content + these parameters --
        # the caches/evaluator hooks only affect speed, never the result.
        persist=(
            "saturation.greedy",
            {"rtype": rtype.name, "extra_candidates": extra_candidates},
        ),
    )


def _greedy_saturation_uncached(
    ddg: DDG,
    rtype: RegisterType,
    extra_candidates: bool,
    ctx: AnalysisContext,
    killing_set_cache: Optional[MutableMapping] = None,
    candidate_evaluator=None,
    signature_cache: Optional[MutableMapping] = None,
    component_cache: Optional[ComponentCache] = None,
) -> SaturationResult:
    start = time.perf_counter()
    bottom_ctx = ctx.bottom()
    g = bottom_ctx.ddg
    values = g.values(rtype)
    if not values:
        return SaturationResult(rtype, 0, method="greedy-k", wall_time=time.perf_counter() - start)

    candidates: List[Tuple[str, KillingFunction]] = []
    greedy_kf = greedy_killing_function(
        g,
        rtype,
        ctx=bottom_ctx,
        killing_set_cache=killing_set_cache,
        signature_cache=signature_cache,
        component_cache=component_cache,
    )
    candidates.append(("greedy-k", greedy_kf))
    if extra_candidates:
        candidates.append(
            ("canonical", canonical_killing_function(g, rtype))
        )
        candidates.append(
            ("asap-induced", killing_function_from_schedule(g, asap_schedule(g), rtype))
        )
        candidates.append(
            (
                "keep-alive-induced",
                killing_function_from_schedule(
                    g, _keep_alive_schedule(g, rtype, ctx=bottom_ctx), rtype
                ),
            )
        )

    best_rs = -1
    best_antichain: List[Value] = []
    best_kf: Optional[KillingFunction] = None
    best_label = "greedy-k"
    fallback_used = False
    pk_map = potential_killers_map(g, rtype, bottom_ctx)
    for label, kf in candidates:
        antichain: Optional[List[Value]]
        if candidate_evaluator is not None:
            antichain = candidate_evaluator(label, kf)
        else:
            killed = killed_graph(g, kf, pk=pk_map)
            # Through the killed graph's context the acyclicity check shares
            # its topological sort with the disjoint-value DAG construction.
            if not context_for(killed).is_acyclic():
                antichain = None
            else:
                antichain, _ = saturating_antichain(g, kf, killed)
        if antichain is None:
            fallback_used = True
            continue
        if len(antichain) > best_rs:
            best_rs = len(antichain)
            best_antichain = antichain
            best_kf = kf
            best_label = label

    if best_kf is None:
        # Should not happen (schedule-induced functions are always valid) but
        # stay safe: fall back to the register need of the ASAP schedule.
        schedule = asap_schedule(g)
        rn = register_need(g, schedule, rtype)
        return SaturationResult(
            rtype,
            rn,
            method="greedy-k/fallback-asap",
            witness_schedule=schedule,
            wall_time=time.perf_counter() - start,
            details={"fallback": "no valid killing function"},
        )

    return SaturationResult(
        rtype=rtype,
        rs=best_rs,
        saturating_values=tuple(sorted(best_antichain)),
        method="greedy-k",
        killing_function=dict(best_kf.items()),
        optimal=False,
        wall_time=time.perf_counter() - start,
        details={
            "winning_candidate": best_label,
            "candidates_evaluated": len(candidates),
            "invalid_candidates_skipped": fallback_used,
            "num_values": len(values),
        },
    )
