#!/usr/bin/env python3
"""Quickstart: compute and reduce the register saturation of a small DAG.

This walks through the paper's core workflow on the Figure-2 running
example:

1. build a data dependence graph;
2. compute its register saturation (heuristic and exact);
3. reduce the saturation below a register budget;
4. verify that any schedule of the reduced graph fits the budget.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DDGBuilder,
    asap_schedule,
    compute_saturation,
    reduce_saturation,
    register_need,
    superscalar,
)
from repro.saturation import exact_saturation


def build_example():
    """The Figure-2 style DAG: four independent values, one long-latency."""

    return (
        DDGBuilder("quickstart")
        .default_type("int")
        .value("a", latency=17)     # a long-latency producer (e.g. a division)
        .value("b", latency=1)
        .value("c", latency=1)
        .value("d", latency=1)
        .op("use_a", latency=1)
        .op("use_b", latency=1)
        .op("use_c", latency=1)
        .op("use_d", latency=1)
        .flow("a", "use_a")
        .flow("b", "use_b")
        .flow("c", "use_c")
        .flow("d", "use_d")
        .build()
    )


def main() -> None:
    ddg = build_example()
    print(f"DAG {ddg.name!r}: {ddg.n} operations, {ddg.m} dependence arcs")

    # --- Step 1: how many registers could this DAG ever need? ----------- #
    heuristic = compute_saturation(ddg, "int", method="greedy")
    exact = compute_saturation(ddg, "int", method="exact")
    print(f"register saturation: heuristic RS* = {heuristic.rs}, exact RS = {exact.rs}")
    print(f"saturating values  : {[str(v) for v in exact.saturating_values]}")

    # --- Step 2: reduce it below a 3-register budget --------------------- #
    machine = superscalar(int_registers=3)
    reduction = reduce_saturation(ddg, "int", registers=3, machine=machine)
    print(
        f"reduction to 3 registers: success={reduction.success}, "
        f"arcs added={reduction.arcs_added}, critical-path increase={reduction.ilp_loss}"
    )

    # --- Step 3: check the promise on the extended graph ----------------- #
    extended = reduction.extended_ddg
    verified = exact_saturation(extended, "int")
    print(f"saturation of the extended graph: {verified.rs} (must be <= 3)")

    schedule = asap_schedule(extended.with_bottom())
    need = register_need(extended.with_bottom(), schedule, "int")
    print(f"register need of an ASAP schedule of the extended graph: {need}")
    print("=> the scheduler can now ignore registers entirely (Figure 1 of the paper)")


if __name__ == "__main__":
    main()
