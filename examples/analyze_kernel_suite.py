#!/usr/bin/env python3
"""Survey the register pressure of the whole kernel suite.

For every loop body of the benchmark population this prints, per register
type: the number of values, the cheap bounds, the Greedy-k saturation RS*,
and -- for the graphs small enough -- the exact saturation RS, reproducing in
miniature the measurement campaign of the paper's Section 5.

Run with::

    python examples/analyze_kernel_suite.py [--exact-limit N]
"""

from __future__ import annotations

import argparse

from repro.codes import kernel_suite
from repro.experiments import format_table
from repro.saturation import exact_saturation, greedy_saturation, saturation_bounds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--exact-limit",
        type=int,
        default=20,
        help="solve the exact intLP only for DAGs with at most this many operations",
    )
    args = parser.parse_args()

    rows = []
    errors = []
    for entry in kernel_suite():
        for rtype in entry.ddg.register_types():
            bounds = saturation_bounds(entry.ddg, rtype)
            greedy = greedy_saturation(entry.ddg, rtype)
            if entry.size <= args.exact_limit:
                exact = exact_saturation(entry.ddg, rtype, time_limit=60)
                exact_value = str(exact.rs)
                errors.append(exact.rs - greedy.rs)
            else:
                exact_value = "-"
            rows.append(
                (
                    entry.name,
                    entry.category,
                    rtype.name,
                    entry.size,
                    len(entry.ddg.values(rtype)),
                    f"{bounds.lower}..{bounds.upper}",
                    greedy.rs,
                    exact_value,
                )
            )

    print(
        format_table(
            ["kernel", "category", "type", "ops", "values", "bounds", "RS*", "RS"],
            rows,
            title="Register pressure of the benchmark kernels",
        )
    )
    if errors:
        print(f"\nexact comparisons: {len(errors)}, heuristic error histogram: "
              f"{ {e: errors.count(e) for e in sorted(set(errors))} }")
        print("(paper: the maximal empirical error of RS* is one register)")


if __name__ == "__main__":
    main()
