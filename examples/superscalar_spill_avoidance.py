#!/usr/bin/env python3
"""Spill avoidance study: why register pressure should be handled before scheduling.

The paper's introduction argues that spill code is more damaging than a
slightly longer schedule because memory latency dominates ("the memory
gap").  This example quantifies that trade-off on an unrolled DAXPY loop
body compiled for a superscalar machine with a small floating-point register
file, comparing three strategies:

* **RS management** (the paper's proposal): reduce the register saturation
  below the register count, then schedule register-blind and allocate;
* **register-pressure-aware scheduling**: a combined scheduler that delays
  operations when too many values are live (the "selfish" first pass the
  paper warns about);
* **schedule-then-spill**: the classic iterative baseline that inserts
  store/reload pairs until the allocation fits.

Run with::

    python examples/superscalar_spill_avoidance.py
"""

from __future__ import annotations

from repro import superscalar
from repro.allocation import linear_scan_allocate, schedule_with_spilling
from repro.codes.kernels import daxpy_unrolled
from repro.core.types import FLOAT
from repro.reduction import reduce_saturation_heuristic
from repro.saturation import greedy_saturation
from repro.scheduling import evaluate_schedule, list_schedule, register_pressure_aware_schedule


def main() -> None:
    registers = 5
    machine = superscalar(float_registers=registers, issue_width=4)
    ddg = daxpy_unrolled(4)
    rs = greedy_saturation(ddg, FLOAT)
    print(f"kernel {ddg.name!r}: {ddg.n} operations, float saturation RS* = {rs.rs}, "
          f"register file = {registers}")

    # --- strategy 1: the paper's RS management ---------------------------- #
    reduction = reduce_saturation_heuristic(ddg, FLOAT, registers, machine=machine)
    managed = reduction.extended_ddg.with_bottom()
    schedule = list_schedule(managed, machine)
    allocation = linear_scan_allocate(managed, schedule, FLOAT, registers=registers)
    metrics = evaluate_schedule(managed, schedule)
    print("\n[1] RS management (reduce, then schedule register-blind)")
    print(f"    serial arcs added : {reduction.arcs_added} (critical path +{reduction.ilp_loss})")
    print(f"    schedule length   : {metrics.total_time} cycles")
    print(f"    registers used    : {allocation.registers_used}, spill-free: {allocation.success}")

    # --- strategy 2: register-pressure-aware combined scheduling ---------- #
    g = ddg.with_bottom()
    aware = register_pressure_aware_schedule(g, FLOAT, registers, machine=machine)
    aware_alloc = linear_scan_allocate(g, aware, FLOAT, registers=registers)
    aware_metrics = evaluate_schedule(g, aware)
    print("\n[2] register-pressure-aware combined scheduler")
    print(f"    schedule length   : {aware_metrics.total_time} cycles")
    print(f"    register need     : {aware_metrics.register_need(FLOAT)}, "
          f"spill-free: {aware_alloc.success}")

    # --- strategy 3: schedule first, spill iteratively -------------------- #
    baseline = schedule_with_spilling(ddg, FLOAT, registers, machine=machine)
    base_metrics = evaluate_schedule(baseline.ddg.with_bottom(), baseline.schedule)
    print("\n[3] schedule-then-spill baseline")
    print(f"    values spilled    : {len(baseline.spilled_values)}")
    print(f"    memory ops added  : {baseline.memory_operations_added}")
    print(f"    schedule length   : {base_metrics.total_time} cycles")

    print("\n=> RS management pays (at most) a small critical-path increase instead of the"
          "\n   memory traffic and latency that spilling injects into the loop body.")


if __name__ == "__main__":
    main()
