#!/usr/bin/env python3
"""Full Figure-1 compile pipeline on a VLIW target.

Scenario: a DSP loop body (6-tap FIR filter) must be compiled for a VLIW
machine with a small floating-point register file.  The pipeline is the one
the paper proposes:

    DDG -> RS computation -> RS reduction (if needed) -> list scheduling
        -> linear-scan register allocation

and it is compared against the classic baseline that schedules first and
iteratively spills whatever does not fit.

Run with::

    python examples/vliw_compile_pipeline.py
"""

from __future__ import annotations

from repro import superscalar, vliw
from repro.allocation import linear_scan_allocate, schedule_with_spilling
from repro.codes import suite_by_name
from repro.core import retarget
from repro.core.types import FLOAT, INT
from repro.reduction import reduce_saturation_heuristic
from repro.saturation import greedy_saturation
from repro.scheduling import evaluate_schedule, list_schedule


def compile_with_rs_management(ddg, rtype, machine):
    """The paper's flow: RS analysis first, then register-blind scheduling."""

    budget = machine.registers(rtype)
    saturation = greedy_saturation(ddg, rtype)
    working = ddg
    arcs_added = 0
    if saturation.rs > budget:
        reduction = reduce_saturation_heuristic(ddg, rtype, budget, machine=machine)
        if not reduction.success:
            raise SystemExit(f"cannot fit {rtype} pressure into {budget} registers without spill")
        working = reduction.extended_ddg
        arcs_added = reduction.arcs_added
    scheduled = working.with_bottom()
    schedule = list_schedule(scheduled, machine)
    allocation = linear_scan_allocate(scheduled, schedule, rtype, registers=budget)
    metrics = evaluate_schedule(scheduled, schedule)
    return saturation, arcs_added, schedule, allocation, metrics


def main() -> None:
    machine = vliw(float_registers=8, int_registers=8)
    entry = suite_by_name("dsp-fir6")
    ddg = retarget(entry.ddg, machine)   # stamp the VLIW read/write offsets
    print(f"kernel {entry.name!r}: {ddg.n} operations on machine {machine.name!r}")

    for rtype in (FLOAT, INT):
        budget = machine.registers(rtype)
        saturation, arcs, schedule, allocation, metrics = compile_with_rs_management(
            ddg, rtype, machine
        )
        print(f"\n--- register type {rtype.name} (budget {budget}) ---")
        print(f"register saturation RS* = {saturation.rs}")
        print(f"serial arcs added by the reduction pass: {arcs}")
        print(f"schedule length: {metrics.total_time} cycles "
              f"(critical path {metrics.critical_path})")
        print(f"registers used by the allocator: {allocation.registers_used} "
              f"(spill-free: {allocation.success})")

    # Baseline for the float pressure: schedule first, spill iteratively.
    baseline = schedule_with_spilling(ddg, FLOAT, machine.registers(FLOAT), machine=machine)
    base_metrics = evaluate_schedule(baseline.ddg.with_bottom(), baseline.schedule)
    print("\n--- baseline: combined scheduling with iterative spilling (float) ---")
    print(f"values spilled: {len(baseline.spilled_values)}, "
          f"memory operations inserted: {baseline.memory_operations_added}")
    print(f"schedule length: {base_metrics.total_time} cycles")
    print("\n=> the RS-managed flow reaches a spill-free allocation without touching memory,")
    print("   which is the point of handling register pressure before scheduling.")


if __name__ == "__main__":
    main()
