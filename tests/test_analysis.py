"""Tests for graph algorithms, antichains (Dilworth) and statistics helpers."""

import pytest

from repro.analysis import (
    NEG_INF,
    alap_times,
    asap_times,
    brute_force_maximum_antichain,
    critical_path_length,
    descendants,
    descendants_map,
    fit_power_law,
    geometric_mean,
    is_antichain,
    longest_path_matrix,
    longest_path_to_sinks,
    longest_paths_from,
    maximum_antichain,
    maximum_antichain_size,
    minimum_chain_cover_size,
    percentage_breakdown,
    redundant_edges,
    summarize,
    transitive_closure_pairs,
    worst_case_total_time,
)
from repro.analysis.graphalgo import ancestors, is_redundant_edge
from repro.core import DDGBuilder, chain_ddg, fork_join_ddg


class TestLongestPaths:
    def test_longest_paths_from_source(self, diamond_ddg):
        dist = longest_paths_from(diamond_ddg, "a")
        assert dist["a"] == 0 and dist["b"] == 1 and dist["d"] == 2

    def test_unreachable_is_neg_inf(self, chains3x3_ddg):
        dist = longest_paths_from(chains3x3_ddg, "c0_v0")
        assert dist["c1_v0"] == NEG_INF

    def test_matrix_consistent_with_single_source(self, diamond_ddg):
        lp = longest_path_matrix(diamond_ddg)
        for src in diamond_ddg.nodes():
            assert lp[src] == longest_paths_from(diamond_ddg, src)

    def test_longest_path_to_sinks(self, diamond_ddg):
        dist = longest_path_to_sinks(diamond_ddg)
        assert dist["a"] == 2 and dist["d"] == 0

    def test_critical_path(self, diamond_ddg, chain5_ddg):
        assert critical_path_length(diamond_ddg) == 2
        assert critical_path_length(chain5_ddg) == 4

    def test_asap_alap_bracket(self, diamond_ddg):
        asap = asap_times(diamond_ddg)
        alap = alap_times(diamond_ddg)
        assert all(asap[v] <= alap[v] for v in diamond_ddg.nodes())

    def test_worst_case_total_time_dominates_critical_path(self, figure2):
        assert worst_case_total_time(figure2) >= critical_path_length(figure2)


class TestReachability:
    def test_descendants_and_ancestors(self, diamond_ddg):
        assert descendants(diamond_ddg, "a") == {"a", "b", "c", "d"}
        assert descendants(diamond_ddg, "b", include_self=False) == {"d"}
        assert ancestors(diamond_ddg, "d", include_self=False) == {"a", "b", "c"}

    def test_descendants_map_matches_pointwise(self, fork4_ddg):
        dm = descendants_map(fork4_ddg)
        for node in fork4_ddg.nodes():
            assert dm[node] == descendants(fork4_ddg, node)

    def test_transitive_closure_pairs(self, chain5_ddg):
        pairs = transitive_closure_pairs(chain5_ddg)
        assert ("v0", "v4") in pairs and ("v4", "v0") not in pairs
        assert len(pairs) == 10  # 5 choose 2 ordered along the chain


class TestRedundantEdges:
    def test_redundant_serial_edge_detected(self):
        g = (
            DDGBuilder("g").default_type("int")
            .value("a", latency=3).value("b", latency=3).op("c")
            .flow("a", "b").flow("b", "c")
            .serial("a", "c", latency=1)   # implied by a->b->c (latency 6)
            .build()
        )
        reds = redundant_edges(g)
        assert len(reds) == 1 and reds[0].is_serial

    def test_flow_edges_never_reported(self, diamond_ddg):
        assert all(e.is_serial for e in redundant_edges(diamond_ddg))

    def test_non_redundant_edge(self):
        g = (
            DDGBuilder("g").default_type("int")
            .value("a", latency=1).op("c")
            .flow("a", "c")
            .build()
        )
        assert redundant_edges(g) == []


class TestAntichain:
    def chain_poset(self, n):
        elems = list(range(n))
        pairs = [(i, j) for i in elems for j in elems if i < j]
        return elems, pairs

    def test_chain_has_width_one(self):
        elems, pairs = self.chain_poset(6)
        assert maximum_antichain_size(elems, pairs) == 1

    def test_empty_order_width_is_n(self):
        assert maximum_antichain_size(list(range(5)), []) == 5

    def test_antichain_is_valid(self):
        elems = list("abcdef")
        pairs = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("e", "f")]
        anti = maximum_antichain(elems, pairs)
        assert is_antichain(anti, pairs)

    def test_matches_brute_force_on_random_posets(self):
        import random

        rng = random.Random(42)
        for trial in range(12):
            n = rng.randint(3, 8)
            elems = list(range(n))
            pairs = set()
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.4:
                        pairs.add((i, j))
            # transitive closure
            changed = True
            while changed:
                changed = False
                for (a, b) in list(pairs):
                    for (c, d) in list(pairs):
                        if b == c and (a, d) not in pairs:
                            pairs.add((a, d))
                            changed = True
            assert maximum_antichain_size(elems, pairs) == brute_force_maximum_antichain(
                elems, pairs
            )

    def test_dilworth_duality(self):
        elems = list("abcdef")
        pairs = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        assert maximum_antichain_size(elems, pairs) == minimum_chain_cover_size(elems, pairs)

    def test_empty_elements(self):
        assert maximum_antichain([], []) == []
        assert minimum_chain_cover_size([], []) == 0


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4 and s.mean == 2.5 and s.minimum == 1 and s.maximum == 4

    def test_summarize_empty(self):
        assert summarize([]).count == 0

    def test_percentage_breakdown(self):
        pct = percentage_breakdown({"a": 3, "b": 1})
        assert pct["a"] == 75.0 and pct["b"] == 25.0

    def test_percentage_breakdown_empty(self):
        assert percentage_breakdown({"a": 0}) == {"a": 0.0}

    def test_fit_power_law_recovers_exponent(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x ** 2 for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert abs(alpha - 2.0) < 1e-6 and abs(c - 3.0) < 1e-6

    def test_fit_power_law_needs_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_geometric_mean(self):
        assert abs(geometric_mean([1, 100]) - 10.0) < 1e-9
