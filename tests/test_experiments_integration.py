"""Tests for the experiment harness and end-to-end integration scenarios."""

import pytest

from repro.codes import SuiteEntry, kernel_suite, suite_by_name
from repro.core import superscalar, vliw
from repro.core.types import FLOAT, INT
from repro.experiments import (
    PAPER_BREAKDOWN,
    format_breakdown,
    format_table,
    run_ilp_size_study,
    run_pipeline,
    run_pipeline_experiment,
    run_rs_optimality,
    run_reduction_optimality,
    section,
)
from repro.allocation import linear_scan_allocate
from repro.reduction import reduce_saturation_heuristic
from repro.saturation import greedy_saturation
from repro.scheduling import list_schedule


def tiny_suite(max_size=14, count=5):
    return [e for e in kernel_suite() if e.size <= max_size][:count]


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T" and "30" in text

    def test_format_breakdown_with_reference(self):
        text = format_breakdown({"x": 50.0}, {"x": 1}, paper_reference={"x": 72.2})
        assert "72.20" in text and "50.00" in text

    def test_section(self):
        assert "TITLE" in section("TITLE")


@pytest.mark.needs_ilp_solver
class TestRSOptimalityExperiment:
    def test_report_structure_and_paper_claim(self):
        report = run_rs_optimality(suite=tiny_suite())
        assert report.instances >= 4
        # the paper's headline finding: error at most one register, never negative
        assert 0 <= report.max_error <= 1
        assert report.min_error >= 0
        assert sum(report.error_histogram().values()) == report.instances
        assert "RS*" in report.to_table()
        assert any("maximal empirical error" in line for line in report.summary_lines())


@pytest.mark.needs_ilp_solver
class TestReductionOptimalityExperiment:
    def test_categories_and_impossible_cases(self):
        report = run_reduction_optimality(
            suite=tiny_suite(max_size=12, count=4), max_nodes=12, time_limit=60
        )
        assert report.instances >= 1
        counts = report.category_counts()
        pct = report.category_percentages()
        assert abs(sum(pct.values()) - 100.0) < 1e-6 or report.instances == 0
        # the two provably impossible categories never occur
        assert report.impossible_cases_observed == 0
        assert set(PAPER_BREAKDOWN) <= set(counts)
        assert "category" in report.breakdown_report()


@pytest.mark.needs_ilp_solver
class TestILPSizeExperiment:
    def test_quadratic_growth_confirmed(self):
        report = run_ilp_size_study(sizes=(8, 12, 16, 24))
        assert len(report.points) == 4
        assert report.variable_exponent() < 2.6
        assert report.constraint_exponent() < 2.6
        assert report.variables_within_bound()
        assert report.constraints_within_bound()
        assert "m+n^2" in report.to_table()


class TestPipelineExperiment:
    def test_single_pipeline_run_spill_free(self):
        entry = suite_by_name("livermore-k7")
        machine = superscalar(float_registers=5)
        outcome = run_pipeline(entry, FLOAT, machine)
        assert outcome.spill_free
        assert outcome.registers_used <= 5
        assert outcome.rs_after <= max(outcome.rs_before, 5)

    def test_pipeline_without_pressure_adds_no_arcs(self):
        entry = suite_by_name("linpack-daxpy")
        machine = superscalar(float_registers=32)
        outcome = run_pipeline(entry, FLOAT, machine)
        assert not outcome.reduction_needed and outcome.arcs_added == 0

    def test_pipeline_experiment_over_suite(self):
        report = run_pipeline_experiment(
            suite=tiny_suite(max_size=12, count=4), machine=superscalar(), registers=6
        )
        assert report.outcomes
        assert report.spill_free_count == len(report.outcomes)
        assert "no-spill" in report.to_table()


class TestEndToEnd:
    @pytest.mark.parametrize("name,rtype,budget", [
        ("livermore-k1", FLOAT, 3),
        ("whetstone-m1", FLOAT, 3),
        ("specfp-swim", FLOAT, 6),
        ("dsp-horner7", FLOAT, 6),
        ("figure2", INT, 3),
    ])
    def test_reduce_schedule_allocate_without_spill(self, name, rtype, budget):
        """The Figure-1 promise: after RS reduction any schedule allocates in R registers."""

        entry = suite_by_name(name)
        machine = superscalar(int_registers=budget, float_registers=budget)
        rs = greedy_saturation(entry.ddg, rtype)
        working = entry.ddg
        if rs.rs > budget:
            reduction = reduce_saturation_heuristic(entry.ddg, rtype, budget, machine=machine)
            assert reduction.success, f"{name}: heuristic could not reach {budget}"
            working = reduction.extended_ddg
        g = working.with_bottom()
        schedule = list_schedule(g, machine)
        allocation = linear_scan_allocate(g, schedule, rtype, registers=budget)
        assert allocation.success, f"{name}: allocation spilled with {budget} registers"

    def test_vliw_end_to_end(self):
        entry = suite_by_name("dsp-fir6")
        machine = vliw(float_registers=8, int_registers=8)
        from repro.core import retarget

        ddg = retarget(entry.ddg, machine)
        for rtype in ddg.register_types():
            rs = greedy_saturation(ddg, rtype)
            budget = machine.registers(rtype)
            working = ddg
            if rs.rs > budget:
                reduction = reduce_saturation_heuristic(ddg, rtype, budget, machine=machine)
                assert reduction.success
                working = reduction.extended_ddg
            g = working.with_bottom()
            schedule = list_schedule(g, machine)
            allocation = linear_scan_allocate(g, schedule, rtype, registers=budget)
            assert allocation.success
