"""Property tests for the batched push path (PR 10).

Three layers, each pinned against its per-row/per-source reference:

* the ``max_merge_rows`` block kernel vs a loop of per-row ``max_merge``
  calls (patched state, change log, and pre-image snapshots);
* ``relax_sources`` multi-source seeding vs one relaxation per source;
* block undo frames vs PR 6's per-row copy-on-write frames under random
  push/pop/reset_to_depth interleavings, at the ``IncrementalAnalysis``
  level and through a full ``ReductionSession`` reduction -- across every
  available ``REPRO_VECTOR`` backend (the no-numpy CI job runs the same
  file with numpy absent), plus the ``ComponentCache`` driver-loop repair
  vs the from-scratch bipartite decomposition.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import flatbuf
from repro.analysis.context import context_for
from repro.codes.generator import layered_random_ddg
from repro.core.graph import Edge
from repro.core.types import INT, DependenceKind
from repro.reduction import ReductionSession
from repro.saturation.greedy import ComponentCache, _bipartite_components
from repro.saturation.incremental import IncrementalAnalysis
from repro.saturation.pkill import potential_killers_map

NEG_INF = flatbuf.NEG_INF


def _available_backends():
    backends = ["off", "stdlib"]
    if flatbuf.numpy_available():
        backends.append("numpy")
    return backends


def _random_row(rng, n, p_inf=0.3):
    return [
        NEG_INF if rng.random() < p_inf else float(rng.randint(-50, 200))
        for _ in range(n)
    ]


class TestMaxMergeRowsParity:
    def test_block_kernel_matches_per_row_reference(self):
        rng = random.Random(20260808)
        for case in range(120):
            n = rng.randint(1, 80)
            k = rng.randint(0, 6)
            row_vals = [_random_row(rng, n) for _ in range(k)]
            dst_vals = _random_row(rng, n, p_inf=rng.choice([0.1, 0.5, 1.0]))
            shifts = [float(rng.randint(-10, 60)) for _ in range(k)]

            # Scalar reference: per-row copy-on-write max_merge.
            with flatbuf.use("off"):
                ref_rows = [list(r) for r in row_vals]
                ref_changed = {}
                finite = flatbuf.finite_entries(list(dst_vals))
                for p in range(k):
                    patched, changed = flatbuf.max_merge(
                        ref_rows[p], shifts[p], finite
                    )
                    if patched is not None:
                        ref_rows[p] = patched
                        ref_changed[p] = changed

            for spec in _available_backends():
                with flatbuf.use(spec):
                    rows = [flatbuf.row_from_list(list(r)) for r in row_vals]
                    dst = flatbuf.row_from_list(list(dst_vals))
                    positions, cols, snaps = flatbuf.max_merge_rows(
                        rows, list(shifts), flatbuf.finite_entries(dst)
                    )
                    label = f"case {case}: {spec}"
                    assert positions == sorted(ref_changed), label
                    assert {p: c for p, c in zip(positions, cols)} == (
                        ref_changed
                    ), label
                    # Rows were patched in place to the reference state...
                    got = [flatbuf.row_to_list(r) for r in rows]
                    assert got == ref_rows, label
                    # ... and every snapshot is the exact pre-image.
                    for p, snap in zip(positions, snaps):
                        assert flatbuf.row_to_list(snap) == row_vals[p], label

    def test_empty_inputs(self):
        for spec in _available_backends():
            with flatbuf.use(spec):
                assert flatbuf.max_merge_rows([], [], []) == ([], [], [])
                row = flatbuf.row_from_list([1.0, NEG_INF])
                dst = flatbuf.row_from_list([NEG_INF, NEG_INF])
                positions, cols, snaps = flatbuf.max_merge_rows(
                    [row], [5.0], flatbuf.finite_entries(dst)
                )
                assert positions == [] and cols == [] and snaps == []
                assert flatbuf.row_to_list(row) == [1.0, NEG_INF]

    def test_path_counter_increments_on_every_backend(self):
        for spec in _available_backends():
            with flatbuf.use(spec):
                before = flatbuf.counters["row_block_patches"]
                row = flatbuf.row_from_list([0.0, NEG_INF])
                dst = flatbuf.row_from_list([NEG_INF, 3.0])
                flatbuf.max_merge_rows([row], [1.0], flatbuf.finite_entries(dst))
                assert flatbuf.counters["row_block_patches"] == before + 1


def _random_dag(rng, n, p=0.18):
    """A dense-list adjacency + topo order of a random DAG on 0..n-1."""

    adj = [[] for _ in range(n)]
    for src in range(n):
        for dst in range(src + 1, n):
            if rng.random() < p:
                adj[src].append((dst, rng.randint(1, 5)))
                if rng.random() < 0.15:
                    # Duplicate edge with another weight: the kernel must
                    # max-accumulate, not last-write-win.
                    adj[src].append((dst, rng.randint(1, 5)))
    order = list(range(n))
    return adj, order


def _reference_row(adj, order, src, n):
    """The single-source relaxation `_compute_row_flat` runs (scalar)."""

    dist = [NEG_INF] * n
    dist[src] = 0
    for nid in order[order.index(src):]:
        d = dist[nid]
        if d == NEG_INF:
            continue
        for ni, w in adj[nid]:
            nd = d + w
            if nd > dist[ni]:
                dist[ni] = nd
    return dist


class TestRelaxSourcesParity:
    @pytest.mark.parametrize("n", [7, 40, 64, 150])
    def test_multi_source_matches_per_source_reference(self, n):
        rng = random.Random(9000 + n)
        adj, order = _random_dag(rng, n)
        for k in (1, 2, 3, 8):
            sources = rng.sample(range(n), min(k, n))
            start = min(order.index(s) for s in sources)
            expected = [_reference_row(adj, order, s, n) for s in sources]
            for spec in _available_backends():
                with flatbuf.use(spec):
                    rows = flatbuf.relax_sources(adj, order, start, sources, n)
                    got = [flatbuf.row_to_list(r) for r in rows]
                    assert got == expected, f"n={n} k={k}: {spec}"

    def test_path_counter_increments_on_every_backend(self):
        adj, order = _random_dag(random.Random(5), 10)
        for spec in _available_backends():
            with flatbuf.use(spec):
                before = flatbuf.counters["mirror_bulk_seeds"]
                flatbuf.relax_sources(adj, order, 0, [0, 1], 10)
                assert flatbuf.counters["mirror_bulk_seeds"] == before + 1


def _serial_arc_pool(ddg, rng, count=24):
    """Random forward serial arcs that keep the graph acyclic."""

    ctx = context_for(ddg)
    topo = ctx.topological_order()
    pos = {name: i for i, name in enumerate(topo)}
    names = list(topo)
    pool = []
    for _ in range(count):
        a, b = rng.sample(names, 2)
        if pos[a] > pos[b]:
            a, b = b, a
        pool.append(Edge(a, b, rng.randint(0, 3), DependenceKind.SERIAL, None))
    return pool


def _row_state(analysis):
    """Warm-row snapshot: sorted (src id, row contents) pairs.

    ``row_to_list`` hands back the live list object for scalar rows, which
    block mode then patches in place -- copy so snapshots stay snapshots.
    """

    return sorted(
        (sid, list(flatbuf.row_to_list(row)))
        for sid, row in analysis._lp_rows.items()
    )


class TestBlockFramesMatchPerRowFrames:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_push_pop_interleavings(self, seed):
        rng = random.Random(400 + seed)
        ddg = layered_random_ddg(nodes=16 + seed, layers=4, seed=seed)
        block = IncrementalAnalysis(ddg.copy(), frame_mode="block")
        perrow = IncrementalAnalysis(ddg.copy(), frame_mode="per-row")
        pool = _serial_arc_pool(ddg, rng)
        all_ids = list(range(block._n))

        for step in range(40):
            op = rng.random()
            if op < 0.25 and block.depth:
                block.pop()
                perrow.pop()
            elif op < 0.35:
                # Seed rows mid-epoch (exercises added_rows bookkeeping,
                # including the multi-source batch constructor).
                ids = rng.sample(all_ids, rng.randint(1, 4))
                rows_b = block.rows_multi(ids)
                rows_p = perrow.rows_multi(ids)
                assert [flatbuf.row_to_list(r) for r in rows_b] == [
                    flatbuf.row_to_list(r) for r in rows_p
                ], f"seed {seed} step {step}"
            else:
                edges = [pool[rng.randrange(len(pool))]
                         for _ in range(rng.randint(1, 2))]
                frame_b = block.push(list(edges))
                frame_p = perrow.push(list(edges))
                assert frame_b.lp_changes == frame_p.lp_changes, (
                    f"seed {seed} step {step}"
                )
            assert block.depth == perrow.depth
            assert _row_state(block) == _row_state(perrow), (
                f"seed {seed} step {step}"
            )
            assert sorted(
                (e.src, e.dst, e.latency) for e in block.ddg.edges()
            ) == sorted((e.src, e.dst, e.latency) for e in perrow.ddg.edges())

        # Unwind completely: both must land on the pristine baseline.
        while block.depth:
            block.pop()
            perrow.pop()
        assert _row_state(block) == _row_state(perrow)
        # ... and every restored row equals a from-scratch recompute.
        fresh = IncrementalAnalysis(ddg.copy())
        for sid, row in _row_state(block):
            assert row == flatbuf.row_to_list(fresh.row(sid)), sid

    def test_same_epoch_evict_and_reseed_restores_preimage(self):
        """A row evicted and re-seeded inside one epoch pops to its pre-image."""

        ddg = layered_random_ddg(nodes=14, layers=3, seed=7)
        analysis = IncrementalAnalysis(ddg.copy(), frame_mode="block")
        rng = random.Random(3)
        pool = _serial_arc_pool(ddg, rng)
        sid = 0
        analysis.row(sid)
        before = _row_state(analysis)
        applied = None
        for edge in pool:
            frame = analysis.push([edge])
            if frame.lp_changes:
                applied = edge
                break
            analysis.pop()
        if applied is None:
            pytest.skip("population admits no effective serialization")
        analysis.evict_row_id(sid)
        analysis.row(sid)  # re-seeded inside the same epoch
        analysis.pop()
        assert _row_state(analysis) == before

    @pytest.mark.parametrize("seed", range(4))
    def test_session_reduction_identical_across_frame_modes(self, seed):
        ddg = layered_random_ddg(nodes=15 + seed, layers=4, seed=30 + seed)
        for spec in _available_backends():
            with flatbuf.use(spec):
                fingerprints = {}
                for frame_mode in ("block", "per-row"):
                    session = ReductionSession(
                        ddg.copy(), INT, frame_mode=frame_mode
                    )
                    trace = [session.analysis_fingerprint()]
                    for _ in range(3):
                        sat = session.saturation()
                        if not _push_one(session, sat):
                            break
                        trace.append(session.analysis_fingerprint())
                    if session.depth >= 1:
                        session.reset_to_depth(session.depth - 1)
                        trace.append(session.analysis_fingerprint())
                    session.reset_to_depth(0)
                    trace.append(session.analysis_fingerprint())
                    fingerprints[frame_mode] = trace
                assert fingerprints["block"] == fingerprints["per-row"], (
                    f"seed {seed}: {spec}"
                )


def _push_one(session, sat):
    for u in sat.saturating_values:
        for v in sat.saturating_values:
            if u == v:
                continue
            edges = session.legal_serialization(u, v)
            if edges:
                session.push(edges)
                return True
    return False


class TestComponentCache:
    def _pk(self, seed, nodes=20):
        ddg = layered_random_ddg(nodes=nodes, layers=4, seed=seed).with_bottom()
        return potential_killers_map(ddg, INT, context_for(ddg))

    @pytest.mark.parametrize("seed", range(5))
    def test_repair_matches_fresh_decomposition(self, seed):
        pk = dict(self._pk(seed))
        cache = ComponentCache()
        rng = random.Random(seed)
        assert cache.decompose(pk) == _bipartite_components(pk)
        for _round in range(8):
            values = list(pk)
            for v in rng.sample(values, rng.randint(1, 3)):
                row = list(pk[v])
                if row and rng.random() < 0.5:
                    row.pop(rng.randrange(len(row)))
                pk[v] = row  # fresh object: marks the value dirty
            assert cache.decompose(pk) == _bipartite_components(pk), _round
        assert cache.reused > 0

    def test_clean_iteration_reuses_every_component(self):
        pk = dict(self._pk(2))
        cache = ComponentCache()
        first = cache.decompose(pk)
        again = cache.decompose(dict(pk))  # same row objects, new dict
        assert again == first
        assert cache.reused == len(first)

    def test_key_set_change_forces_rebuild(self):
        pk = dict(self._pk(3))
        cache = ComponentCache()
        cache.decompose(pk)
        smaller = dict(pk)
        smaller.pop(next(iter(smaller)))
        assert cache.decompose(smaller) == _bipartite_components(smaller)


class TestEngineCounters:
    def test_batched_path_counters_surface_in_engine_stats(self):
        from repro.codes import kernel_suite
        from repro.reduction import reduce_saturation_heuristic

        entry = {e.name: e for e in kernel_suite()}["linpack-daxpy-u4"]
        ddg, rtype = entry.ddg, entry.ddg.register_types()[0]
        for spec in _available_backends():
            with flatbuf.use(spec):
                result = reduce_saturation_heuristic(
                    ddg.copy(), rtype, 4, engine="incremental"
                )
                stats = result.details["engine_stats"]
                # Path counters are backend-independent: the batched path
                # must be taken even where the kernels run scalar forms.
                assert stats["row_block_patches"] > 0, spec
                assert stats["mirror_bulk_seeds"] > 0, spec
                assert stats["components_reused"] > 0, spec
                assert "greedy_decompose" in stats["stage_timings"], spec
