"""Tests for zero-copy shared-memory graph dispatch (``repro.analysis.shm``).

Covers the encoding round trip (an attached graph is indistinguishable from
a ``DDG.copy``), the two-process attach path with leak detection (after the
exporter closes, the segment name must be gone from the system), the pickle
fallback ladder, and the batch-engine integration counters.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import pytest

from repro.analysis import shm
from repro.codes import kernel_suite
from repro.core import DDGBuilder
from repro.core.graph import DDG
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _reset_counters():
    shm.reset_counters()
    yield
    shm.reset_counters()


def _graph_signature(g):
    return (
        g.name,
        sorted((o.name, o.latency, o.delta_r, o.delta_w, o.opcode, o.fu_class,
                tuple(sorted(t.name for t in o.defs))) for o in g.operations()),
        sorted((e.src, e.dst, e.latency, e.kind.value,
                None if e.rtype is None else e.rtype.name) for e in g.edges()),
    )


def _sample_ddg():
    b = DDGBuilder("shm-sample")
    b.value("addr", "int", latency=1)
    b.value("x", "float", latency=4, fu_class="mem")
    b.value("y", "float", latency=4, fu_class="mem")
    b.value("prod", "float", latency=4, fu_class="fpu")
    b.op("st", latency=1, fu_class="mem")
    b.flow("addr", "x")
    b.flow("addr", "y")
    b.flow("x", "prod")
    b.flow("y", "prod")
    b.flow("prod", "st")
    return b.build()


class TestRoundTrip:
    def test_attached_graph_matches_copy(self):
        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            proxy = exporter.pack(g)
            rebuilt = pickle.loads(pickle.dumps(proxy))
        assert _graph_signature(rebuilt) == _graph_signature(g.copy())
        assert shm.counters["exports"] == 1
        assert shm.counters["attaches"] == 1
        assert shm.counters["fallbacks"] == 0

    def test_kernel_suite_round_trips(self):
        with shm.GraphExporter() as exporter:
            for entry in kernel_suite()[:6]:
                proxy = exporter.pack(entry.ddg)
                rebuilt = pickle.loads(pickle.dumps(proxy))
                assert _graph_signature(rebuilt) == _graph_signature(entry.ddg)

    def test_proxy_reads_like_the_original(self):
        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            proxy = exporter.pack(g)
            assert proxy.name == g.name
            assert sorted(o.name for o in proxy.operations()) == sorted(
                o.name for o in g.operations()
            )

    def test_proxy_pickle_is_much_smaller(self):
        entry = max(kernel_suite(), key=lambda e: e.ddg.n)
        with shm.GraphExporter() as exporter:
            proxy = exporter.pack(entry.ddg)
            assert len(pickle.dumps(proxy)) * 5 < len(pickle.dumps(entry.ddg))

    def test_same_graph_exported_once(self):
        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            items = [exporter.pack(("run", g, i)) for i in range(10)]
            assert exporter.exported == 1
            assert all(item[1] is items[0][1] for item in items)


class TestPackWalker:
    def test_packs_nested_containers(self):
        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            packed = exporter.pack({"jobs": [(g, {"budget": 4})], "tag": "x"})
            assert isinstance(packed["jobs"][0][0], shm._SharedDDG)
            assert packed["jobs"][0][1] == {"budget": 4}
            assert packed["tag"] == "x"

    def test_packs_dataclass_fields(self):
        @dataclass(frozen=True)
        class Job:
            name: str
            ddg: DDG

        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            packed = exporter.pack(Job(name="j", ddg=g))
            assert isinstance(packed.ddg, shm._SharedDDG)
            assert packed.name == "j"

    def test_graphless_items_pass_through_unchanged(self):
        with shm.GraphExporter() as exporter:
            item = ("plain", 3, [1.5])
            assert exporter.pack(item) is item
            assert exporter.exported == 0

    def test_closed_exporter_falls_back(self):
        g = _sample_ddg()
        exporter = shm.GraphExporter()
        exporter.close()
        assert exporter.pack(g) is g
        assert shm.counters["fallbacks"] == 1

    def test_pack_failure_falls_back_to_original_item(self, monkeypatch):
        g = _sample_ddg()
        with shm.GraphExporter() as exporter:
            monkeypatch.setattr(
                shm, "_encode_graph", lambda ddg: (_ for _ in ()).throw(OSError())
            )
            assert exporter.pack(g) is g
        assert shm.counters["fallbacks"] == 1
        assert shm.counters["exports"] == 0


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        g = _sample_ddg()
        exporter = shm.GraphExporter()
        proxy = exporter.pack(g)
        name = proxy.__dict__["_shm_segment"]
        seg = shared_memory.SharedMemory(name=name)
        seg.close()
        exporter.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self):
        exporter = shm.GraphExporter()
        exporter.pack(_sample_ddg())
        exporter.close()
        exporter.close()

    def test_two_process_attach_leaves_no_leaked_segment(self):
        g = _sample_ddg()
        ctx = get_context("spawn")
        with shm.GraphExporter() as exporter:
            proxy = exporter.pack(g)
            name = proxy.__dict__["_shm_segment"]
            with ctx.Pool(1) as pool:
                sig = pool.apply(_worker_signature, (proxy,))
            assert sig == _graph_signature(g.copy())
            # The worker attached, rebuilt, detached -- and its exit (plus
            # its resource tracker) must not have unlinked the segment out
            # from under the exporter.
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _worker_signature(g):
    return _graph_signature(g)


class TestEnvToggle:
    def test_bad_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "always")
        with pytest.raises(ConfigurationError, match="REPRO_SHM"):
            shm.enabled()

    def test_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        assert not shm.enabled()

    def test_auto_enables_when_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "auto")
        assert shm.enabled() == (shm.shared_memory is not None)


class TestEngineIntegration:
    def test_process_dispatch_attaches_per_item(self):
        from repro.experiments import BatchEngine

        g = _sample_ddg()
        engine = BatchEngine(policy="process", workers=2)
        results = engine.map(_worker_signature, [g] * 4)
        assert all(sig == _graph_signature(g.copy()) for sig in results)
        assert shm.counters["exports"] == 1

    def test_shm_off_uses_plain_pickle(self, monkeypatch):
        from repro.experiments import BatchEngine

        monkeypatch.setenv("REPRO_SHM", "off")
        g = _sample_ddg()
        engine = BatchEngine(policy="process", workers=2)
        results = engine.map(_worker_signature, [g] * 3)
        assert all(sig == _graph_signature(g.copy()) for sig in results)
        assert shm.counters["exports"] == 0
