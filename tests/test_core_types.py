"""Tests for repro.core.types and repro.core.operation."""

import pytest

from repro.core.operation import Operation
from repro.core.types import (
    BOTTOM,
    BRANCH,
    FLOAT,
    INT,
    DependenceKind,
    RegisterType,
    Value,
    canonical_type,
    sorted_types,
)


class TestRegisterType:
    def test_equality_by_name(self):
        assert RegisterType("int") == INT
        assert RegisterType("float") == FLOAT

    def test_canonical_type_from_string(self):
        assert canonical_type("int") is INT
        assert canonical_type("float") is FLOAT

    def test_canonical_type_passthrough(self):
        assert canonical_type(INT) is INT

    def test_canonical_type_custom(self):
        custom = canonical_type("predicate")
        assert custom.name == "predicate"
        assert custom != INT

    def test_canonical_type_rejects_bad_input(self):
        with pytest.raises(TypeError):
            canonical_type(42)

    def test_sorted_types_deterministic(self):
        assert sorted_types({FLOAT, INT, BRANCH}) == [BRANCH, FLOAT, INT]


class TestValue:
    def test_value_identity(self):
        assert Value("a", INT) == Value("a", canonical_type("int"))
        assert Value("a", INT) != Value("a", FLOAT)

    def test_value_ordering_is_stable(self):
        values = sorted([Value("b", INT), Value("a", INT), Value("a", FLOAT)])
        assert values[0].node == "a"

    def test_str(self):
        assert str(Value("a", INT)) == "a^int"


class TestDependenceKind:
    def test_members(self):
        assert DependenceKind.FLOW.value == "flow"
        assert DependenceKind.SERIAL.value == "serial"


class TestOperation:
    def test_defaults(self):
        op = Operation("a")
        assert op.latency == 1 and op.delta_r == 0 and op.delta_w == 0
        assert not op.is_value_producer

    def test_defines(self):
        op = Operation("a", defs=frozenset({INT}))
        assert op.defines("int") and not op.defines("float")
        assert op.is_value_producer

    def test_string_types_normalised(self):
        op = Operation("a", defs=frozenset({"float"}))
        assert op.defines(FLOAT)

    def test_read_write_cycles(self):
        op = Operation("a", delta_r=1, delta_w=2)
        assert op.read_cycle(10) == 11
        assert op.write_cycle(10) == 12

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Operation("a", latency=-1)

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError):
            Operation("a", delta_r=-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Operation("")

    def test_renamed_and_with_offsets(self):
        op = Operation("a", defs=frozenset({INT}), latency=3)
        renamed = op.renamed("b")
        assert renamed.name == "b" and renamed.latency == 3
        shifted = op.with_offsets(1, 2)
        assert shifted.delta_r == 1 and shifted.delta_w == 2
        assert op.delta_r == 0  # original untouched

    def test_bottom_constant(self):
        assert BOTTOM == "__bottom__"
