"""Tests for the flat-array hot core (op-id interner, bitmask state, lazy sync).

The flat core rewires the incremental engine's inner loops onto integer op
ids, flat longest-path rows and bitmask DV state; everything here pins the
conversion boundaries the rewrite must not move:

* the interner itself (round trip, append-only stability);
* op-id stability across ``push``/``pop``/``reset_to_depth`` -- the node set
  of a session never changes, so an id handed out once must stay valid for
  the session's whole life;
* byte-identical reduction reports between the flat incremental engine and
  the from-scratch reference on the paper kernels and a scale instance
  (the benchmark extends the population up to the 200/240-op superblocks);
* verdict parity under the exact dirty-region invalidation (PR 6 replaced
  the conservative ``anc(src)`` half of the pair-verdict invalidation with
  the exact set read off a sink-distance diff);
* the lazy candidate-sync protocol (deferred pushes are dropped, not
  replayed, when the candidate is popped or rebuilt before being evaluated,
  surfaced by the ``dv_syncs_skipped`` counter).
"""

from __future__ import annotations

import pytest

from repro.analysis.interner import OpInterner
from repro.codes import kernel_suite, scale_suite
from repro.reduction import ReductionSession, reduce_saturation_heuristic

#: Reduction-heavy kernels (same selection as the benchmark population).
_KERNEL_NAMES = (
    "linpack-daxpy-u4",
    "specfp-tomcatv",
    "dsp-fir6",
)


def _kernel(name):
    return {e.name: e for e in kernel_suite()}[name]


def _scale(size):
    return scale_suite(sizes=(size,), superblock_sizes=())[0]


class TestOpInterner:
    def test_round_trip(self):
        interner = OpInterner(["a", "b", "c"])
        assert [interner.id(n) for n in ("a", "b", "c")] == [0, 1, 2]
        assert [interner.name(i) for i in range(3)] == ["a", "b", "c"]
        assert interner.names() == ["a", "b", "c"]
        assert len(interner) == 3 and interner.size == 3
        assert "b" in interner and "z" not in interner

    def test_intern_is_append_only_and_idempotent(self):
        interner = OpInterner()
        assert interner.intern("x") == 0
        assert interner.intern("y") == 1
        assert interner.intern("x") == 0  # re-intern never reassigns
        assert interner.size == 2

    def test_missing_lookups(self):
        interner = OpInterner(["a"])
        assert interner.get("missing") is None
        with pytest.raises(KeyError):
            interner.id("missing")

    def test_seeding_order_matches_input_order(self):
        names = ["n3", "n1", "n2"]
        interner = OpInterner(names)
        assert interner.names() == names


class TestOpIdStability:
    def test_ids_survive_push_pop_reset(self):
        entry = _scale(40)
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        analysis = session._analysis
        ids_before = {name: analysis.op_id(name) for name in session.ddg.nodes()}

        saturating = list(session.saturation().saturating_values)
        pushed = 0
        for u in saturating:
            for v in saturating:
                if u == v:
                    continue
                edges = session.legal_serialization(u, v)
                if edges:
                    session.push(edges)
                    pushed += 1
                    break
            if pushed >= 2:
                break
        assert pushed >= 1, "the scale graph must admit a serialization"

        ids_mid = {name: analysis.op_id(name) for name in session.ddg.nodes()}
        assert ids_mid == ids_before

        session.reset_to_depth(0)
        ids_after = {name: analysis.op_id(name) for name in session.ddg.nodes()}
        assert ids_after == ids_before

    def test_mirror_shares_context_interner_ids(self):
        # The bottom mirror interns independently through its own context;
        # ids must agree on every shared node because both seed from
        # DDG.nodes() insertion order (preserved by DDG.copy()).
        entry = _kernel("dsp-fir6")
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        working = session._analysis
        mirror = session._saturation._mirror
        for name in session.ddg.nodes():
            assert mirror.op_id(name) == working.op_id(name)

    def test_lp_row_dict_view_matches_flat_row(self):
        entry = _kernel("linpack-daxpy-u4")
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        analysis = session._analysis
        for name in list(session.ddg.nodes())[:5]:
            row = analysis.row_by_name(name)
            as_dict = analysis.lp_row(name)
            for other, dist in as_dict.items():
                assert row[analysis.op_id(other)] == dist


def _normalized_report(result):
    """ReductionResult minus wall time and the engine tag (bench's notion)."""

    details = {
        k: v
        for k, v in sorted(result.details.items())
        if k not in ("engine", "engine_stats")
    }
    graph = result.extended_ddg
    return repr(
        (
            result.rtype.name,
            result.target,
            result.success,
            result.original_rs,
            result.achieved_rs,
            result.added_edges,
            result.critical_path_before,
            result.critical_path_after,
            result.method,
            result.optimal,
            details,
            graph.name,
            sorted(
                (e.src, e.dst, e.latency, e.kind.value,
                 None if e.rtype is None else e.rtype.name)
                for e in graph.edges()
            ),
        )
    ).encode()


class TestFlatCoreByteIdentity:
    @pytest.mark.parametrize("name", _KERNEL_NAMES)
    def test_kernel_reports_identical(self, name):
        entry = _kernel(name)
        rtype = entry.ddg.register_types()[0]
        scratch = reduce_saturation_heuristic(
            entry.ddg.copy(), rtype, 4, engine="from-scratch"
        )
        incremental = reduce_saturation_heuristic(
            entry.ddg.copy(), rtype, 4, engine="incremental"
        )
        assert _normalized_report(scratch) == _normalized_report(incremental)

    def test_scale_report_identical(self):
        entry = _scale(48)
        rtype = entry.ddg.register_types()[0]
        scratch = reduce_saturation_heuristic(
            entry.ddg.copy(), rtype, 8, engine="from-scratch"
        )
        incremental = reduce_saturation_heuristic(
            entry.ddg.copy(), rtype, 8, engine="incremental"
        )
        assert _normalized_report(scratch) == _normalized_report(incremental)


class TestExactVerdictInvalidation:
    def test_retained_verdicts_match_fresh_recompute(self):
        """Property: every verdict the exact invalidation keeps across a push
        equals what a cold evaluation of that pair would produce now."""

        entry = _scale(56)
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        n = session._nvals
        values = session._values_by_index

        current = session.saturation()
        for _ in range(4):
            saturating = list(current.saturating_values)
            best, _implied = session.scan(saturating, session.critical_path())
            if best is None:
                break
            session.apply_payload(best[1])
            # Every retained verdict must be bit-for-bit what a fresh
            # evaluation produces on the post-push graph.
            for key, verdict in list(session._pair_verdicts.items()):
                if type(key) is int:
                    before, after = values[key // n], values[key % n]
                else:
                    before, after = key
                assert session._consider_fresh(before, after) == verdict, (
                    f"stale verdict retained for {before} -> {after}"
                )
            current = session.saturation()

        assert session.stats["pushes"] > 0
        assert session.stats["verdict_exact_regions"] == session.stats["pushes"], (
            "the driver loop keeps the sink-distance map warm, so every push "
            "must take the exact invalidation path"
        )

    def test_cold_sink_state_falls_back_conservatively(self):
        entry = _scale(40)
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        saturating = list(session.saturation().saturating_values)
        for u in saturating:
            for v in saturating:
                if u == v:
                    continue
                edges = session.legal_serialization(u, v)
                if edges:
                    # No consider/scan ran: the sink-distance map is cold, so
                    # the push must use the conservative anc(src) region.
                    session.push(edges)
                    assert session.stats["verdict_exact_regions"] == 0
                    return
        pytest.skip("no legal serialization on this instance")


class TestLazySync:
    def test_popped_pushes_skip_candidate_sync(self):
        entry = _scale(48)
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        baseline = session.analysis_fingerprint()
        assert session._saturation._candidate_states, (
            "saturation() must leave warm candidate states behind"
        )

        saturating = list(session.saturation().saturating_values)
        pushed = False
        for u in saturating:
            for v in saturating:
                if u == v:
                    continue
                edges = session.legal_serialization(u, v)
                if edges:
                    session.push(edges)
                    pushed = True
                    break
            if pushed:
                break
        assert pushed
        session.pop()

        # The push/pop pair must never have replayed the arcs into the
        # candidate DV mirrors: the deferred sync is dropped unmaterialised.
        assert session.saturation_stats["dv_syncs_skipped"] > 0
        assert session.analysis_fingerprint() == baseline

    def test_deferred_syncs_drain_before_evaluation(self):
        entry = _scale(56)
        rtype = entry.ddg.register_types()[0]
        session = ReductionSession(entry.ddg, rtype)
        current = session.saturation()
        for _ in range(3):
            saturating = list(current.saturating_values)
            best, _implied = session.scan(saturating, session.critical_path())
            if best is None:
                break
            session.apply_payload(best[1])
            current = session.saturation()
        # After evaluation every live candidate state has an empty pending
        # queue and a killed graph consistent with the mirror.
        for state in session._saturation._candidate_states.values():
            assert not state._pending
