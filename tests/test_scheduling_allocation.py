"""Tests for the scheduling and register-allocation substrates."""

import pytest

from repro.allocation import (
    color_allocate,
    insert_spill_code,
    linear_scan_allocate,
    live_intervals,
    maxlive,
    schedule_with_spilling,
)
from repro.codes.kernels import daxpy_unrolled, figure2_dag
from repro.core import (
    DDGBuilder,
    asap_schedule,
    fork_join_ddg,
    register_need,
    superscalar,
    vliw,
)
from repro.core.types import FLOAT, INT, Value
from repro.scheduling import (
    ReservationTable,
    evaluate_schedule,
    ilp_loss,
    list_schedule,
    register_pressure_aware_schedule,
)


class TestReservationTable:
    def test_issue_width_enforced(self):
        machine = superscalar(issue_width=2)
        table = ReservationTable(machine)
        ops = [figure2_dag().operation(n) for n in ("b", "c", "d")]
        assert table.can_issue(ops[0], 0)
        table.issue(ops[0], 0)
        table.issue(ops[1], 0)
        assert not table.can_issue(ops[2], 0)
        assert table.earliest_slot(ops[2], 0) == 1

    def test_fu_multiplicity_enforced(self):
        machine = superscalar()
        table = ReservationTable(machine)
        op = DDGBuilder("x").default_type("float").value("l", fu_class="mem").build().operation("l")
        table.issue(op, 0)
        table.issue(op.renamed("l2"), 0)
        assert not table.can_issue(op.renamed("l3"), 0)  # only 2 mem units

    def test_none_class_unlimited(self):
        machine = superscalar(issue_width=1)
        table = ReservationTable(machine)
        op = figure2_dag().operation("a").renamed("noop")
        from dataclasses import replace

        virtual = replace(op, fu_class="none")
        for _ in range(10):
            assert table.can_issue(virtual, 0)
            table.issue(virtual, 0)


class TestListScheduler:
    def test_valid_and_resource_respecting(self):
        g = daxpy_unrolled(4).with_bottom()
        machine = superscalar(issue_width=2)
        s = list_schedule(g, machine)
        assert s.is_valid(g)
        # at most issue_width real ops per cycle
        per_cycle = {}
        for node, t in s.times.items():
            if g.operation(node).fu_class != "none":
                per_cycle[t] = per_cycle.get(t, 0) + 1
        assert max(per_cycle.values()) <= 2

    def test_unbounded_resources_reach_critical_path(self, figure2):
        g = figure2.with_bottom()
        machine = superscalar(issue_width=16)
        s = list_schedule(g, machine)
        metrics = evaluate_schedule(g, s)
        assert metrics.makespan == metrics.critical_path

    def test_vliw_machine_schedules(self):
        g = daxpy_unrolled(2).with_bottom()
        s = list_schedule(g, vliw())
        assert s.is_valid(g)

    def test_pressure_aware_schedule_valid_and_throttled(self):
        g = figure2_dag().with_bottom()
        s = register_pressure_aware_schedule(g, INT, 2, machine=superscalar())
        assert s.is_valid(g)
        # the throttled schedule should not need more than RS anyway
        assert register_need(g, s, INT) <= 4

    def test_metrics_and_ilp_loss(self, figure2):
        g = figure2.with_bottom()
        s = asap_schedule(g)
        m = evaluate_schedule(g, s)
        assert m.register_need(INT) == 4 and m.slack == 0
        assert ilp_loss(figure2, figure2) == 0


class TestAllocation:
    def test_linear_scan_uses_exactly_maxlive(self, figure2):
        g = figure2.with_bottom()
        s = asap_schedule(g)
        result = linear_scan_allocate(g, s, INT)
        assert result.success
        assert result.registers_used == maxlive(g, s, INT) == 4

    def test_linear_scan_respects_budget_and_reports_spills(self, figure2):
        g = figure2.with_bottom()
        s = asap_schedule(g)
        result = linear_scan_allocate(g, s, INT, registers=2)
        assert not result.success
        assert len(result.spilled) == 2

    def test_allocation_is_conflict_free(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        s = asap_schedule(g)
        result = linear_scan_allocate(g, s, INT)
        intervals = {iv.value: iv for iv in live_intervals(g, s, INT)}
        values = list(result.assignment)
        for i, u in enumerate(values):
            for v in values[i + 1:]:
                if intervals[u].overlaps(intervals[v]):
                    assert result.assignment[u] != result.assignment[v]

    def test_graph_coloring_matches_linear_scan_register_count(self):
        for ddg in (figure2_dag(), daxpy_unrolled(3)):
            g = ddg.with_bottom()
            s = asap_schedule(g)
            for rtype in g.register_types():
                ls = linear_scan_allocate(g, s, rtype)
                gc = color_allocate(g, s, rtype)
                assert gc.success
                assert gc.registers_used == ls.registers_used == maxlive(g, s, rtype)

    def test_coloring_with_budget_spills(self, figure2):
        g = figure2.with_bottom()
        s = asap_schedule(g)
        result = color_allocate(g, s, INT, registers=2)
        assert len(result.spilled) >= 1

    def test_live_intervals_sorted(self, figure2):
        g = figure2.with_bottom()
        ivs = live_intervals(g, asap_schedule(g), INT)
        assert all(ivs[i].start <= ivs[i + 1].start for i in range(len(ivs) - 1))


class TestSpilling:
    def test_insert_spill_code_rewrites_flow(self):
        g = figure2_dag()
        spilled, added = insert_spill_code(g, Value("a", INT))
        assert added == 2  # one store + one reload (single consumer)
        assert any(op.opcode == "store" for op in spilled.operations())
        assert any(op.opcode == "load" for op in spilled.operations())
        # the original direct flow a->ka is gone
        assert "ka" not in spilled.consumers("a", INT)

    def test_schedule_with_spilling_reduces_pressure(self):
        g = daxpy_unrolled(4)
        baseline = schedule_with_spilling(g, FLOAT, 64, machine=superscalar())
        outcome = schedule_with_spilling(g, FLOAT, 4, machine=superscalar())
        assert outcome.memory_operations_added > 0
        assert outcome.schedule.is_valid(outcome.ddg.with_bottom())
        # spilling trades registers for memory traffic: the final pressure is
        # lower than the unconstrained schedule's even when the exact budget
        # cannot be met by this naive baseline
        assert outcome.details["final_maxlive"] <= baseline.details["final_maxlive"]

    def test_schedule_with_spilling_meets_generous_budget(self):
        g = daxpy_unrolled(3)
        outcome = schedule_with_spilling(g, FLOAT, 5, machine=superscalar())
        assert outcome.details["final_maxlive"] <= 5 or outcome.details.get("gave_up")

    def test_schedule_without_pressure_needs_no_spill(self):
        g = daxpy_unrolled(2)
        outcome = schedule_with_spilling(g, FLOAT, 16, machine=superscalar())
        assert outcome.spill_free and outcome.iterations == 1
