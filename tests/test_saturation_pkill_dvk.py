"""Tests for potential killers, killing functions and the disjoint-value DAG."""

import pytest

from repro.core import DDGBuilder, asap_schedule
from repro.core.types import INT, Value
from repro.errors import KillingFunctionError
from repro.saturation import (
    KillingFunction,
    canonical_killing_function,
    disjoint_value_dag,
    enumerate_killing_functions,
    killed_graph,
    killing_function_from_schedule,
    potential_killers,
    potential_killers_map,
    saturating_antichain,
)


@pytest.fixture
def reuse_ddg():
    """a feeds b and c; c also reads b: pkill(a) = {b, c}? no -- b reaches c.

    Structure: a -> b, a -> c, b -> c.  Consumer b of a reaches consumer c,
    so only c can be the last reader of a.
    """

    return (
        DDGBuilder("reuse")
        .default_type("int")
        .value("a")
        .value("b")
        .value("c")
        .flow("a", "b")
        .flow("a", "c")
        .flow("b", "c")
        .build()
    )


class TestPotentialKillers:
    def test_dominated_consumer_excluded(self, reuse_ddg):
        pk = potential_killers(reuse_ddg, Value("a", INT))
        assert pk == ["c"]

    def test_independent_consumers_all_potential(self, fork4_ddg):
        g = fork4_ddg
        pk = potential_killers(g, Value("src", INT))
        assert sorted(pk) == [f"mid{i}" for i in range(4)]

    def test_map_covers_all_values(self, figure2):
        g = figure2.with_bottom()
        pk = potential_killers_map(g, INT)
        assert {v.node for v in pk} == {"a", "b", "c", "d"}
        for killers in pk.values():
            assert killers  # every value has at least one potential killer

    def test_pkill_subset_of_consumers(self, chains3x3_ddg):
        g = chains3x3_ddg.with_bottom()
        pk = potential_killers_map(g, INT)
        for value, killers in pk.items():
            assert set(killers) <= set(g.consumers(value.node, INT))


class TestKillingFunction:
    def test_validate_accepts_legal_choice(self, reuse_ddg):
        kf = KillingFunction(INT, {Value("a", INT): "c"})
        kf.validate(reuse_ddg)

    def test_validate_rejects_non_killer(self, reuse_ddg):
        kf = KillingFunction(INT, {Value("a", INT): "b"})
        with pytest.raises(KillingFunctionError):
            kf.validate(reuse_ddg)

    def test_validate_rejects_unknown_value(self, reuse_ddg):
        kf = KillingFunction(INT, {Value("zzz", INT): "b"})
        with pytest.raises(KillingFunctionError):
            kf.validate(reuse_ddg)

    def test_schedule_induced_is_valid(self, figure2):
        g = figure2.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        assert kf.is_valid(g)
        assert len(kf) == 4

    def test_canonical_killing_function_structure(self, figure2):
        g = figure2.with_bottom()
        kf = canonical_killing_function(g, INT)
        pk = potential_killers_map(g, INT)
        for value, killer in kf.items():
            assert killer in pk[value]

    def test_killed_graph_adds_arcs_forcing_killer_last(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        kf = KillingFunction(INT, {Value("src", INT): "mid2"})
        gk = killed_graph(g, kf)
        # arcs from the other potential killers towards the chosen one
        for other in ("mid0", "mid1", "mid3"):
            assert "mid2" in gk.successors(other)
        assert gk.is_acyclic()

    def test_enumerate_killing_functions_small(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        kfs = list(enumerate_killing_functions(g, INT))
        # src has 4 potential killers; the four mids are killed by join (1 each).
        assert len(kfs) == 4
        for kf in kfs:
            assert kf.is_valid(g)

    def test_enumerate_limit(self, fork4_ddg):
        g = fork4_ddg.with_bottom()
        assert len(list(enumerate_killing_functions(g, INT, limit=2))) == 2


class TestDisjointValueDAG:
    def test_chain_is_totally_ordered(self, chain5_ddg):
        g = chain5_ddg.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        dag = disjoint_value_dag(g, kf)
        assert dag.width == 1
        # v0 dies when v1 reads it, so v1's value is ordered after v0's.
        assert (Value("v0", INT), Value("v1", INT)) in dag.closure

    def test_independent_values_incomparable(self, figure2):
        g = figure2.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        antichain, dag = saturating_antichain(g, kf)
        assert len(antichain) == 4
        assert dag.width == 4

    def test_edges_imply_closure(self, chains3x3_ddg):
        g = chains3x3_ddg.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        dag = disjoint_value_dag(g, kf)
        assert dag.edges <= dag.closure

    def test_no_self_edges(self, figure2):
        g = figure2.with_bottom()
        kf = canonical_killing_function(g, INT)
        dag = disjoint_value_dag(g, kf)
        assert all(u != v for u, v in dag.closure)

    def test_comparable_helper(self, chain5_ddg):
        g = chain5_ddg.with_bottom()
        kf = killing_function_from_schedule(g, asap_schedule(g), INT)
        dag = disjoint_value_dag(g, kf)
        assert dag.comparable(Value("v0", INT), Value("v3", INT))
