"""Tests for the batch execution engine and the engine-backed experiments.

The contract under test: whatever the policy and however workers interleave,
the results come back in input order and every experiment report is
byte-identical to its serial counterpart.
"""

from __future__ import annotations

import time

import pytest

from repro.codes import benchmark_suite
from repro.core import superscalar
from repro.experiments import (
    BatchEngine,
    run_batch,
    run_ilp_size_study,
    run_pipeline_experiment,
)

# Module-level workers so the process policy can pickle them.


def _square(x: int) -> int:
    return x * x


def _slow_inverse(item):
    """Finishes in reverse submission order to stress result reordering."""

    index, total = item
    time.sleep(0.005 * (total - index))
    return index


def _explode(x: int) -> int:
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestBatchEngine:
    def test_spec_parsing(self):
        assert BatchEngine.coerce(None).policy == "serial"
        assert BatchEngine.coerce("thread").policy == "thread"
        engine = BatchEngine.coerce("process:4")
        assert engine.policy == "process" and engine.workers == 4
        ready = BatchEngine("thread", 2)
        assert BatchEngine.coerce(ready) is ready

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            BatchEngine("fibers")
        with pytest.raises(ValueError):
            BatchEngine("thread", 0)

    @pytest.mark.parametrize("policy", ["serial", "thread"])
    def test_results_in_input_order(self, policy):
        items = [(i, 8) for i in range(8)]
        engine = BatchEngine(policy, workers=8)
        assert engine.map(_slow_inverse, items) == list(range(8))

    def test_process_policy_round_trip(self):
        assert run_batch(_square, [3, 1, 2], engine="process:2") == [9, 1, 4]

    def test_worker_exception_propagates(self):
        for policy in ("serial", "thread"):
            with pytest.raises(ValueError, match="boom on 3"):
                BatchEngine(policy).map(_explode, [1, 2, 3, 4])

    def test_resolved_workers_bounded_by_items(self):
        assert BatchEngine("thread", 16).resolved_workers(3) == 3
        assert BatchEngine("thread", 2).resolved_workers(10) == 2


class TestEngineBackedExperiments:
    @pytest.fixture(scope="class")
    def machine(self):
        return superscalar(int_registers=6, float_registers=6)

    def test_pipeline_reports_byte_identical(self, machine):
        suite = benchmark_suite(max_size=16)
        serial = run_pipeline_experiment(
            suite=suite, machine=machine, registers=6, compare_baseline=False
        )
        threaded = run_pipeline_experiment(
            suite=suite,
            machine=machine,
            registers=6,
            compare_baseline=False,
            engine="thread",
        )
        assert serial.to_table() == threaded.to_table()
        assert [o.name for o in serial.outcomes] == [o.name for o in threaded.outcomes]

    @pytest.mark.needs_ilp_solver
    def test_ilp_size_reports_byte_identical(self):
        serial = run_ilp_size_study(sizes=(10, 14, 18))
        threaded = run_ilp_size_study(sizes=(10, 14, 18), engine=BatchEngine("thread", 3))
        assert serial.to_table() == threaded.to_table()
