"""Tests for the canonical graph hash and the persistent result store."""

import os
import pickle
import random
import time

import pytest

from repro.analysis import (
    ResultStore,
    active_store,
    canonical_graph_hash,
    context_for,
    reset_active_store,
    set_active_store,
    store_active,
)
from repro.analysis.context import caching_disabled
from repro.analysis.store import STORE_SCHEMA_VERSION, default_store_dir
from repro.codes.generator import layered_random_ddg
from repro.core.graph import DDG
from repro.core.operation import Operation
from repro.core.types import FLOAT, INT
from repro.experiments import BatchEngine, run_pipeline_experiment
from repro.saturation import greedy_saturation


def random_ddg(seed: int) -> DDG:
    return layered_random_ddg(
        nodes=14, layers=4, edge_probability=0.35, seed=seed, rtype=INT,
        name=f"hash-prop-{seed}",
    )


def rebuild_shuffled(ddg: DDG, seed: int) -> DDG:
    """Rebuild the same graph content with a different insertion order."""

    rng = random.Random(seed)
    ops = [ddg.operation(n) for n in ddg.nodes()]
    edges = list(ddg.edges())
    rng.shuffle(ops)
    rng.shuffle(edges)
    g = DDG(f"{ddg.name}-rebuilt-{seed}")
    for op in ops:
        g.add_operation(op)
    for edge in edges:
        g.add_edge(edge)
    return g


class TestCanonicalGraphHash:
    def test_invariant_under_insertion_order_and_name(self):
        for seed in range(8):
            g = random_ddg(seed)
            h = canonical_graph_hash(g)
            assert canonical_graph_hash(g.copy("renamed")) == h
            for shuffle_seed in (1, 2, 3):
                assert canonical_graph_hash(rebuild_shuffled(g, shuffle_seed)) == h

    def test_distinct_graphs_distinct_hashes(self):
        hashes = {canonical_graph_hash(random_ddg(seed)) for seed in range(8)}
        assert len(hashes) == 8

    def test_semantic_mutations_change_the_hash(self):
        g = random_ddg(0)
        base = canonical_graph_hash(g)

        # Extra serial arc.
        g1 = g.copy()
        nodes = sorted(g1.nodes())
        order = {n: i for i, n in enumerate(g1.topological_order())}
        src = min(nodes, key=lambda n: order[n])
        dst = max(nodes, key=lambda n: order[n])
        g1.add_serial_edge(src, dst, latency=0)
        assert canonical_graph_hash(g1) != base

        # Edge latency.
        g2 = g.copy()
        edge = sorted(g2.edges(), key=str)[0]
        g2.remove_edge(edge)
        g2.add_edge(edge.with_latency(edge.latency + 7))
        assert canonical_graph_hash(g2) != base

        # Operation latency.
        g3 = g.copy()
        op = g3.operation(sorted(g3.nodes())[0])
        g3.replace_operation(
            Operation(op.name, defs=op.defs, latency=op.latency + 1,
                      delta_r=op.delta_r, delta_w=op.delta_w,
                      opcode=op.opcode, fu_class=op.fu_class)
        )
        assert canonical_graph_hash(g3) != base

        # Register type of a defined value.
        g4 = g.copy()
        producer = next(op for op in g4.operations() if op.defs)
        g4.replace_operation(
            Operation(producer.name, defs=frozenset({FLOAT}),
                      latency=producer.latency, delta_r=producer.delta_r,
                      delta_w=producer.delta_w, opcode=producer.opcode,
                      fu_class=producer.fu_class)
        )
        assert canonical_graph_hash(g4) != base

        # Read offset.
        g5 = g.copy()
        op5 = g5.operation(sorted(g5.nodes())[1])
        g5.replace_operation(op5.with_offsets(op5.delta_r + 1, op5.delta_w))
        assert canonical_graph_hash(g5) != base

    def test_context_graph_hash_tracks_mutation(self):
        g = random_ddg(1)
        ctx = context_for(g)
        before = ctx.graph_hash()
        assert before == canonical_graph_hash(g)
        order = g.topological_order()
        g.add_serial_edge(order[0], order[-1], latency=0)
        after = ctx.graph_hash()
        assert after == canonical_graph_hash(g) and after != before


class TestResultStore:
    def test_round_trip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("h", "q", {"a": 1}) is None
        store.put("h", "q", {"a": 1}, {"answer": 42})
        assert store.get("h", "q", {"a": 1}) == {"answer": 42}
        assert store.get("h", "q", {"a": 2}) is None
        assert store.stats.hits == 1 and store.stats.misses == 2
        assert store.stats.puts == 1
        assert 0.0 < store.stats.hit_rate < 1.0
        assert store.entry_count() == 1

    def test_params_key_is_insertion_order_independent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("h", "q", {"a": 1, "b": 2}, "x")
        assert store.get("h", "q", {"b": 2, "a": 1}) == "x"
        # ...but not value independent.
        assert store.get("h", "q", {"a": 2, "b": 1}) is None

    def test_corrupt_entry_reads_as_miss_and_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, "value")
        path.write_bytes(b"definitely not a pickle")
        assert store.get("h", "q", None, default="fallback") == "fallback"
        assert store.stats.errors == 1
        assert not path.exists()

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, "value")
        payload = {"schema": STORE_SCHEMA_VERSION + 1, "graph_hash": "h",
                   "query": "q", "value": "value"}
        path.write_bytes(pickle.dumps(payload))
        assert store.get("h", "q", None) is None
        assert store.stats.errors == 1

    def test_memo_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []
        assert store.memo("h", "q", None, lambda: calls.append(1) or "v") == "v"
        assert store.memo("h", "q", None, lambda: calls.append(1) or "w") == "v"
        assert len(calls) == 1
        assert store.clear() == 1
        assert store.entry_count() == 0

    def test_schema_directory_isolates_versions(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("h", "q", None, "v")
        assert f"v{STORE_SCHEMA_VERSION}" in str(path)


class TestAmbientStore:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        reset_active_store()
        assert active_store() is None

    def test_env_dir_activates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        reset_active_store()
        store = active_store()
        assert store is not None and store.root == tmp_path
        assert default_store_dir() == tmp_path

    def test_env_flag_uses_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.setenv("REPRO_STORE", "1")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        reset_active_store()
        store = active_store()
        assert store is not None
        assert store.root == tmp_path / "repro-touati04"

    def test_explicit_override_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        try:
            set_active_store(None)
            assert active_store() is None
            mine = ResultStore(tmp_path / "mine")
            set_active_store(mine)
            assert active_store() is mine
        finally:
            reset_active_store()

    def test_store_active_context(self, tmp_path):
        assert active_store() is None
        with store_active(tmp_path) as store:
            assert active_store() is store
            assert store.root == tmp_path
        assert active_store() is None


class TestPersistentMemoTier:
    def test_memo_persists_across_equal_content_graphs(self, tmp_path):
        g1 = random_ddg(2)
        g2 = rebuild_shuffled(g1, 7)
        with store_active(tmp_path) as store:
            r1 = greedy_saturation(g1, INT)
            hits_before = store.stats.hits
            r2 = greedy_saturation(g2, INT)
            assert store.stats.hits > hits_before
        assert r2.rs == r1.rs
        assert r2.saturating_values == r1.saturating_values
        assert r2.killing_function == r1.killing_function

    def test_memo_inert_without_store(self):
        g = random_ddg(3)
        ctx = context_for(g)
        calls = []
        assert active_store() is None
        v = ctx.memo("k", lambda: calls.append(1) or 5, persist=("q", None))
        assert v == 5 and calls == [1]

    def test_caching_disabled_skips_the_store(self, tmp_path):
        g = random_ddg(4)
        with store_active(tmp_path) as store:
            with caching_disabled():
                greedy_saturation(g, INT)
            assert store.stats.puts == 0 and store.stats.lookups == 0

    def test_falsy_values_are_cached(self, tmp_path):
        g = random_ddg(5)
        ctx = context_for(g)
        with store_active(tmp_path) as store:
            assert ctx.memo("z", lambda: 0, persist=("q0", None)) == 0
            ctx.invalidate()
            calls = []
            assert ctx.memo("z", lambda: calls.append(1) or 1, persist=("q0", None)) == 0
            assert not calls and store.stats.hits == 1


class TestEngineStoreIntegration:
    def test_map_skips_dispatch_on_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        engine = BatchEngine()
        key = lambda x: (f"g{x}", {"x": x})
        first = engine.map(fn, [1, 2, 3], store=store, query="sq", key_fn=key)
        assert first == [1, 4, 9] and calls == [1, 2, 3]
        second = engine.map(fn, [3, 2, 1, 4], store=store, query="sq", key_fn=key)
        assert second == [9, 4, 1, 16]
        assert calls == [1, 2, 3, 4]  # only the miss was dispatched

    def test_map_plan_rewrites_before_dispatch(self):
        engine = BatchEngine()
        out = engine.map(lambda t: t, [("a", "auto"), ("b", "forced")],
                         plan=lambda t: (t[0], "scipy") if t[1] == "auto" else t)
        assert out == [("a", "scipy"), ("b", "forced")]

    @pytest.mark.needs_ilp_solver
    def test_backend_override_is_part_of_the_experiment_key(self, monkeypatch, tmp_path):
        """A forced REPRO_ILP_BACKEND must never read another backend's cache."""

        from repro.experiments import run_ilp_size_study

        with store_active(tmp_path):
            monkeypatch.delenv("REPRO_ILP_BACKEND", raising=False)
            auto = run_ilp_size_study(sizes=(10,))
            assert [p.backend for p in auto.points] == ["scipy"]
            monkeypatch.setenv("REPRO_ILP_BACKEND", "branch-bound")
            forced = run_ilp_size_study(sizes=(10,))
            assert [p.backend for p in forced.points] == ["branch-bound"]

    def test_pipeline_experiment_warm_run_is_byte_identical(self, tmp_path):
        from repro.codes import benchmark_suite
        from repro.core import superscalar

        suite = benchmark_suite(max_size=12)
        machine = superscalar(int_registers=4, float_registers=4)
        with store_active(tmp_path) as store:
            cold = run_pipeline_experiment(suite=suite, machine=machine, registers=4)
            warm_hits_before = store.stats.hits
            warm = run_pipeline_experiment(suite=suite, machine=machine, registers=4)
            warm_hits = store.stats.hits - warm_hits_before
        assert warm.to_table() == cold.to_table()
        assert warm_hits == len(warm.outcomes)  # every instance from the store


class TestStoreRobustness:
    """PR-8 satellites: bounded locking, orphan sweep, idempotent puts."""

    def test_lock_timeout_quarantines_and_recovers(self, tmp_path):
        import fcntl

        store = ResultStore(tmp_path, lock_timeout=0.2)
        path = store.path_for("h", "q", None)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.parent / ".lock"
        # Hold the shard lock on a *separate* open file description, as a
        # stuck foreign process would.
        holder = open(lock_path, "w")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            t0 = time.monotonic()
            store.put("h", "q", None, "value")
            elapsed = time.monotonic() - t0
        finally:
            holder.close()
        # The put neither blocked forever nor failed: the stale lock file
        # was quarantined and the write went through.
        assert store.get("h", "q", None) == "value"
        assert store.stats.lock_timeouts >= 1
        assert elapsed < 5.0
        assert list(store.quarantine_dir.glob("*.lock.stale"))

    def test_blocking_lock_when_timeout_disabled(self, tmp_path):
        store = ResultStore(tmp_path, lock_timeout=None)
        store.put("h", "q", None, "value")
        assert store.stats.lock_timeouts == 0

    def test_orphaned_tmp_files_swept_on_open(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("h", "q", None, "value")
        shard = store.path_for("h", "q", None).parent
        stale = shard / ".tmp-dead-writer.pkl"
        stale.write_bytes(b"half a pickle")
        os.utime(stale, (time.time() - 3600, time.time() - 3600))
        fresh = shard / ".tmp-live-writer.pkl"
        fresh.write_bytes(b"mid-fsync")
        reopened = ResultStore(tmp_path)
        assert not stale.exists()  # orphan: swept
        assert fresh.exists()  # younger than the grace period: spared
        assert reopened.stats.stale_tmp_removed == 1
        assert reopened.get("h", "q", None) == "value"

    def test_put_if_absent_first_fully_written_value_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        value, stored = store.put_if_absent("h", "q", {"k": 1}, "first")
        assert (value, stored) == ("first", True)
        value, stored = store.put_if_absent("h", "q", {"k": 1}, "second")
        assert (value, stored) == ("first", False)
        assert store.get("h", "q", {"k": 1}) == "first"

    def test_put_if_absent_races_settle_on_one_value(self, tmp_path):
        store = ResultStore(tmp_path)
        outcomes = [
            store.put_if_absent("h", "q", None, f"writer-{i}")
            for i in range(6)
        ]
        assert sum(1 for _, stored in outcomes if stored) == 1
        assert {value for value, _ in outcomes} == {"writer-0"}
