"""Tests for the solver-backend registry and backend parity."""

import pytest

pytest.importorskip("numpy", reason="backend parity tests need the numeric stack")
pytest.importorskip("scipy", reason="backend parity tests need the numeric stack")

from repro.codes import benchmark_suite
from repro.errors import SolverError
from repro.ilp import (
    BackendCapabilities,
    BackendRegistry,
    IntegerProgram,
    LinExpr,
    Solution,
    SolveStatus,
    default_registry,
    solve,
    solve_with_branch_and_bound,
    solve_with_scipy,
)
from repro.ilp.registry import BACKEND_ENV, backend_request_token
from repro.saturation import exact_saturation, greedy_saturation


def build_knapsack(n: int = 26, seed: int = 3) -> IntegerProgram:
    """A 0/1 model hard enough that HiGHS cannot presolve it away."""

    import random

    rng = random.Random(seed)
    m = IntegerProgram("knapsack")
    xs, weights, profits = [], [], []
    for i in range(n):
        xs.append(m.add_binary(f"x{i}"))
        weights.append(1 + rng.randrange(40))
        profits.append(1 + rng.randrange(40))
    m.add_le(LinExpr.sum(w * x for w, x in zip(weights, xs)), sum(weights) / 3)
    m.maximize(LinExpr.sum(p * x for p, x in zip(profits, xs)))
    return m


class TestRegistry:
    def test_builtin_backends_registered(self):
        registry = default_registry()
        assert registry.names() == ["scipy", "branch-bound"]
        assert "highs" in registry and "branch_bound" in registry
        assert registry.get("highs").name == "scipy"

    def test_unknown_backend(self):
        with pytest.raises(SolverError, match="unknown intLP backend"):
            default_registry().get("cplex")
        with pytest.raises(SolverError):
            solve(build_knapsack(6), backend="cplex")

    def test_auto_picks_scipy_and_records_backend(self):
        sol = solve(build_knapsack(10))
        assert sol.is_optimal
        assert sol.backend == "scipy"
        assert sol.stats()["backend"] == "scipy"

    def test_explicit_backend_recorded(self):
        sol = solve(build_knapsack(8), backend="branch-bound")
        assert sol.is_optimal and sol.backend == "branch-bound"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "branch-bound")
        sol = solve(build_knapsack(8))
        assert sol.backend == "branch-bound"
        assert backend_request_token() == "auto->branch-bound"
        monkeypatch.delenv(BACKEND_ENV)
        assert backend_request_token() == "auto"
        assert backend_request_token("scipy") == "scipy"

    def test_auto_respects_size_ceiling(self):
        registry = BackendRegistry()
        registry.register_backend(
            "tiny",
            BackendCapabilities(max_integer_variables=3),
            solve_with_branch_and_bound,
        )
        registry.register_backend("big", BackendCapabilities(), solve_with_scipy)
        assert registry.choose(build_knapsack(2)).name == "tiny"
        assert registry.choose(build_knapsack(10)).name == "big"
        assert registry.choose_by_size(3).name == "tiny"
        assert registry.choose_by_size(4).name == "big"

    def test_registration_guards(self):
        registry = BackendRegistry()
        registry.register_backend("a", BackendCapabilities(), solve_with_scipy,
                                  aliases=("alias-a",))
        with pytest.raises(SolverError):
            registry.register_backend("a", BackendCapabilities(), solve_with_scipy)
        with pytest.raises(SolverError):
            registry.register_backend("auto", BackendCapabilities(), solve_with_scipy)
        # Neither a name nor an alias may silently repoint an existing alias.
        with pytest.raises(SolverError):
            registry.register_backend("alias-a", BackendCapabilities(), solve_with_scipy)
        with pytest.raises(SolverError):
            registry.register_backend(
                "b", BackendCapabilities(), solve_with_scipy, aliases=("alias-a",)
            )
        assert "b" not in registry  # the failed registration left no trace
        registry.register_backend(
            "a", BackendCapabilities(), solve_with_branch_and_bound,
            replace_existing=True,
        )
        assert registry.get("a").fn is solve_with_branch_and_bound

    def test_capability_enforcement(self):
        registry = BackendRegistry()

        def fake(program, **kwargs):  # pragma: no cover - never reached
            return Solution(SolveStatus.OPTIMAL)

        registry.register_backend(
            "limited",
            BackendCapabilities(time_limit=False, mip_rel_gap=False),
            fake,
        )
        with pytest.raises(SolverError, match="time-limit"):
            registry.solve(build_knapsack(4), backend="limited", time_limit=1.0)
        with pytest.raises(SolverError, match="MIP-gap"):
            registry.solve(build_knapsack(4), backend="limited", mip_rel_gap=0.1)

    def test_no_backend_fits(self):
        registry = BackendRegistry()
        registry.register_backend(
            "tiny", BackendCapabilities(max_integer_variables=1), solve_with_scipy
        )
        with pytest.raises(SolverError, match="no registered backend"):
            registry.choose(build_knapsack(5))


class TestHonestStatuses:
    def test_scipy_time_limit_is_time_limit(self):
        sol = solve_with_scipy(build_knapsack(30), time_limit=1e-6)
        assert sol.status is SolveStatus.TIME_LIMIT
        assert "time limit" in sol.termination.lower()

    def test_scipy_reports_achieved_gap(self):
        sol = solve_with_scipy(build_knapsack(12))
        assert sol.is_optimal
        assert sol.mip_gap is not None and sol.mip_gap <= 1e-6

    def test_branch_bound_node_limit_is_iteration_limit(self):
        sol = solve_with_branch_and_bound(build_knapsack(30), max_nodes=2)
        assert sol.status is SolveStatus.ITERATION_LIMIT
        assert "node limit" in sol.termination
        if sol.values:
            assert sol.is_feasible  # iteration-limit incumbents stay usable

    def test_branch_bound_time_limit_is_time_limit(self):
        sol = solve_with_branch_and_bound(build_knapsack(34, seed=9), time_limit=0.0)
        assert sol.status is SolveStatus.TIME_LIMIT
        assert "time limit" in sol.termination

    def test_branch_bound_honours_mip_rel_gap(self):
        exact = solve_with_branch_and_bound(build_knapsack(18))
        loose = solve_with_branch_and_bound(build_knapsack(18), mip_rel_gap=0.5)
        assert exact.is_optimal and loose.is_optimal
        assert loose.mip_gap is not None and loose.mip_gap <= 0.5 + 1e-9
        assert exact.mip_gap is not None and exact.mip_gap <= 1e-6
        # A 50% gap tolerance can never yield a *better* incumbent.
        assert loose.objective <= exact.objective + 1e-9
        assert "mip_rel_gap" in loose.termination
        assert loose.nodes_explored <= exact.nodes_explored


class TestBackendParity:
    def test_identical_optima_on_small_kernel_suite(self):
        """Both registered backends prove the same RS on the kernel suite."""

        suite = [e for e in benchmark_suite(max_size=12)]
        assert suite, "suite fixture unexpectedly empty"
        checked = 0
        for entry in suite:
            for rtype in entry.ddg.register_types():
                via_scipy = exact_saturation(entry.ddg, rtype, backend="scipy")
                via_bb = exact_saturation(
                    entry.ddg, rtype, backend="branch-bound", time_limit=120.0
                )
                assert via_scipy.rs == via_bb.rs, (
                    f"{entry.name}/{rtype.name}: scipy proved {via_scipy.rs}, "
                    f"branch-bound proved {via_bb.rs}"
                )
                assert via_scipy.details["backend"] == "scipy"
                assert via_bb.details["backend"] == "branch-bound"
                # Both are exact: neither may fall below the heuristic bound.
                assert via_scipy.rs >= greedy_saturation(entry.ddg, rtype).rs
                checked += 1
        assert checked >= 5
