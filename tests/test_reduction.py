"""Tests for register-saturation reduction: serialization, heuristic, exact, minimization."""

import pytest

from repro.analysis import critical_path_length
from repro.codes.kernels import figure2_dag
from repro.core import DDGBuilder, fork_join_ddg, independent_chains_ddg, superscalar, vliw
from repro.core.types import INT, FLOAT, Value
from repro.errors import SpillRequiredError
from repro.reduction import (
    SerializationMode,
    apply_serialization,
    has_positive_circuit,
    is_schedulable,
    legal_serialization,
    minimize_register_need,
    reduce_saturation,
    reduce_saturation_exact,
    reduce_saturation_heuristic,
    serialization_edges,
    serialization_latency,
    serialize_from_schedule,
    solve_src,
    would_remain_acyclic,
)
from repro.saturation import exact_saturation, greedy_saturation


class TestSerializationPrimitives:
    def test_latency_modes(self, figure2):
        assert serialization_latency(figure2, "ka", "b", SerializationMode.SEQUENTIAL) == 1
        assert serialization_latency(figure2, "ka", "b", SerializationMode.OFFSETS) == 0

    def test_serialization_edges_from_readers(self, figure2):
        edges = serialization_edges(figure2, Value("a", INT), Value("b", INT),
                                    mode=SerializationMode.OFFSETS, skip_existing=False)
        assert [(e.src, e.dst) for e in edges] == [("ka", "b")]
        assert all(e.is_serial for e in edges)

    def test_serialization_excludes_consumer_target(self, diamond_ddg):
        # Serialize a before b where b consumes a: arcs come from the *other* readers.
        edges = serialization_edges(diamond_ddg, Value("a", INT), Value("b", INT),
                                    skip_existing=False)
        assert [(e.src, e.dst) for e in edges] == [("c", "b")]

    def test_skip_existing(self, diamond_ddg):
        first = serialization_edges(diamond_ddg, Value("a", INT), Value("b", INT))
        extended = apply_serialization(diamond_ddg, first)
        again = serialization_edges(extended, Value("a", INT), Value("b", INT))
        assert again == []

    def test_different_types_rejected(self, two_types_ddg):
        from repro.errors import ReductionError

        with pytest.raises(ReductionError):
            serialization_edges(two_types_ddg, Value("addr", INT), Value("x", FLOAT))

    def test_would_remain_acyclic(self, diamond_ddg):
        ok = serialization_edges(diamond_ddg, Value("a", INT), Value("b", INT),
                                 skip_existing=False)
        assert would_remain_acyclic(diamond_ddg, ok)
        from repro.core.graph import Edge
        from repro.core.types import DependenceKind

        bad = [Edge("d", "a", 0, DependenceKind.SERIAL, None)]
        assert not would_remain_acyclic(diamond_ddg, bad)

    def test_legal_serialization_refuses_cycles(self):
        # All values share one consumer: any serialization closes a cycle.
        b = DDGBuilder("shared").default_type("int")
        b.value("a").value("b").op("use")
        b.flow("a", "use").flow("b", "use")
        g = b.build()
        assert legal_serialization(g, Value("a", INT), Value("b", INT)) is None

    def test_legal_serialization_refuses_bottom(self, figure2):
        g = figure2.with_bottom()
        from repro.core.types import BOTTOM

        assert legal_serialization(g, Value("a", INT), Value(BOTTOM, INT)) is None

    def test_schedulability_checks(self, diamond_ddg):
        assert is_schedulable(diamond_ddg)
        diamond_ddg.add_serial_edge("d", "a", latency=1)
        assert has_positive_circuit(diamond_ddg)
        assert not is_schedulable(diamond_ddg)

    def test_nonpositive_circuit_is_schedulable(self, diamond_ddg):
        diamond_ddg.add_serial_edge("d", "a", latency=-10)
        assert not diamond_ddg.is_acyclic()
        assert is_schedulable(diamond_ddg)


class TestHeuristicReduction:
    @pytest.mark.needs_ilp_solver
    def test_figure2_reduced_to_three(self, figure2, superscalar_machine):
        result = reduce_saturation_heuristic(figure2, INT, 3, machine=superscalar_machine)
        assert result.success and result.original_rs == 4
        assert result.achieved_rs <= 3
        assert exact_saturation(result.extended_ddg, INT).rs <= 3
        assert result.ilp_loss == 0 and result.arcs_added >= 1

    def test_no_arcs_when_budget_sufficient(self, figure2, superscalar_machine):
        result = reduce_saturation_heuristic(figure2, INT, 4, machine=superscalar_machine)
        assert result.success and result.arcs_added == 0 and not result.reduction_needed

    def test_original_graph_untouched(self, figure2, superscalar_machine):
        before = figure2.m
        reduce_saturation_heuristic(figure2, INT, 2, machine=superscalar_machine)
        assert figure2.m == before

    def test_original_edges_preserved_in_extension(self, figure2, superscalar_machine):
        result = reduce_saturation_heuristic(figure2, INT, 3, machine=superscalar_machine)
        original = {(e.src, e.dst, e.kind, e.rtype) for e in figure2.edges()}
        extended = {(e.src, e.dst, e.kind, e.rtype) for e in result.extended_ddg.edges()}
        assert original <= extended

    def test_unreducible_graph_reports_failure(self, superscalar_machine):
        g = fork_join_ddg(4)  # the four mids all feed 'join': always 4 alive
        result = reduce_saturation_heuristic(g, INT, 3, machine=superscalar_machine)
        assert not result.success
        with pytest.raises(SpillRequiredError):
            reduce_saturation_heuristic(g, INT, 3, machine=superscalar_machine,
                                        raise_on_failure=True)

    def test_bad_budget_rejected(self, figure2):
        with pytest.raises(ValueError):
            reduce_saturation_heuristic(figure2, INT, 0)

    def test_irreducible_exit_values_reported(self, superscalar_machine):
        # All chain tails are exit values: they stay alive until the bottom
        # node in every schedule, so the saturation can never drop below 4.
        g = independent_chains_ddg(4, 2)
        result = reduce_saturation_heuristic(g, INT, 2, machine=superscalar_machine)
        assert not result.success and result.achieved_rs == 4

    @pytest.mark.needs_ilp_solver
    def test_figure2_reduced_to_two_step_by_step(self, figure2, superscalar_machine):
        result = reduce_saturation_heuristic(figure2, INT, 2, machine=superscalar_machine)
        assert result.success
        assert exact_saturation(result.extended_ddg, INT).rs <= 2
        assert result.arcs_added >= 2

    @pytest.mark.needs_ilp_solver
    def test_dispatch_wrapper(self, figure2):
        assert reduce_saturation(figure2, INT, 3, method="heuristic").success
        assert reduce_saturation(figure2, INT, 3, method="exact").success
        with pytest.raises(ValueError):
            reduce_saturation(figure2, INT, 3, method="magic")


class TestExactReduction:
    @pytest.mark.needs_ilp_solver
    def test_figure2_exact_reduction(self, figure2, superscalar_machine):
        result = reduce_saturation_exact(figure2, INT, 3, machine=superscalar_machine, verify=True)
        assert result.success and result.optimal
        assert result.achieved_rs <= 3
        assert result.details["verified_rs"] <= 3
        assert result.ilp_loss == 0

    @pytest.mark.needs_ilp_solver
    def test_exact_reduction_spill_detection(self, superscalar_machine):
        g = fork_join_ddg(4)
        with pytest.raises(SpillRequiredError):
            reduce_saturation_exact(g, INT, 3, machine=superscalar_machine)

    @pytest.mark.needs_ilp_solver
    def test_exact_never_loses_more_ilp_than_heuristic(self, superscalar_machine):
        checked = 0
        for g, budget in ((figure2_dag(), 3), (figure2_dag(), 2)):
            try:
                exact = reduce_saturation_exact(g, INT, budget, machine=superscalar_machine)
            except SpillRequiredError:
                continue
            heur = reduce_saturation_heuristic(g, INT, budget, machine=superscalar_machine)
            if heur.success:
                assert exact.ilp_loss <= heur.ilp_loss
                checked += 1
        assert checked >= 1

    @pytest.mark.needs_ilp_solver
    def test_src_solver_consistency(self, figure2):
        schedule, solution, info = solve_src(figure2, INT, 2)
        from repro.core.lifetime import register_need

        assert schedule is not None
        assert register_need(info.ddg, schedule, INT) <= 2
        none_schedule, _, _ = solve_src(fork_join_ddg(4), INT, 3)
        assert none_schedule is None

    @pytest.mark.needs_ilp_solver
    def test_src_respects_deadline(self, figure2):
        cp = critical_path_length(figure2.with_bottom())
        schedule, _, _ = solve_src(figure2, INT, 3, deadline=cp)
        assert schedule is not None and schedule.makespan <= cp

    def test_serialize_from_schedule_freezes_precedences(self, figure2):
        from repro.core import asap_schedule

        g = figure2.with_bottom()
        extended, added, skipped = serialize_from_schedule(g, asap_schedule(g), INT)
        assert not skipped
        assert extended.m >= g.m
        assert extended.is_acyclic()


@pytest.mark.needs_ilp_solver
class TestMinimization:
    def test_figure2_minimization_reaches_two(self, figure2, superscalar_machine):
        result = minimize_register_need(figure2, INT, machine=superscalar_machine)
        assert result.achieved_rs == 2
        assert result.ilp_loss <= 0 or result.critical_path_after == result.critical_path_before

    def test_minimization_adds_more_arcs_than_saturation_reduction(
        self, figure2, superscalar_machine
    ):
        minimized = minimize_register_need(figure2, INT, machine=superscalar_machine)
        reduced = reduce_saturation_heuristic(figure2, INT, 3, machine=superscalar_machine)
        assert minimized.arcs_added > reduced.arcs_added

    def test_minimization_on_chain_is_trivial(self, chain5_ddg, superscalar_machine):
        result = minimize_register_need(chain5_ddg, INT, machine=superscalar_machine)
        assert result.achieved_rs <= 1


class TestReductionResult:
    def test_summary_fields(self, figure2, superscalar_machine):
        result = reduce_saturation_heuristic(figure2, INT, 3, machine=superscalar_machine)
        summary = result.summary()
        assert summary["target"] == 3 and summary["success"] is True
        assert summary["ilp_loss"] == result.ilp_loss
        assert result.reduction_needed
